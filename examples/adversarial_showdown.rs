//! Adversarial showdown: the delay-the-winner spoiler hunts for bad wake-up
//! patterns against every protocol in the repository, and the Theorem 2.1
//! swap-chain adversary certifies how many rounds any schedule must spend.
//!
//! ```sh
//! cargo run --release --example adversarial_showdown
//! ```

use mac_wakeup::prelude::*;
use selectors::schedule::RoundRobinSchedule;

fn main() {
    let n = 128u32;
    let k = 8usize;
    println!("arena: n = {n}, k = {k}\n");

    // --- Part 1: the spoiler vs live protocols ---------------------------
    println!("spoiler adversary (delay-the-winner local search, 64 moves):");
    let sim = Simulator::new(SimConfig::new(n));
    let spoiler = SpoilerSearch::new(64, 1_000_000);
    let ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 16 + 1)).collect();
    let start = WakePattern::simultaneous(&ids, 0).unwrap();

    let mut table = Table::new(["protocol", "burst latency", "spoiled latency", "moves"]);
    let protocols: Vec<Box<dyn Protocol>> = vec![
        Box::new(RoundRobin::new(n)),
        Box::new(WakeupWithS::new(n, 0, FamilyProvider::default())),
        Box::new(WakeupWithK::new(n, k as u32, FamilyProvider::default())),
        Box::new(WakeupN::new(MatrixParams::new(n))),
    ];
    for protocol in &protocols {
        let baseline = sim
            .run(protocol.as_ref(), &start, 1)
            .unwrap()
            .latency()
            .expect("must solve");
        let spoiled = spoiler
            .search(&sim, protocol.as_ref(), start.clone(), 1)
            .unwrap();
        table.push_row([
            protocol.name(),
            baseline.to_string(),
            spoiled
                .outcome
                .latency()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "censored".into()),
            spoiled.moves.to_string(),
        ]);
    }
    table.print();

    // --- Part 2: the Theorem 2.1 certificate ----------------------------
    println!("\nTheorem 2.1 swap-chain certificate (simultaneous start):");
    let mut cert = Table::new(["schedule", "k", "bound min{k,n-k+1}", "forced rounds"]);
    for kk in [4u32, 16, 64, 120] {
        let adv = SwapChainAdversary::new(n, kk);
        let res = adv.run(&RoundRobinSchedule::new(n));
        cert.push_row([
            "round-robin".to_string(),
            kk.to_string(),
            adv.bound().to_string(),
            res.forced_rounds.to_string(),
        ]);
        let fam = FamilyProvider::default().family(n, kk.max(2));
        let res = adv.run(&selectors::schedule::ScheduleExt::cycle(fam));
        cert.push_row([
            format!("(n,{})-selective cycle", kk.max(2)),
            kk.to_string(),
            adv.bound().to_string(),
            res.forced_rounds.to_string(),
        ]);
    }
    cert.print();
    println!(
        "\nEvery schedule is forced to at least the bound — the executable \
         form of the\npaper's lower-bound proof."
    );
}
