//! Quickstart: solve the wake-up problem under all three knowledge
//! scenarios on the same instance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mac_wakeup::prelude::*;

fn main() {
    let n = 256; // stations attached to the channel
    let sim = Simulator::new(SimConfig::new(n));

    // The adversary's choice: four stations, staggered wake-ups, first at
    // slot 1000. Nobody told the stations any of this.
    let ids: Vec<StationId> = [17u32, 64, 133, 250].map(StationId).into();
    let pattern = WakePattern::staggered(&ids, 1000, 25).unwrap();
    let s = pattern.s();
    let k = pattern.k() as u32;

    println!("instance: n = {n}, k = {k} stations, first wake-up at s = {s}");
    println!("pattern:  {:?}\n", pattern.wakes());

    for scenario in [Scenario::A { s }, Scenario::B { k }, Scenario::C] {
        let protocol = scenario_protocol(scenario, n, 42);
        let outcome = sim.run(&protocol, &pattern, 0).expect("valid instance");
        println!(
            "{:<20} bound {:<22} → latency {:>4} slots, winner station {}",
            scenario.label(),
            scenario.bound(),
            outcome.latency().expect("paper's algorithms solve this"),
            outcome.winner.unwrap(),
        );
    }

    println!("\nFor comparison, two classical baselines on the same instance:");
    for (name, protocol) in [
        (
            "round-robin",
            Box::new(RoundRobin::new(n)) as Box<dyn Protocol>,
        ),
        ("RPD (randomized)", Box::new(Rpd::new(n))),
    ] {
        let outcome = sim.run(&protocol, &pattern, 0).unwrap();
        println!(
            "{:<20} → latency {:>4} slots",
            name,
            outcome.latency().unwrap()
        );
    }
}
