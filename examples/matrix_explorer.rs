//! Matrix explorer: inspect the §5 waking matrix interactively-ish —
//! dimensions, one station's walk (the paper's Figure 1), a column snapshot
//! with several staggered stations (Figure 2), and the §5.2 balance
//! quantities slot by slot.
//!
//! ```sh
//! cargo run --release --example matrix_explorer [n]
//! ```

use mac_wakeup::prelude::*;
use wakeup_core::waking_matrix::{render_column, render_walk, MatrixAnalysis};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let matrix = WakingMatrix::new(MatrixParams::new(n));
    println!(
        "waking matrix for n = {n}: {} rows × ℓ = {} columns, window = {}, c = {}, total scan = {}\n",
        matrix.rows(),
        matrix.ell(),
        matrix.window(),
        matrix.c(),
        matrix.total_scan()
    );

    println!("--- Figure 1: one station's walk ---\n");
    print!("{}", render_walk(&matrix, 5));

    // A staggered pattern that spreads stations over rows.
    let ids = [3u32, n / 3, 2 * n / 3, n - 1];
    let pattern = WakePattern::new(vec![
        (StationId(ids[0]), 0),
        (StationId(ids[1]), matrix.dwell(1)),
        (StationId(ids[2]), matrix.dwell(1) + matrix.dwell(2)),
        (StationId(ids[3]), matrix.dwell(1) + matrix.dwell(2) + 2),
    ])
    .unwrap();
    let j = matrix.dwell(1) + matrix.dwell(2) + matrix.dwell(3) / 2;

    println!("\n--- Figure 2: column snapshot at j = {j} ---\n");
    print!("{}", render_column(&matrix, &pattern, j));

    println!("\n--- §5.2 balance quantities around j ---\n");
    let analysis = MatrixAnalysis::new(&matrix, &pattern);
    println!("slot | window | ρ | |S(j)| | Σ|S_ij|/2^i+ρ | S1 | S2 | isolated");
    for jj in j.saturating_sub(4)..=j + 8 {
        println!(
            "{:>4} | {:>6} | {} | {:>5} | {:>12.4} | {:>2} | {:>2} | {:?}",
            jj,
            matrix.window_index(jj),
            matrix.rho(jj % matrix.ell()),
            analysis.operational_count(jj),
            analysis.weighted_contention(jj),
            if analysis.s1(jj) { "✓" } else { "✗" },
            if analysis.s2(jj) { "✓" } else { "✗" },
            analysis.isolated(jj),
        );
    }

    // Run the actual protocol on this pattern and report.
    let out = Simulator::new(SimConfig::new(n))
        .run(&WakeupN::new(MatrixParams::new(n)), &pattern, 0)
        .unwrap();
    println!(
        "\nwakeup(n) on this pattern: winner {} at latency {} (Theorem 5.3 horizon: {})",
        out.winner.unwrap(),
        out.latency().unwrap(),
        2 * u64::from(matrix.c())
            * pattern.k() as u64
            * u64::from(matrix.rows())
            * u64::from(matrix.window()),
    );
}
