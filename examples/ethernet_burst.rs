//! Ethernet-style collision storm: a burst of stations contends right after
//! a broadcast, the load spike the paper's introduction motivates ("very
//! often most transmitters are inactive most of the time, while only a few
//! are busy").
//!
//! We replay the same storm against the deterministic Scenario B algorithm
//! (the natural choice when the NIC knows a provisioned contention bound)
//! and the classical randomized contenders, comparing latency *and* energy
//! (transmission counts — what a radio would spend).
//!
//! ```sh
//! cargo run --release --example ethernet_burst
//! ```

use mac_wakeup::prelude::*;

/// A per-seed protocol factory.
type Factory = Box<dyn Fn(u64) -> Box<dyn Protocol> + Sync>;

fn main() {
    let n = 1024; // provisioned LAN size
    let k = 16; // collision-domain burst size
    let runs = 200u64;

    println!("collision storm: {k} of {n} stations wake simultaneously; {runs} storms\n");

    let contenders: Vec<(&str, Factory)> = vec![
        (
            "wakeup_with_k (deterministic)",
            Box::new(move |seed| -> Box<dyn Protocol> {
                Box::new(WakeupWithK::new(
                    n,
                    k,
                    FamilyProvider::random_with_seed(seed),
                ))
            }),
        ),
        (
            "binary exponential backoff",
            Box::new(move |_| -> Box<dyn Protocol> { Box::new(BinaryExponentialBackoff::new(n)) }),
        ),
        (
            "slotted ALOHA p=1/k",
            Box::new(move |_| -> Box<dyn Protocol> { Box::new(Aloha::new(n, k)) }),
        ),
        (
            "RPD (randomized, k unknown)",
            Box::new(move |_| -> Box<dyn Protocol> { Box::new(Rpd::new(n)) }),
        ),
    ];

    let mut table = Table::new([
        "protocol",
        "mean latency",
        "p90",
        "worst",
        "mean tx / storm",
        "guarantee",
    ]);

    for (name, factory) in &contenders {
        let res = run_ensemble(
            &EnsembleSpec::new(n, runs).with_max_slots(100_000),
            factory.as_ref(),
            |seed| {
                // Random k-subset of NICs, all waking at the storm slot.
                use mac_sim::pattern::IdChoice;
                use rand::SeedableRng;
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let ids = IdChoice::Random.pick(n, k as usize, &mut rng);
                WakePattern::simultaneous(&ids, 0).unwrap()
            },
        );
        let s = res.summary().expect("storm must resolve");
        table.push_row([
            name.to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.p90),
            format!("{:.0}", s.max),
            format!("{:.1}", res.energy.mean_transmissions()),
            if name.starts_with("wakeup") {
                "deterministic worst case".to_string()
            } else {
                "expected case only".to_string()
            },
        ]);
    }
    table.print();

    println!(
        "\nThe deterministic algorithm pays a latency premium on the average \
         storm but\ncarries a worst-case guarantee of Θ(k·log(n/k)) ≈ {:.0} slots — \
         the randomized\nprotocols have unbounded tails (compare the `worst` column \
         as you raise `runs`).",
        f64::from(k) * (f64::from(n) / f64::from(k)).log2()
    );
}
