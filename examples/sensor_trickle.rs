//! Sparse sensor network: nodes wake rarely and independently (trickle
//! arrivals), and neither the first wake-up time nor the active count is
//! known — exactly Scenario C, the paper's headline setting.
//!
//! Shows the waking-matrix protocol resolving trickles of different
//! densities, with per-station energy accounting (transmissions are what
//! drain a sensor battery).
//!
//! ```sh
//! cargo run --release --example sensor_trickle
//! ```

use mac_wakeup::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 512; // deployed sensors
    let runs = 100u64;
    println!("sensor field: n = {n}, Scenario C (nothing known), {runs} trickles per density\n");

    let mut table = Table::new([
        "arrival rate p",
        "k (awake)",
        "mean latency",
        "p90",
        "worst",
        "mean tx / node",
    ]);

    for (p, k) in [(0.5, 3usize), (0.1, 6), (0.02, 12)] {
        let res = run_ensemble(
            &EnsembleSpec::new(n, runs),
            |seed| -> Box<dyn Protocol> {
                Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
            },
            move |seed| {
                use mac_sim::pattern::IdChoice;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let ids = IdChoice::Random.pick(n, k, &mut rng);
                WakePattern::trickle(&ids, 0, p, &mut rng).unwrap()
            },
        );
        let s = res.summary().expect("trickle must resolve");
        table.push_row([
            format!("{p}"),
            k.to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.p90),
            format!("{:.0}", s.max),
            format!("{:.2}", res.energy.mean_transmissions() / k as f64),
        ]);
    }
    table.print();

    // Zoom into one trickle with a transcript.
    println!("\none trickle in detail (p = 0.1, k = 6):");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ids = mac_sim::pattern::IdChoice::Random.pick(n, 6, &mut rng);
    let pattern = WakePattern::trickle(&ids, 0, 0.1, &mut rng).unwrap();
    println!("  wake times: {:?}", pattern.wakes());
    let cfg = SimConfig::new(n).with_transcript();
    let out = Simulator::new(cfg)
        .run(
            &WakeupN::new(MatrixParams::new(n).with_seed(7)),
            &pattern,
            7,
        )
        .unwrap();
    let tr = out.transcript.as_ref().unwrap();
    println!(
        "  channel ({} slots from s): {}",
        tr.len(),
        tr.ascii_strip()
    );
    println!(
        "  winner: station {} after {} slots; {} transmissions total",
        out.winner.unwrap(),
        out.latency().unwrap(),
        out.transmissions
    );
    println!("\n  (legend: '.' silence, 'x' collision, '!' successful solo transmission)");
}
