//! EXP-RAND — §6: randomized solutions.
//!
//! * RPD accomplishes wake-up in `O(log n)` expected time (Jurdziński &
//!   Stachowiak), independent of `k` and of the wake-up pattern;
//! * with known `k`, RPD with period `2⌈log k⌉` achieves `O(log k)`,
//!   matching the Kushilevitz–Mansour `Ω(log k)` lower bound;
//! * classical baselines (slotted ALOHA at `p = 1/k`, binary exponential
//!   backoff) for context.
//!
//! Streaming ensembles on the work-stealing runner (randomized protocols
//! mean many cheap runs — exactly the workload batching amortizes).

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_randomized",
    id: "EXP-RAND",
    title: "EXP-RAND — §6 randomized protocols",
    claim: "RPD: O(log n) expected; RPD-k: O(log k) ≍ Ω(log k) lower bound",
    grid: Grid::Dense,
    full_budget_secs: 60,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs() * 4; // randomized: more runs, cheap ones
    let k = 4usize;
    let mut meter = TableMeter::new();

    // --- RPD expected time vs log n ------------------------------------
    let mut rpd_points = Vec::new();
    let mut table = Table::new(["n", "k", "RPD mean", "log2 n", "RPD-k mean", "log2 k"]);
    for &n in &ctx.ns() {
        let rpd = run_ensemble_stream(
            &ctx.spec(n, runs, 5000, &format!("EXP-RAND rpd n={n}"))
                .with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(Rpd::new(n)) },
            |seed| crate::random_pattern(n, k, 16, seed),
        );
        let rpdk = run_ensemble_stream(
            &ctx.spec(n, runs, 5000, &format!("EXP-RAND rpdk n={n}"))
                .with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(RpdK::new(n, k as u32)) },
            |seed| crate::random_pattern(n, k, 16, seed),
        );
        ctx.check(format!("RPD solves at n={n}"), Check::Solves(&rpd));
        ctx.check(format!("RPD-k solves at n={n}"), Check::Solves(&rpdk));
        meter.absorb(&rpd);
        meter.absorb(&rpdk);
        rpd_points.push((f64::from(n), k as f64, rpd.mean()));
        ctx.row(
            "rpd_sweep",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("rpd_mean", rpd.mean())
                .with("rpdk_mean", rpdk.mean())
                .with("log2_n", f64::from(n).log2())
                .with("log2_k", (k as f64).log2()),
        );
        table.push_row([
            n.to_string(),
            k.to_string(),
            format!("{:.1}", rpd.mean()),
            format!("{:.1}", f64::from(n).log2()),
            format!("{:.1}", rpdk.mean()),
            format!("{:.1}", (k as f64).log2()),
        ]);
    }
    ctx.table("rpd", &table);
    let fit = fit_model(Model::LogN, &rpd_points).expect("fit");
    ctx.note(format!("\nRPD shape fit: {}", fit.render()));

    // --- RPD-k vs the Ω(log k) lower bound ------------------------------
    ctx.note("\nRPD-k expected latency vs k (n fixed), with the Ω(log k) reference:");
    let n = *ctx.ns().last().unwrap();
    let mut ktab = Table::new(["n", "k", "RPD-k mean", "log2 k (lower-bound shape)"]);
    let mut k_points = Vec::new();
    for kk in [2u32, 4, 8, 16, 32, 64] {
        let res = run_ensemble_stream(
            &ctx.spec(n, runs, 5100, &format!("EXP-RAND rpdk k={kk}"))
                .with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(RpdK::new(n, kk)) },
            |seed| crate::burst_pattern(n, kk as usize, 3, seed),
        );
        ctx.check(format!("RPD-k solves at k={kk}"), Check::Solves(&res));
        meter.absorb(&res);
        k_points.push((f64::from(n), f64::from(kk), res.mean()));
        ctx.row(
            "rpdk_sweep",
            Record::new()
                .with("n", n)
                .with("k", kk)
                .with("mean", res.mean())
                .with("log2_k", f64::from(kk).log2()),
        );
        ktab.push_row([
            n.to_string(),
            kk.to_string(),
            format!("{:.1}", res.mean()),
            format!("{:.1}", f64::from(kk).log2()),
        ]);
    }
    ctx.table("rpdk", &ktab);
    let kfit = fit_model(Model::LogK, &k_points).expect("fit");
    ctx.note(format!("RPD-k shape fit: {}", kfit.render()));

    // --- baseline comparison at one configuration -----------------------
    ctx.note(format!(
        "\nbaseline comparison (n={n}, k=8, simultaneous burst):"
    ));
    let mut btab = Table::new(["protocol", "mean", "p90", "max"]);
    type Factory = Box<dyn Fn(u64) -> Box<dyn Protocol> + Sync>;
    let protocols: Vec<(&str, Factory)> = vec![
        ("RPD", Box::new(move |_| Box::new(Rpd::new(n)))),
        ("RPD-k", Box::new(move |_| Box::new(RpdK::new(n, 8)))),
        ("ALOHA 1/k", Box::new(move |_| Box::new(Aloha::new(n, 8)))),
        (
            "BEB",
            Box::new(move |_| Box::new(BinaryExponentialBackoff::new(n))),
        ),
    ];
    for (name, factory) in &protocols {
        let res = run_ensemble_stream(
            &ctx.spec(n, runs, 5200, &format!("EXP-RAND {name}"))
                .with_max_slots(1_000_000),
            factory.as_ref(),
            |seed| crate::burst_pattern(n, 8, 0, seed),
        );
        ctx.check(format!("{name} solves"), Check::Solves(&res));
        meter.absorb(&res);
        ctx.row(
            "baselines",
            Record::new()
                .with("protocol", *name)
                .with("n", n)
                .with("k", 8u64)
                .with_all(res.record()),
        );
        btab.push_row([
            name.to_string(),
            format!("{:.1}", res.mean()),
            format!("{:.1}", res.p90()),
            format!("{:.0}", res.max()),
        ]);
    }
    ctx.table("baselines", &btab);
    ctx.work("EXP-RAND", &meter);
}
