//! EXP-SEL — §3's combinatorial tool: `(n, 2^i)`-selective families of
//! length `O(2^i + 2^i·log(n/2^i))` exist (Komlós–Greenberg) and our
//! realizations are selective.
//!
//! Tables: family length vs the `k·log(n/k)+k` model for the randomized
//! construction; the explicit Kautz–Singleton sizes (`O(k² log² n)`) for
//! contrast; exhaustive verification on small universes and Monte-Carlo
//! falsification on large ones.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale};
use selectors::prelude::*;
use wakeup_analysis::{fit_model, Model, Record, Table};
use wakeup_core::FamilyProvider;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_selective",
    id: "EXP-SEL",
    title: "EXP-SEL — selective family sizes and verification",
    claim: "random families: O(k + k·log(n/k)); Kautz–Singleton: O(k²·log² n)",
    grid: Grid::Dense,
    full_budget_secs: 180,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();

    // --- size scaling ----------------------------------------------------
    let mut table = Table::new(["n", "k", "random len", "k·log2(n/k)+k", "KS len (q²)"]);
    let mut points = Vec::new();
    for &n in &ctx.ns() {
        for &k in &[2u32, 4, 8, 16, 32, 64] {
            if k > n {
                continue;
            }
            let rand_len = RandomFamilyBuilder::new(n, k).prescribed_length() as u64;
            let ks = KautzSingleton::new(n, k);
            let model = f64::from(k) * (f64::from(n) / f64::from(k)).log2() + f64::from(k);
            points.push((f64::from(n), f64::from(k), rand_len as f64));
            ctx.row(
                "sizes",
                Record::new()
                    .with("n", n)
                    .with("k", k)
                    .with("random_len", rand_len)
                    .with("model_len", model)
                    .with("kautz_singleton_len", ks.len() as u64),
            );
            table.push_row([
                n.to_string(),
                k.to_string(),
                rand_len.to_string(),
                format!("{model:.0}"),
                ks.len().to_string(),
            ]);
        }
    }
    ctx.table("sizes", &table);
    let fit = fit_model(Model::KLogNOverK, &points).expect("fit");
    ctx.note(format!("\nrandom-family length fit: {}", fit.render()));

    // --- exhaustive verification (ground truth, small n) -----------------
    ctx.note("\nexhaustive verification on small universes:");
    let mut vtab = Table::new(["n", "k", "construction", "targets checked", "verdict"]);
    for (n, k) in [(12u32, 2u32), (14, 3), (16, 4)] {
        let fam = FamilyProvider::default().family(n, k).materialize();
        let res = selectors::verify::selective_exhaustive(&fam);
        ctx.check(
            format!("random family selective at n={n}, k={k}"),
            Check::Holds(res.is_ok(), format!("{res:?}")),
        );
        vtab.push_row([
            n.to_string(),
            k.to_string(),
            "random".into(),
            res.as_ref()
                .map(|r| r.targets_checked.to_string())
                .unwrap_or_default(),
            if res.is_ok() {
                "selective ✓".into()
            } else {
                format!("FAILS: {res:?}")
            },
        ]);
        let ksf = KautzSingleton::new(n, k).materialize();
        let res = selectors::verify::strongly_selective_exhaustive(&ksf);
        ctx.check(
            format!("kautz-singleton strongly selective at n={n}, k={k}"),
            Check::Holds(res.is_ok(), format!("{res:?}")),
        );
        vtab.push_row([
            n.to_string(),
            k.to_string(),
            "kautz-singleton".into(),
            res.as_ref()
                .map(|r| r.targets_checked.to_string())
                .unwrap_or_default(),
            if res.is_ok() {
                "STRONGLY selective ✓".into()
            } else {
                format!("FAILS: {res:?}")
            },
        ]);
        let greedy = GreedyBuilder::new(n, k).build().expect("greedy");
        vtab.push_row([
            n.to_string(),
            k.to_string(),
            format!("greedy (len {})", greedy.len()),
            "-".into(),
            "selective by construction ✓".into(),
        ]);
    }
    ctx.table("verification", &vtab);

    // --- Monte-Carlo falsification at scale ------------------------------
    ctx.note("\nMonte-Carlo falsification at scale:");
    let trials = if scale == Scale::Full { 20_000 } else { 3_000 };
    let mut mtab = Table::new(["n", "k", "trials", "verdict"]);
    for (n, k) in [(1024u32, 16u32), (4096, 32), (16384, 64)] {
        let fam = RandomFamilyBuilder::new(n, k).seed(9).build_explicit();
        let res = verify::selective_monte_carlo(&fam, trials, 13);
        ctx.check(
            format!("no Monte-Carlo counterexample at n={n}, k={k}"),
            Check::Holds(res.is_ok(), format!("{res:?}")),
        );
        ctx.row(
            "monte_carlo",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("trials", trials)
                .with("selective", res.is_ok()),
        );
        mtab.push_row([
            n.to_string(),
            k.to_string(),
            trials.to_string(),
            if res.is_ok() {
                "no counterexample".into()
            } else {
                format!("FAILS: {res:?}")
            },
        ]);
    }
    ctx.table("monte_carlo", &mtab);
}
