//! EXP-C — §5, Theorem 5.3: `wakeup(n)` resolves contention in
//! `O(k·log n·log log n)` with no knowledge of `s` or `k`.
//!
//! Workload: simultaneous `k`-bursts — the hard case for the matrix walk
//! (every station enters row 1 together; the walk must descend to density
//! `≈ 1/k`, which costs `Θ(k·log n·log log n)` slots once `k` exceeds the
//! `2^{log log n}` band the ρ-sweep absorbs inside each row). The greedy
//! *spoiler* adversary (delay-the-winner local search) probes beyond-burst
//! worst cases. Latency means are fitted against `k·log n·log log n` (the
//! claim) and `k·log² n` (the baseline shape it must beat).
//!
//! Since the epoch-scoped hint refactor the waking matrix answers
//! *structure-aware* hints — per-row PRF jumps on a hoisted mixing prefix,
//! with `Until::Slot` callbacks at row boundaries — so the sweep uses the
//! sparse `n` range (up to n = 2^20 at full scale) like EXP-A/B. Each row
//! reports the sparse work counters next to the dense-equivalent cost
//! (`slots × k`: on a burst every station stays operative to the end).

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale, TableMeter};
use mac_sim::prelude::*;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_scenario_c",
    id: "EXP-C",
    title: "EXP-C — Scenario C (nothing known): wakeup(n) over a waking matrix",
    claim: "O(k·log n·log log n); log log n factor above the Ω(k·log(n/k)) bound",
    grid: Grid::Sparse,
    full_budget_secs: 240,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();
    let runs = ctx.runs();
    let mut table = Table::new([
        "n",
        "k",
        "mean",
        "ci95",
        "max",
        "bound c·k·L·W",
        "censored",
        "polls/slot",
        "skip%",
        "dense-equiv speedup",
    ]);
    let mut points = Vec::new();
    let mut meter = TableMeter::new();

    for &n in &ctx.ns() {
        let k_cap = match scale {
            Scale::Quick => 256.min(n / 4),
            Scale::Full => 1024.min(n / 4),
        };
        let ks: Vec<u32> = ctx
            .ks(n)
            .into_iter()
            .filter(|&k| k <= k_cap.max(4))
            .chain([k_cap].into_iter().filter(|&k| k >= 4))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for &k in &ks {
            let spec = ctx.spec(n, runs, 3000, &format!("EXP-C n={n} k={k}"));
            let res = run_ensemble_stream(
                &spec,
                |seed| -> Box<dyn mac_sim::Protocol> {
                    Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
                },
                |seed| crate::burst_pattern(n, k as usize, 11, seed),
            );
            ctx.check(
                format!("scenario C solves at n={n}, k={k}"),
                Check::Solves(&res),
            );
            let matrix = WakingMatrix::new(MatrixParams::new(n));
            let theorem_horizon = 2
                * u64::from(matrix.c())
                * u64::from(k)
                * u64::from(matrix.rows())
                * u64::from(matrix.window());
            ctx.check(
                format!("within the Theorem 5.3 horizon at n={n}, k={k}"),
                Check::MaxWithin(&res, theorem_horizon as f64),
            );
            meter.absorb(&res);
            points.push((f64::from(n), f64::from(k), res.mean()));
            let dense_polls = res.work.slots * u64::from(k);
            ctx.row(
                "sweep",
                Record::new()
                    .with("n", n)
                    .with("k", k)
                    .with("horizon", theorem_horizon)
                    .with_all(res.record()),
            );
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", res.mean()),
                format!("{:.1}", res.ci95()),
                format!("{:.0}", res.max()),
                theorem_horizon.to_string(),
                res.censored().to_string(),
                format!("{:.4}", res.work.polls_per_slot()),
                format!("{:.1}", 100.0 * res.work.skip_fraction()),
                format!("{:.0}x", dense_polls as f64 / res.work.polls.max(1) as f64),
            ]);
        }
    }
    ctx.table("main", &table);
    ctx.work("EXP-C", &meter);

    ctx.note("\nmodel ranking over measured means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        ctx.note(format!("  {}", fit.render()));
        ctx.row(
            "fit",
            Record::new()
                .with("model", fit.model.name())
                .with("a", fit.a)
                .with("b", fit.b)
                .with("r2", fit.r2),
        );
    }
    let claim = fit_model(Model::KLogNLogLogN, &points).expect("fit");
    ctx.note(format!("\npaper-shape fit: {}", claim.render()));
    // Theorem 5.3 is an UPPER bound (O(·), not Θ(·)): the verdict is
    // containment within the horizon (checked per row above) plus a strong
    // fit of the bound shape. On plain bursts the measured latency actually
    // grows like Θ(k·log log n) — the effective per-k constant is
    // L·W/2^W ≈ log log n — comfortably below the worst-case bound; see
    // EXPERIMENTS.md.
    if claim.r2 >= 0.85 {
        ctx.note(format!(
            "UPPER BOUND CONFIRMED: every run within the Theorem 5.3 horizon; \
             bound shape fits with R² = {:.3}",
            claim.r2
        ));
    } else {
        ctx.note(format!(
            "upper bound holds but the shape fit is weak (R² = {:.3})",
            claim.r2
        ));
    }

    // Spoiler adversary probe at a fixed configuration.
    let n = 256u32;
    let k = 8usize;
    ctx.note(format!("\nspoiler-adversary probe (n={n}, k={k}):"));
    let sim = Simulator::new(SimConfig::new(n));
    let protocol = WakeupN::new(MatrixParams::new(n).with_seed(7));
    let start = crate::burst_pattern(n, k, 0, 7);
    let base = sim.run(&protocol, &start, 7).unwrap().latency().unwrap();
    let spoiler = SpoilerSearch::new(40, 100_000);
    let spoiled = spoiler.search(&sim, &protocol, start, 7).unwrap();
    let worst = spoiled
        .outcome
        .latency()
        .map(|l| l.to_string())
        .unwrap_or_else(|| "censored".into());
    ctx.note(format!(
        "  baseline burst latency {base}, after {} spoiler moves: {worst}",
        spoiled.moves
    ));
    let matrix = WakingMatrix::new(MatrixParams::new(n));
    let horizon = 2
        * u64::from(matrix.c())
        * k as u64
        * u64::from(matrix.rows())
        * u64::from(matrix.window());
    ctx.note(format!(
        "  Theorem 5.3 horizon for this configuration: {horizon} slots"
    ));
    ctx.row(
        "spoiler",
        Record::new()
            .with("n", n)
            .with("k", k)
            .with("baseline_latency", base)
            .with("spoiler_moves", spoiled.moves)
            .with("spoiled_latency", worst)
            .with("horizon", horizon),
    );
}
