//! TAB-SUMMARY — the paper's headline result table (abstract + §1):
//!
//! | Scenario | Bound |
//! |----------|-------|
//! | A (s known) | `Θ(k log(n/k) + 1)` |
//! | B (k known) | `Θ(k log(n/k) + 1)` |
//! | C (neither)  | `O(k log n log log n)` |
//!
//! Regenerated with measured latencies for each scenario's algorithm at a
//! grid of `(n, k)`, on the work-stealing runner with streaming
//! aggregation.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_summary",
    id: "TAB-SUMMARY",
    title: "TAB-SUMMARY — the three-scenario result table",
    claim: "A, B: Θ(k·log(n/k)+1); C: O(k·log n·log log n)",
    grid: Grid::Dense,
    full_budget_secs: 180,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    let mut table = Table::new([
        "scenario",
        "bound",
        "n",
        "k",
        "measured mean",
        "measured max",
        "model value",
    ]);
    let mut meter = TableMeter::new();

    for &n in &ctx.ns() {
        for &k in &[2u32, 8, 32] {
            if k > n {
                continue;
            }
            let s_for = |seed: u64| (seed % 31) * 7;
            type Factory = Box<dyn Fn(u64) -> Box<dyn Protocol> + Sync>;
            let configs: Vec<(Scenario, Factory)> = vec![
                (
                    Scenario::A { s: 0 },
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupWithS::new(
                            n,
                            s_for(seed),
                            FamilyProvider::random_with_seed(seed),
                        ))
                    }),
                ),
                (
                    Scenario::B { k },
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupWithK::new(
                            n,
                            k,
                            FamilyProvider::random_with_seed(seed),
                        ))
                    }),
                ),
                (
                    Scenario::C,
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
                    }),
                ),
            ];
            for (scenario, factory) in &configs {
                let res = run_ensemble_stream(
                    &ctx.spec(
                        n,
                        runs,
                        6000,
                        &format!("TAB-SUMMARY {} n={n} k={k}", scenario.label()),
                    ),
                    factory.as_ref(),
                    |seed| crate::burst_pattern(n, k as usize, s_for(seed), seed),
                );
                ctx.check(
                    format!("{} solves at n={n}, k={k}", scenario.label()),
                    Check::Solves(&res),
                );
                meter.absorb(&res);
                let model = match scenario {
                    Scenario::C => Model::KLogNLogLogN.eval(f64::from(n), f64::from(k)),
                    _ => Model::KLogNOverK.eval(f64::from(n), f64::from(k)),
                };
                ctx.row(
                    "sweep",
                    Record::new()
                        .with("scenario", scenario.label())
                        .with("bound", scenario.bound())
                        .with("n", n)
                        .with("k", k)
                        .with("model_value", model)
                        .with_all(res.record()),
                );
                table.push_row([
                    scenario.label().to_string(),
                    scenario.bound().to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{:.1}", res.mean()),
                    format!("{:.0}", res.max()),
                    format!("{model:.0}"),
                ]);
            }
        }
    }
    ctx.table("main", &table);
    ctx.work("TAB-SUMMARY", &meter);
    ctx.note(
        "\n(measured/model ratios are implementation constants; the shape \
         columns are validated by EXP-A/B/C's fits)",
    );
}
