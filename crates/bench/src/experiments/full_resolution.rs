//! EXP-KG — the Komlós–Greenberg predecessor problem (§1, reference \[25\]):
//! all `k` awake stations must transmit successfully, in
//! `O(k + k·log(n/k))` (their existential bound).
//!
//! Measures the selective-family resolver with retirement against retiring
//! round-robin (`Θ(n)`) and fits the measured full-resolution latency
//! against `k·log(n/k)+1` and `n`. Since the epoch-scoped hint refactor,
//! full-resolution runs execute on the **sparse** engine (`Until::
//! NextSuccess` hints: retirement is feedback-driven, but only successes
//! invalidate the schedule), so the sweep reaches the same `n` as EXP-A/B.
//! Each row reports the sparse work counters next to the dense-equivalent
//! cost: on a simultaneous burst every pattern station stays awake for the
//! whole run, so the dense engine would pay exactly `slots × k` polls.
//!
//! `WAKEUP_ASSERT_SPARSE=1` (the CI smoke) turns the sparse-path
//! expectations into hard check failures: the selective rows must actually
//! have skipped slots and stayed far below the dense poll count — i.e. no
//! protocol silently fell back to `TxHint::Dense`.

use crate::experiment::{Check, Ctx, Experiment};
use crate::Grid;
use mac_sim::prelude::*;
use wakeup_analysis::ensemble::WorkStats;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_full_resolution",
    id: "EXP-KG",
    title: "EXP-KG — full conflict resolution (every station transmits)",
    claim: "Komlós–Greenberg: O(k + k·log(n/k)); time-division baseline: Θ(n)",
    grid: Grid::Sparse,
    full_budget_secs: 15,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // lint: allow(env-discipline) — opt-in CI assertion knob, read-only; documented in EXPERIMENTS.md
    let assert_sparse = std::env::var("WAKEUP_ASSERT_SPARSE").is_ok();
    let mut table = Table::new([
        "n",
        "k",
        "selective (mean)",
        "selective (max)",
        "retiring RR (mean)",
        "unresolved",
        "polls/slot",
        "skip%",
        "dense-equiv speedup",
    ]);
    let mut points = Vec::new();
    let mut total_work = WorkStats::default();

    // The resolvers ride the sparse path now, so the sweep uses the sparse
    // n range (k stays modest: full resolution needs ≥ k successes, and the
    // per-run cost scales with events ≈ k·passes, not slots — hence the
    // sweep caps the k universe at 64).
    // One construction cache across the whole sweep: the per-run provider
    // seeds recur in every `(n, k)` cell (same base seed, same run count),
    // so the nested family sequences are built once per `n` and shared by
    // every cell and worker after that.
    let cache = wakeup_core::ConstructionCache::new();
    for &n in &ctx.ns() {
        for &k in &ctx.ks(64.min(n)) {
            let sel = run_ensemble_full(ctx, &cache, runs, 8000, n, k, true);
            let rr = run_ensemble_full(ctx, &cache, runs, 8000, n, k, false);
            let sel_summary = Summary::of_u64(&sel.latencies).expect("selective must resolve");
            let rr_summary = Summary::of_u64(&rr.latencies).expect("round-robin must resolve");
            points.push((f64::from(n), f64::from(k), sel_summary.mean));
            // Dense equivalent: every awake station polled every slot.
            let dense_polls = sel.work.slots * u64::from(k);
            let speedup = dense_polls as f64 / sel.work.polls.max(1) as f64;
            // k = 1 resolves in a slot or two — nothing to skip; assert
            // only where runs have silent stretches to win back.
            if assert_sparse && sel.work.slots > 4 * runs {
                ctx.check(
                    format!("selective resolver skipped slots at n={n}, k={k}"),
                    Check::Holds(
                        sel.work.skipped > 0,
                        format!("skipped {} (dense fallback?)", sel.work.skipped),
                    ),
                );
                ctx.check(
                    format!("sparse poll count ≪ dense at n={n}, k={k}"),
                    Check::Holds(
                        speedup > 2.0,
                        format!("sparse polls {} vs dense {dense_polls}", sel.work.polls),
                    ),
                );
            }
            total_work.merge(&sel.work);
            total_work.merge(&rr.work);
            ctx.row(
                "sweep",
                Record::new()
                    .with("n", n)
                    .with("k", k)
                    .with("selective_mean", sel_summary.mean)
                    .with("selective_max", sel_summary.max)
                    .with("retiring_rr_mean", rr_summary.mean)
                    .with("unresolved", (sel.unresolved + rr.unresolved) as u64)
                    .with("slots", sel.work.slots)
                    .with("polls", sel.work.polls)
                    .with("skipped", sel.work.skipped),
            );
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", sel_summary.mean),
                format!("{:.0}", sel_summary.max),
                format!("{:.1}", rr_summary.mean),
                (sel.unresolved + rr.unresolved).to_string(),
                format!("{:.4}", sel.work.polls_per_slot()),
                format!("{:.1}", 100.0 * sel.work.skip_fraction()),
                format!("{speedup:.0}x"),
            ]);
        }
    }
    ctx.table("main", &table);
    // EXP-KG runs outside the ensemble layer, so its work totals go out as
    // a machine row (no wall-clock meter) plus the historical footer note.
    ctx.row(
        "work_total",
        Record::new()
            .with("label", "EXP-KG")
            .with_all(total_work.record()),
    );
    ctx.note(format!("EXP-KG work: {}", total_work.render()));
    if assert_sparse && ctx.failures() == 0 {
        ctx.note("sparse-path assertion: PASSED (skips > 0, speedup > 2x on every selective row)");
    }

    ctx.note("\nmodel ranking over selective-resolver means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        ctx.note(format!("  {}", fit.render()));
        ctx.row(
            "fit",
            Record::new()
                .with("model", fit.model.name())
                .with("a", fit.a)
                .with("b", fit.b)
                .with("r2", fit.r2),
        );
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    let linear = fit_model(Model::K, &points).expect("fit");
    ctx.note(format!("\nKG-shape fit: {}", target.render()));
    // KG's bound is O(k + k·log(n/k)) — an upper bound with an additive
    // Θ(k) term. Measured growth of Θ(k) (each resolution needs its own
    // success slot) sits *inside* the bound; either shape fitting well
    // confirms it.
    if target.r2 >= 0.85 || linear.r2 >= 0.85 {
        ctx.note(format!(
            "UPPER BOUND CONSISTENT: growth is Θ(k)·const (R² = {:.3}) \
             within O(k + k·log(n/k)); the log factor is subdominant at \
             these sizes",
            linear.r2.max(target.r2)
        ));
    } else {
        ctx.note("shape unclear — see EXPERIMENTS.md notes");
    }
}

/// One protocol's ensemble: full-resolution latencies in seed order,
/// unresolved count, and the aggregated engine-work counters.
struct FullEnsemble {
    latencies: Vec<u64>,
    unresolved: usize,
    work: WorkStats,
}

/// Runs execute on the work-stealing pool; the fold is in seed order, so
/// the output is identical to the old sequential loop.
fn run_ensemble_full(
    ctx: &Ctx<'_>,
    cache: &wakeup_core::ConstructionCache,
    runs: u64,
    base_seed: u64,
    n: u32,
    k: u32,
    selective: bool,
) -> FullEnsemble {
    let cfg = SimConfig::new(n)
        .with_max_slots(4 * u64::from(n) * 64)
        .until_all_resolved();
    let sim = Simulator::new(cfg);
    let base_seed = base_seed.wrapping_add(ctx.seed());
    let label = format!(
        "EXP-KG {} n={n} k={k}",
        if selective { "selective" } else { "rr" }
    );
    // The construction cache rides through `Runner::map` into every worker:
    // families shared by the nested doubling sequences come out of it
    // instead of being rebuilt; per-run provider seeds keep the sampling
    // semantics, bounded by the cache cap.
    let (results, _stats) = ctx.runner(&label).map(runs, |i| {
        let seed = base_seed.wrapping_add(i);
        let pattern = crate::burst_pattern(n, k as usize, 3, seed);
        let protocol: Box<dyn Protocol> = if selective {
            Box::new(FullResolution::cached(
                n,
                k,
                &FamilyProvider::Random { seed, delta: 1e-4 },
                cache,
            ))
        } else {
            Box::new(RetiringRoundRobin::new(n))
        };
        let out = sim.run(protocol.as_ref(), &pattern, seed).unwrap();
        (
            out.full_resolution_latency(),
            out.slots_simulated,
            out.polls,
            out.skipped_slots,
        )
    });
    let mut work = WorkStats::default();
    for &(_, slots, polls, skipped) in &results {
        work.slots += slots;
        work.polls += polls;
        work.skipped += skipped;
    }
    let latencies: Vec<u64> = results.iter().filter_map(|&(l, _, _, _)| l).collect();
    let unresolved = results.len() - latencies.len();
    FullEnsemble {
        latencies,
        unresolved,
        work,
    }
}
