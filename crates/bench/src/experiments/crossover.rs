//! EXP-CROSS — Corollary 2.1 / the §3–§4 interleaving rationale:
//! round-robin wins for `k > n/c`, the selective component wins for small
//! `k`, and the interleaved algorithm tracks the minimum of the two.
//!
//! Fixed `n`, sweeping `k` to `n`, measuring worst-case-flavoured latency
//! (the adversarial last-block pattern for round-robin, bursts for the
//! others). Each cell is a small ensemble over family seeds on the
//! work-stealing runner; at full scale the sweep runs at `n = 2^20` — all
//! three protocols ride the sparse engine, so per-run cost scales with
//! events and `k`, not with the million-slot cycle length. The footer
//! reports the per-table `WorkStats`.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale, TableMeter};
use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_crossover",
    id: "EXP-CROSS",
    title: "EXP-CROSS — round-robin vs selective component vs interleaving",
    claim: "interleaving = Θ(min{n−k+1, k·log(n/k)+k}) = Θ(k·log(n/k)+1)",
    grid: Grid::Sparse,
    full_budget_secs: 600,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();
    let n: u32 = match scale {
        Scale::Quick => 1024,
        Scale::Full => 1 << 20,
    };
    // Selective-component cells beyond this k print "—": past the
    // structural crossover (k ≈ n/log n) the selective schedule is
    // dominated by round-robin anyway, and its run cost grows like
    // k·polylog(k) while the round-robin cell stays O(k) events.
    let sel_cap: u32 = match scale {
        Scale::Quick => n,
        Scale::Full => 65_536,
    };
    let cap = 4 * u64::from(n) + 64;

    let mut table = Table::new([
        "k",
        "round-robin (worst ids)",
        "wait-and-go alone",
        "wakeup_with_k (interleaved)",
        "n-k+1",
    ]);
    let mut meter = TableMeter::new();

    let mut ks: Vec<u32> = vec![2, 4, 16, 64];
    if scale == Scale::Full {
        ks.extend([512, 4096, 16384, 65536]);
    }
    ks.extend([n / 8, n / 4, n / 2, 3 * n / 4, n - 16, n - 1]);
    for k in ks {
        if !(1..=n).contains(&k) {
            continue;
        }
        // Patterns are the deterministic worst case; the ensemble varies
        // family seeds. Expensive large-k selective cells drop to one run.
        let runs = if k <= 4096 { 3u64 } else { 1 };

        // Round-robin against its adversarial pattern: the k stations owning
        // the last turns of the cycle. Deterministic protocol — the ensemble
        // still exercises it per seed to fold its work into the table stats.
        let rr = run_ensemble_stream(
            &ctx.spec(n, runs, 10_000, &format!("EXP-CROSS rr k={k}"))
                .with_max_slots(cap),
            |_| -> Box<dyn Protocol> { Box::new(RoundRobin::new(n)) },
            |_| crate::worst_rr_pattern(n, k as usize, 0),
        );
        ctx.check(
            format!("round-robin always solves at k={k}"),
            Check::NoCensored(&rr),
        );
        meter.absorb(&rr);
        let mut rec = Record::new()
            .with("n", n)
            .with("k", k)
            .with("round_robin_mean", rr.mean())
            .with("envelope", u64::from(n - k + 1));

        let (wag_str, full_str) = if k <= sel_cap {
            // The selective component and the interleaved algorithm face the
            // same adversarial block, so the interleaved column reads as
            // min(round-robin column, wait-and-go column) · O(1).
            let wag = run_ensemble_stream(
                &ctx.spec(n, runs, 10_000, &format!("EXP-CROSS wag k={k}"))
                    .with_max_slots(cap),
                |seed| -> Box<dyn Protocol> {
                    Box::new(WaitAndGo::new(n, k, FamilyProvider::random_with_seed(seed)))
                },
                |_| crate::worst_rr_pattern(n, k as usize, 0),
            );
            meter.absorb(&wag);
            let wag_str = if wag.solved == 0 {
                "censored".into()
            } else if wag.censored() > 0 {
                format!("{:.0} ({}/{} censored)", wag.mean(), wag.censored(), runs)
            } else {
                format!("{:.0}", wag.mean())
            };

            let full = run_ensemble_stream(
                &ctx.spec(n, runs, 10_000, &format!("EXP-CROSS wwk k={k}"))
                    .with_max_slots(cap),
                |seed| -> Box<dyn Protocol> {
                    Box::new(WakeupWithK::new(
                        n,
                        k,
                        FamilyProvider::random_with_seed(seed),
                    ))
                },
                |_| crate::worst_rr_pattern(n, k as usize, 0),
            );
            ctx.check(
                format!("interleaved algorithm solves at k={k}"),
                Check::NoCensored(&full),
            );
            meter.absorb(&full);
            rec.push("wait_and_go_mean", crate::mean_or_nan(&wag));
            rec.push("wait_and_go_censored", wag.censored());
            rec.push("interleaved_mean", full.mean());
            (wag_str, format!("{:.0}", full.mean()))
        } else {
            ("—".into(), "—".into())
        };
        ctx.row("sweep", rec);

        table.push_row([
            k.to_string(),
            format!("{:.0}", rr.mean()),
            wag_str,
            full_str,
            (n - k + 1).to_string(),
        ]);
    }
    ctx.table("main", &table);
    ctx.work("EXP-CROSS", &meter);
    ctx.note(
        "\n(for small k the selective column ≪ round-robin; near k = n the \
         round-robin column ≈ n−k+1 wins; the interleaved column stays within \
         2× the better of the two — the factor-2 interleaving cost; — marks \
         selective cells beyond the crossover that are skipped at full scale)",
    );
}
