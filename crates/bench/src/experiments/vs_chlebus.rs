//! EXP-CHL — §1 "Our results": the Scenario C algorithm is "substantially
//! better than the best known contention resolution protocol in the locally
//! synchronous model given by Chlebus et al. \[9\]" (`O(k log² n)`).
//!
//! Head-to-head: `wakeup(n)` vs the locally-synchronized doubling stand-in
//! (`LocalDoubling`, see DESIGN.md §4 substitution 3) on simultaneous
//! bursts, sweeping `n` at fixed `k`. The expected ratio grows like
//! `log n / (c·log log n)`. Streaming ensembles on the work-stealing
//! runner; the footer reports per-table `WorkStats`.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_vs_chlebus",
    id: "EXP-CHL",
    title: "EXP-CHL — wakeup(n) vs locally-synchronized O(k log² n) baseline",
    claim: "k·log n·log log n beats k·log² n by ~log n / log log n",
    grid: Grid::Dense,
    full_budget_secs: 120,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    let k = 16usize;
    let mut table = Table::new([
        "n",
        "k",
        "wakeup(n) mean",
        "local-doubling mean",
        "ratio",
        "structural bound ratio L/(c·W)",
    ]);
    let mut meter = TableMeter::new();

    for &n in &ctx.ns() {
        let ours = run_ensemble_stream(
            &ctx.spec(n, runs, 4000, &format!("EXP-CHL ours n={n}")),
            |seed| -> Box<dyn Protocol> {
                Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
            },
            |seed| crate::burst_pattern(n, k, 0, seed),
        );
        let base = run_ensemble_stream(
            &ctx.spec(n, runs, 4000, &format!("EXP-CHL baseline n={n}"))
                .with_max_slots(20_000_000),
            |seed| -> Box<dyn Protocol> { Box::new(LocalDoubling::new(n).with_seed(seed)) },
            |seed| crate::burst_pattern(n, k, 0, seed),
        );
        ctx.check(format!("wakeup(n) solves at n={n}"), Check::Solves(&ours));
        ctx.check(format!("baseline solves at n={n}"), Check::Solves(&base));
        meter.absorb(&ours);
        meter.absorb(&base);
        let ours_mean = ours.mean();
        let base_mean = base.mean();
        let matrix = WakingMatrix::new(MatrixParams::new(n));
        let predicted =
            f64::from(matrix.rows()) / (f64::from(matrix.c()) * f64::from(matrix.window()));
        ctx.row(
            "sweep",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("wakeup_n_mean", ours_mean)
                .with("local_doubling_mean", base_mean)
                .with("ratio", base_mean / ours_mean)
                .with("structural_ratio", predicted),
        );
        table.push_row([
            n.to_string(),
            k.to_string(),
            format!("{ours_mean:.0}"),
            format!("{base_mean:.0}"),
            format!("{:.2}", base_mean / ours_mean),
            format!("{predicted:.2}"),
        ]);
    }
    ctx.table("main", &table);
    ctx.work("EXP-CHL", &meter);
    ctx.note(
        "\n(the structural column is the ratio of the two *bounds*; the measured \
         ratio is larger on bursts because the waking matrix's ρ-sweep also \
         resolves k ≤ 2^log log n within a single row, which the local \
         baseline cannot do — see EXPERIMENTS.md)",
    );
}
