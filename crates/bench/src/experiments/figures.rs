//! EXP-FIG1 / EXP-FIG2 — the paper's two figures, regenerated as text.
//!
//! * Figure 1: the transmission sets of a `(log n × ℓ)` transmission matrix
//!   conditionally to which a station `u`, waking up at time `σ_u`,
//!   transmits between `µ(σ_u)` and `µ(σ_u) + m_1 + … + m_i − 1`.
//! * Figure 2: three stations waking at different times transmit, at slot
//!   `j`, conditionally to sets in different *rows* of the same *column*.

use crate::experiment::{Check, Ctx, Experiment};
use crate::Grid;
use mac_sim::{StationId, WakePattern};
use wakeup_analysis::Record;
use wakeup_core::waking_matrix::{render_column, render_walk, MatrixAnalysis};
use wakeup_core::{MatrixParams, WakingMatrix};

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_figures",
    id: "EXP-FIG",
    title: "EXP-FIG — Figures 1 and 2 (matrix walk, column snapshot)",
    claim: "protocol structure diagrams of §5.1",
    grid: Grid::Dense,
    full_budget_secs: 10,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let n = 64u32;
    let matrix = WakingMatrix::new(MatrixParams::new(n));

    ctx.note("--- Figure 1: one station's walk over the matrix rows ---\n");
    let walk = render_walk(&matrix, 7);
    ctx.note(walk.trim_end_matches('\n'));

    ctx.note("\n--- Figure 2: three stations, different rows, same column ---\n");
    // Stagger the wake-ups so the stations sit in rows 3, 2 and 1 at slot j:
    // the earliest waker has descended deepest.
    let j = matrix.dwell(1) + matrix.dwell(2) + matrix.dwell(3) / 2;
    let wake_row2 = matrix.dwell(1) + matrix.dwell(2) - 2; // δ ∈ [m₁, m₁+m₂)
    let wake_row1 = j - matrix.dwell(1) / 2; // δ < m₁
    let pattern = WakePattern::new(vec![
        (StationId(5), 0),
        (StationId(23), wake_row2),
        (StationId(47), wake_row1),
    ])
    .unwrap();
    let column = render_column(&matrix, &pattern, j);
    ctx.note(column.trim_end_matches('\n'));

    // Cross-check the figure against the analysis machinery.
    let analysis = MatrixAnalysis::new(&matrix, &pattern);
    let occ = analysis.occupancy(j);
    ctx.note(format!("\noccupancy check at j={j}: {occ:?}"));
    ctx.check(
        "all three stations operational",
        Check::Holds(
            occ.len() == 3,
            format!("{} of 3 stations operational at j={j}", occ.len()),
        ),
    );
    let rows: std::collections::HashSet<u32> = occ.iter().map(|&(_, r)| r).collect();
    ctx.check(
        "stations occupy three distinct rows",
        Check::Holds(rows.len() == 3, format!("{} distinct rows", rows.len())),
    );
    ctx.note("distinct rows occupied: 3 (earlier wakers sit in deeper rows)");
    for &(id, row) in &occ {
        ctx.row(
            "occupancy",
            Record::new()
                .with("slot", j)
                .with("station", id)
                .with("row", row),
        );
    }
}
