//! EXP-CHURN — graceful degradation under station churn: crashes,
//! re-wakes, and permanent leaves.
//!
//! The churn layer ([`ChurnScript`](mac_sim::ChurnScript)) crashes awake
//! stations mid-run and optionally re-wakes them after a fixed delay.
//! Fates are pure in `(run seed, station id, wake slot)` and drawn against
//! a shared hash threshold, so the crashed-station sets are **nested**
//! across rates: every station that crashes at rate `p` also crashes at
//! any rate `p′ > p` — the sweep checks the crash counters climb the
//! staircase accordingly.
//!
//! Degradation stays bounded because a protocol that cycles through the
//! universe never depends on one station: when the would-be winner
//! crashes, another awake station's turn arrives within one cycle, so the
//! mean moves by at most ≈ one extra cycle even at a 30% crash rate. The
//! permanent-leave arm removes the safety net of re-wakes and reports
//! censoring honestly: a run whose every contender leaves before a
//! success cannot solve, and the sweep's `censored` column says so rather
//! than folding those runs into the latency statistics.
//!
//! `WAKEUP_ASSERT_CLASSES=1` (the CI smoke) re-runs every cell under
//! [`PopulationMode::Classes`](mac_sim::PopulationMode::Classes) and turns
//! bit-identity of the aggregates — churn counters included — into hard
//! check failures: a churned member leaves an equivalence class exactly
//! the way a retired one does.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{burst_pattern, Grid};
use mac_sim::{ChurnScript, Protocol, RandomChurn, WakePattern};
use wakeup_analysis::ensemble::EnsembleSummary;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_churn",
    id: "EXP-CHURN",
    title: "EXP-CHURN — degradation under station churn (crash, re-wake, leave)",
    claim: "crash sets nest across rates; cycling protocols degrade by ≈ one cycle",
    grid: Grid::Sparse,
    full_budget_secs: 60,
    run,
};

/// Crash rates of the sweep, in parts-per-million (0%, 10%, 30%).
const CRASH_PPM: [u32; 3] = [0, 100_000, 300_000];

/// Contending stations per run — enough that losing a few to churn leaves
/// live contenders with overwhelming probability.
const K: u32 = 16;

/// The universe sizes of the churn sweep (sparse grid capped at 2^16 —
/// the subject is the churn layer, not engine scale).
fn churn_ns(ctx: &Ctx<'_>) -> Vec<u32> {
    let ns: Vec<u32> = ctx.ns().into_iter().filter(|&n| n <= 1 << 16).collect();
    match (ns.first(), ns.last()) {
        (Some(&lo), Some(&hi)) if lo != hi => vec![lo, hi],
        (Some(&lo), _) => vec![lo],
        _ => vec![256],
    }
}

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // lint: allow(env-discipline) — opt-in CI assertion knob, read-only; documented in README.md
    let assert_classes = std::env::var("WAKEUP_ASSERT_CLASSES").is_ok();
    // lint: allow(env-discipline) — opt-in exploration knob (top crash rate, ppm), read-only; documented in README.md
    let top_ppm: u32 = std::env::var("WAKEUP_CHURN_PPM")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|p: u32| p.min(999_999))
        .unwrap_or(CRASH_PPM[CRASH_PPM.len() - 1]);
    let mut rates: Vec<u32> = CRASH_PPM.to_vec();
    *rates.last_mut().expect("non-empty") = top_ppm;
    rates.sort_unstable();
    rates.dedup();
    if top_ppm != CRASH_PPM[CRASH_PPM.len() - 1] {
        ctx.note(format!("WAKEUP_CHURN_PPM: top crash rate {top_ppm} ppm"));
    }

    let cache = ConstructionCache::new();
    let mut table = Table::new([
        "protocol", "n", "crash", "re-wake", "mean", "worst", "crashes", "rewakes", "censored",
    ]);
    for &n in &churn_ns(ctx) {
        // Crashes land within half a cycle of the wake; re-wakes follow a
        // quarter-cycle later — brief absences a cycling protocol rides out.
        let lifetime = u64::from(n) / 2 + 1;
        let rewake_after = u64::from(n) / 4 + 1;
        for proto_name in ["round_robin", "wakeup_with_s"] {
            let mut base_mean = f64::NAN;
            let mut prev_crashes = 0u64;
            for &ppm in &rates {
                let churn = ChurnScript::random(RandomChurn {
                    crash_ppm: ppm,
                    lifetime,
                    rewake_after: Some(rewake_after),
                })
                .expect("valid churn");
                let label = format!("EXP-CHURN {proto_name} n={n} crash={ppm}ppm");
                let res = run_churn_cell(ctx, &cache, proto_name, n, runs, &label, &churn);
                ctx.check(
                    format!("{proto_name} solves at n={n}, crash {ppm} ppm (re-wake)"),
                    Check::NoCensored(&res),
                );
                ctx.check(
                    format!("{proto_name} re-wakes ≤ crashes at n={n}, crash {ppm} ppm"),
                    Check::Holds(
                        res.faults.churn_rewakes <= res.faults.churn_crashes,
                        format!(
                            "{} re-wakes vs {} crashes",
                            res.faults.churn_rewakes, res.faults.churn_crashes
                        ),
                    ),
                );
                // Nested fates: the crashed-station set only grows with the
                // rate, so the ensemble crash counter must too.
                ctx.check(
                    format!("{proto_name} crash staircase at n={n}, crash {ppm} ppm"),
                    Check::Holds(
                        res.faults.churn_crashes >= prev_crashes,
                        format!(
                            "{} crashes vs previous rate's {}",
                            res.faults.churn_crashes, prev_crashes
                        ),
                    ),
                );
                prev_crashes = res.faults.churn_crashes;
                if ppm == 0 {
                    ctx.check(
                        format!("{proto_name} churn-free at n={n}: no fault fired"),
                        Check::Holds(!res.faults.any(), format!("{:?}", res.faults)),
                    );
                    base_mean = res.mean();
                } else {
                    // Losing the would-be winner costs at most ≈ one extra
                    // cycle (another contender's turn, or the re-wake a
                    // quarter-cycle later): 2n slack on the mean.
                    let bound = base_mean + 2.0 * f64::from(n);
                    ctx.check(
                        format!("{proto_name} degradation bounded at n={n}, crash {ppm} ppm"),
                        Check::Holds(
                            res.mean() <= bound,
                            format!(
                                "mean {:.1} vs one-cycle bound {:.1} (baseline {:.1})",
                                res.mean(),
                                bound,
                                base_mean
                            ),
                        ),
                    );
                }
                if assert_classes {
                    let classed = run_churn_cell(
                        ctx,
                        &cache,
                        proto_name,
                        n,
                        runs,
                        &format!("{label} classes"),
                        &churn,
                    );
                    check_identical(ctx, proto_name, n, ppm, &res, &classed);
                }
                emit_cell(ctx, &mut table, proto_name, n, ppm, true, &res);
            }

            // Permanent-leave arm: the top rate with no re-wake. Some runs
            // may genuinely lose every contender before a success — those
            // are censored, counted, and excluded from latency statistics.
            let churn = ChurnScript::random(RandomChurn {
                crash_ppm: top_ppm,
                lifetime,
                rewake_after: None,
            })
            .expect("valid churn");
            let label = format!("EXP-CHURN {proto_name} n={n} crash={top_ppm}ppm permanent");
            let res = run_churn_cell(ctx, &cache, proto_name, n, runs, &label, &churn);
            ctx.check(
                format!("{proto_name} survives permanent leaves at n={n}, crash {top_ppm} ppm"),
                Check::Solves(&res),
            );
            ctx.check(
                format!("{proto_name} no re-wakes in permanent arm at n={n}"),
                Check::Holds(
                    res.faults.churn_rewakes == 0,
                    format!("{} re-wakes", res.faults.churn_rewakes),
                ),
            );
            emit_cell(ctx, &mut table, proto_name, n, top_ppm, false, &res);
        }
    }
    ctx.table("main", &table);
    if assert_classes && ctx.failures() == 0 {
        ctx.note("churn assertion: PASSED (classed cells bit-identical, counters included)");
    }
}

/// One churn cell: `runs` churned runs of `proto_name` on a `K`-station
/// simultaneous burst. The classes variant is selected by the label suffix
/// so the concrete and classed specs differ only in population mode.
fn run_churn_cell(
    ctx: &Ctx<'_>,
    cache: &ConstructionCache,
    proto_name: &str,
    n: u32,
    runs: u64,
    label: &str,
    churn: &ChurnScript,
) -> EnsembleSummary {
    let mut spec = ctx
        .spec(n, runs, 53_000, label)
        .with_max_slots(32 * u64::from(n))
        .with_churn(churn.clone());
    if label.ends_with("classes") {
        spec = spec.with_classes().without_per_station_detail();
    }
    match proto_name {
        "round_robin" => run_ensemble_stream(
            &spec,
            |_| -> Box<dyn Protocol> { Box::new(RoundRobin::new(n)) },
            |seed| {
                let s = (seed % 97) * 13;
                burst_pattern(n, K as usize, s, seed)
            },
        ),
        "wakeup_with_s" => run_ensemble_stream_cached(
            &spec,
            cache,
            |cache, seed| -> Box<dyn Protocol> {
                let s = (seed % 97) * 13;
                Box::new(WakeupWithS::cached(n, s, &FamilyProvider::default(), cache))
            },
            |seed| {
                let s = (seed % 97) * 13;
                WakePattern::range(1, K + 1, s).expect("valid block")
            },
        ),
        other => unreachable!("unknown churn protocol {other}"),
    }
}

/// Emit one cell's sweep row and pretty-table row.
fn emit_cell(
    ctx: &mut Ctx<'_>,
    table: &mut Table,
    proto_name: &str,
    n: u32,
    ppm: u32,
    rewake: bool,
    res: &EnsembleSummary,
) {
    ctx.row(
        "sweep",
        Record::new()
            .with("protocol", proto_name)
            .with("n", n)
            .with("k", K)
            .with("crash_ppm", ppm)
            .with("rewake", rewake)
            .with("churn_crashes", res.faults.churn_crashes)
            .with("churn_rewakes", res.faults.churn_rewakes)
            .with_all(res.record()),
    );
    table.push_row([
        proto_name.to_string(),
        n.to_string(),
        format!("{:.0}%", f64::from(ppm) / 1e4),
        if rewake { "yes".into() } else { "no".into() },
        format!("{:.1}", res.mean()),
        res.worst.to_string(),
        res.faults.churn_crashes.to_string(),
        res.faults.churn_rewakes.to_string(),
        res.censored().to_string(),
    ]);
}

/// A classed and a concrete run of the same churned cell must agree
/// exactly on every observable aggregate **including the churn counters**:
/// a crashed member leaves its equivalence class the way a retired one
/// does, so class aggregation changes memory, never outcomes.
fn check_identical(
    ctx: &mut Ctx<'_>,
    proto_name: &str,
    n: u32,
    ppm: u32,
    concrete: &EnsembleSummary,
    classed: &EnsembleSummary,
) {
    let same = classed.runs == concrete.runs
        && classed.solved == concrete.solved
        && classed.worst == concrete.worst
        && classed.mean().to_bits() == concrete.mean().to_bits()
        && classed.max().to_bits() == concrete.max().to_bits()
        && classed.energy.total_transmissions == concrete.energy.total_transmissions
        && classed.energy.total_collisions == concrete.energy.total_collisions
        && classed.work.slots == concrete.work.slots
        && classed.faults.erasures == concrete.faults.erasures
        && classed.faults.captures == concrete.faults.captures
        && classed.faults.churn_crashes == concrete.faults.churn_crashes
        && classed.faults.churn_rewakes == concrete.faults.churn_rewakes;
    ctx.check(
        format!("{proto_name} classes ≡ concrete at n={n}, crash {ppm} ppm"),
        Check::Holds(
            same,
            format!(
                "classed mean {} crashes {} re-wakes {} vs concrete mean {} crashes {} re-wakes {}",
                classed.mean(),
                classed.faults.churn_crashes,
                classed.faults.churn_rewakes,
                concrete.mean(),
                concrete.faults.churn_crashes,
                concrete.faults.churn_rewakes,
            ),
        ),
    );
}
