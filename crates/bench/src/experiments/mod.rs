//! The experiment registry: all 17 experiments as data.
//!
//! Each submodule holds one ported experiment body (the code that used to
//! live in the corresponding `exp_*` binary) plus its [`Experiment`]
//! declaration; [`registry`] lists them in the order of the historical
//! crate docs. The binaries still exist as shims that run their registry
//! entry with the environment-variable configuration, so
//! `cargo run --bin exp_scenario_a` behaves exactly as before the
//! redesign.

use crate::experiment::Experiment;

pub mod ablations;
pub mod balance;
pub mod certify;
pub mod churn;
pub mod crossover;
pub mod figures;
pub mod full_resolution;
pub mod lower_bound;
pub mod mega;
pub mod noise;
pub mod randomized;
pub mod scenario_a;
pub mod scenario_b;
pub mod scenario_c;
pub mod selective;
pub mod summary;
pub mod vs_chlebus;

/// All experiments, in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        lower_bound::EXP,
        scenario_a::EXP,
        scenario_b::EXP,
        scenario_c::EXP,
        vs_chlebus::EXP,
        randomized::EXP,
        figures::EXP,
        balance::EXP,
        selective::EXP,
        crossover::EXP,
        summary::EXP,
        ablations::EXP,
        full_resolution::EXP,
        certify::EXP,
        mega::EXP,
        noise::EXP,
        churn::EXP,
    ]
}

/// Look up one experiment by registry name.
pub fn find(name: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let names: std::collections::HashSet<&str> = reg.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 17, "duplicate registry names");
        for e in &reg {
            assert!(e.name.starts_with("exp_"), "{} not exp_-prefixed", e.name);
            assert!(!e.id.is_empty() && !e.title.is_empty() && !e.claim.is_empty());
        }
        assert!(find("exp_scenario_a").is_some());
        assert!(find("nonsense").is_none());
    }
}
