//! EXP-BAL — §5.2/§5.3 mechanics, measured:
//!
//! * Theorem 5.1: by `t − s = 2c·|S(t)|·log n·log log n`, the set `S(t)` is
//!   well-balanced (enough S1 ∧ S2 slots exist);
//! * Lemma 5.4: windows contain slots with weighted contention in `[1/8, 2]`;
//! * Lemma 5.3: on such slots, a station is isolated with probability
//!   ≥ 1/128 (we measure the empirical isolation frequency).
//!
//! The per-seed matrix scans are independent, so they fan out on the
//! work-stealing runner; counters fold in seed order.

use crate::experiment::{Ctx, Experiment};
use crate::{Grid, Scale};
use mac_sim::pattern::IdChoice;
use mac_sim::WakePattern;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wakeup_analysis::{Record, Table};
use wakeup_core::waking_matrix::MatrixAnalysis;
use wakeup_core::{MatrixParams, WakingMatrix};

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_balance",
    id: "EXP-BAL",
    title: "EXP-BAL — well-balancedness, the Lemma 5.4 bracket, isolation frequency",
    claim: "S1∧S2 slots accumulate; each has bracket slots; isolation ≥ 1/128 there",
    grid: Grid::Dense,
    full_budget_secs: 60,
    run,
};

/// Counters of one seed's scan over the analysis horizon.
#[derive(Clone, Copy, Default)]
struct SeedCounts {
    s1s2: u64,
    bracket_windows: u64,
    total_windows: u64,
    bracket_slots: u64,
    isolated_bracket: u64,
    first_isolation: Option<u64>,
}

fn scan_seed(n: u32, k: u32, rows: u32, window: u32, seed: u64) -> SeedCounts {
    let mut c = SeedCounts::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k as usize, &mut rng);
    let pattern = WakePattern::uniform_window(&ids, 0, 16, &mut rng).unwrap();
    let m = WakingMatrix::new(MatrixParams::new(n).with_seed(seed));
    let analysis = MatrixAnalysis::new(&m, &pattern);
    let horizon = 2 * u64::from(m.c()) * u64::from(k) * u64::from(rows) * u64::from(window);

    for j in 0..horizon {
        if analysis.s1(j) && analysis.s2(j) {
            c.s1s2 += 1;
        }
        let wc = analysis.weighted_contention(j);
        if (0.125..=2.0).contains(&wc) && analysis.operational_count(j) > 0 {
            c.bracket_slots += 1;
            if analysis.isolated(j).is_some() {
                c.isolated_bracket += 1;
            }
        }
        if c.first_isolation.is_none() && analysis.isolated(j).is_some() {
            c.first_isolation = Some(j);
        }
    }
    // Window-level Lemma 5.4 check.
    for w_idx in 0..horizon / u64::from(window) {
        let start = w_idx * u64::from(window);
        if analysis.operational_count(start) == 0 {
            continue;
        }
        c.total_windows += 1;
        let has_bracket = (start..start + u64::from(window))
            .any(|j| (0.125..=2.0).contains(&analysis.weighted_contention(j)));
        if has_bracket {
            c.bracket_windows += 1;
        }
    }
    c
}

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();
    let n = 256u32;
    let matrix = WakingMatrix::new(MatrixParams::new(n));
    let (rows, window) = (matrix.rows(), matrix.window());
    ctx.note(format!(
        "matrix: n={n}, rows={rows}, window={window}, ℓ={}\n",
        matrix.ell()
    ));

    let mut table = Table::new([
        "k",
        "horizon 2c·k·L·W",
        "S1∧S2 slots",
        "bracket windows %",
        "isolated bracket slots %",
        "first isolation",
    ]);

    let seeds = if scale == Scale::Full { 20u64 } else { 5 };
    let seed_offset = ctx.seed();
    for k in [2u32, 4, 8, 16, 32] {
        let (per_seed, _stats) = ctx.runner(&format!("EXP-BAL k={k}")).map(seeds, |seed| {
            scan_seed(n, k, rows, window, seed_offset.wrapping_add(seed))
        });

        let mut total = SeedCounts::default();
        let mut first_isolations = Vec::new();
        for c in &per_seed {
            total.s1s2 += c.s1s2;
            total.bracket_windows += c.bracket_windows;
            total.total_windows += c.total_windows;
            total.bracket_slots += c.bracket_slots;
            total.isolated_bracket += c.isolated_bracket;
            if let Some(fi) = c.first_isolation {
                first_isolations.push(fi);
            }
        }

        let horizon =
            2 * u64::from(matrix.c()) * u64::from(k) * u64::from(rows) * u64::from(window);
        let mean_first = if first_isolations.is_empty() {
            "none".to_string()
        } else {
            format!(
                "{:.0}",
                first_isolations.iter().sum::<u64>() as f64 / first_isolations.len() as f64
            )
        };
        ctx.row(
            "sweep",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("horizon", horizon)
                .with("s1s2_slots", total.s1s2)
                .with("bracket_windows", total.bracket_windows)
                .with("total_windows", total.total_windows)
                .with("bracket_slots", total.bracket_slots)
                .with("isolated_bracket_slots", total.isolated_bracket),
        );
        table.push_row([
            k.to_string(),
            horizon.to_string(),
            total.s1s2.to_string(),
            format!(
                "{:.0}%",
                100.0 * total.bracket_windows as f64 / total.total_windows.max(1) as f64
            ),
            format!(
                "{:.1}% (≥ {:.1}% required)",
                100.0 * total.isolated_bracket as f64 / total.bracket_slots.max(1) as f64,
                100.0 / 128.0
            ),
            mean_first,
        ]);
    }
    ctx.table("main", &table);
    ctx.note("\n(bracket = weighted contention in [1/8, 2]; Lemma 5.3 promises ≥ 0.78% isolation there — measured rates are far higher because the bound is worst-case)");
}
