//! EXP-B — §4: `wakeup_with_k` resolves contention in `Θ(k·log(n/k) + 1)`
//! when the contention bound `k` is known, under *staggered* wake-ups.
//!
//! Workload: the non-synchronized patterns Scenario B is designed for —
//! uniform windows, staggered arithmetic arrivals and bursts. Reports
//! per-pattern-family latency and the model-shape fit. Runs on the
//! work-stealing runner with the sparse-engine sweep up to `n = 2^20`; the
//! footer reports per-table `WorkStats` and throughput.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::{Protocol, WakePattern};
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_scenario_b",
    id: "EXP-B",
    title: "EXP-B — Scenario B (k known): wakeup_with_k",
    claim: "Θ(k·log(n/k) + 1) under arbitrary wake-up patterns",
    grid: Grid::Sparse,
    full_budget_secs: 300,
    run,
};

fn staggered_pattern(n: u32, k: usize, seed: u64) -> WakePattern {
    use mac_sim::pattern::IdChoice;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    WakePattern::staggered(&ids, seed % 53, 1 + seed % 11).unwrap()
}

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // `--family-pool F`: at most F distinct wait-and-go families per cell,
    // amortized through the per-cell construction cache (see EXP-A).
    let pool = ctx.family_pool();
    type PatternFn = fn(u32, usize, u64) -> WakePattern;
    let patterns: [(&str, PatternFn); 3] = [
        ("uniform-window", |n, k, seed| {
            crate::random_pattern(n, k, 64, seed)
        }),
        ("staggered", staggered_pattern),
        ("worst-block burst", |n, k, _seed| {
            crate::worst_rr_pattern(n, k, 7)
        }),
    ];

    let mut table = Table::new(["pattern", "n", "k", "mean", "max", "censored"]);
    let mut points = Vec::new();
    let mut meter = TableMeter::new();

    for &n in &ctx.ns() {
        for &k in &ctx.ks(n) {
            for (pname, pfn) in &patterns {
                let spec = ctx.spec(n, runs, 2000, &format!("EXP-B {pname} n={n} k={k}"));
                let cell_cache = ConstructionCache::new();
                let res = run_ensemble_stream_cached(
                    &spec,
                    &cell_cache,
                    |cache, seed| -> Box<dyn Protocol> {
                        let family_seed = pool.map_or(seed, |f| seed % f);
                        Box::new(WakeupWithK::cached(
                            n,
                            k,
                            &FamilyProvider::Random {
                                seed: family_seed,
                                delta: 1e-4,
                            },
                            cache,
                        ))
                    },
                    |seed| pfn(n, k as usize, seed),
                );
                ctx.check(
                    format!("solves: {pname} n={n} k={k}"),
                    Check::NoCensored(&res),
                );
                ctx.check(
                    format!("within round-robin envelope: {pname} n={n} k={k}"),
                    Check::MaxWithin(&res, 2.0 * f64::from(n) + 1.0),
                );
                meter.absorb(&res);
                if *pname == "worst-block burst" {
                    points.push((f64::from(n), f64::from(k), res.mean()));
                }
                ctx.row(
                    "sweep",
                    Record::new()
                        .with("pattern", *pname)
                        .with("n", n)
                        .with("k", k)
                        .with_all(res.record()),
                );
                table.push_row([
                    pname.to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{:.1}", res.mean()),
                    format!("{:.0}", res.max()),
                    res.censored().to_string(),
                ]);
            }
        }
    }
    ctx.table("main", &table);
    ctx.work("EXP-B", &meter);

    ctx.note("\nmodel ranking over burst means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        ctx.note(format!("  {}", fit.render()));
        ctx.row(
            "fit",
            Record::new()
                .with("model", fit.model.name())
                .with("a", fit.a)
                .with("b", fit.b)
                .with("r2", fit.r2),
        );
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    ctx.note(format!("\npaper-shape fit: {}", target.render()));
    ctx.note(crate::shape_verdict(&points, Model::KLogNOverK));
}
