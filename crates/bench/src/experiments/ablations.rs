//! EXP-ABL — ablations of the paper's design choices (DESIGN.md §6).
//!
//! * **ABL-CD** — collision detection: the paper's protocols are oblivious,
//!   so granting the stronger CD feedback changes nothing for them (measured
//!   identity), while feedback-driven BEB *requires* it;
//! * **ABL-RHO** — removing the `ρ(j)` density sweep from the waking matrix
//!   (the §5 design trick) measurably slows Scenario C;
//! * **ABL-C** — sensitivity of Scenario C to the constant `c`;
//! * **ABL-ENERGY** — transmissions per protocol (the extension metric);
//! * **ABL-BUDGET** — per-station transmission budgets (power-sensitive
//!   extension, ref. 19): how small a budget still solves wake-up;
//! * **ABL-ADV** — spoiler-adversary robustness across protocols.
//!
//! All ensembles run streaming on the work-stealing runner; the footer
//! reports the aggregated `WorkStats`.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::prelude::*;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_ablations",
    id: "EXP-ABL",
    title: "EXP-ABL — design-choice ablations",
    claim: "see DESIGN.md §6",
    grid: Grid::Dense,
    full_budget_secs: 120,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    let n = 256u32;
    let k = 8usize;
    let mut meter = TableMeter::new();

    // --- ABL-CD ----------------------------------------------------------
    ctx.note("ABL-CD: feedback model (oblivious protocols must not change)");
    let mut cd_tab = Table::new(["protocol", "no-CD mean", "CD mean"]);
    for (name, factory) in [
        (
            "wakeup(n)",
            Box::new(|seed: u64| -> Box<dyn mac_sim::Protocol> {
                Box::new(WakeupN::new(MatrixParams::new(256).with_seed(seed)))
            }) as Box<dyn Fn(u64) -> Box<dyn mac_sim::Protocol> + Sync>,
        ),
        (
            "wakeup_with_k",
            Box::new(|seed: u64| -> Box<dyn mac_sim::Protocol> {
                Box::new(WakeupWithK::new(
                    256,
                    8,
                    FamilyProvider::random_with_seed(seed),
                ))
            }),
        ),
        (
            "BEB (feedback-driven)",
            Box::new(|_| -> Box<dyn mac_sim::Protocol> {
                Box::new(BinaryExponentialBackoff::new(256))
            }),
        ),
    ] {
        let no_cd = run_ensemble_stream(
            &ctx.spec(n, runs, 7000, &format!("ABL-CD {name} no-cd")),
            factory.as_ref(),
            |seed| crate::random_pattern(n, k, 16, seed),
        );
        let cd = run_ensemble_stream(
            &ctx.spec(n, runs, 7000, &format!("ABL-CD {name} cd"))
                .with_feedback(FeedbackModel::CollisionDetection),
            factory.as_ref(),
            |seed| crate::random_pattern(n, k, 16, seed),
        );
        meter.absorb(&no_cd);
        meter.absorb(&cd);
        ctx.row(
            "abl_cd",
            Record::new()
                .with("protocol", name)
                .with("no_cd_mean", no_cd.mean())
                .with("cd_mean", cd.mean()),
        );
        cd_tab.push_row([
            name.to_string(),
            format!("{:.1}", no_cd.mean()),
            format!("{:.1}", cd.mean()),
        ]);
    }
    ctx.table("abl_cd", &cd_tab);

    // --- ABL-RHO ----------------------------------------------------------
    ctx.note("\nABL-RHO: waking matrix with vs without the ρ(j) density sweep");
    let mut rho_tab = Table::new(["k", "with sweep (mean)", "without sweep (mean)", "slowdown"]);
    for kk in [4usize, 8, 16, 32] {
        let with = run_ensemble_stream(
            &ctx.spec(n, runs, 7100, &format!("ABL-RHO with k={kk}")),
            |seed| -> Box<dyn mac_sim::Protocol> {
                Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
            },
            |seed| crate::burst_pattern(n, kk, 0, seed),
        );
        let without = run_ensemble_stream(
            &ctx.spec(n, runs, 7100, &format!("ABL-RHO without k={kk}")),
            |seed| -> Box<dyn mac_sim::Protocol> {
                Box::new(WakeupN::new(
                    MatrixParams::new(n).with_seed(seed).without_rho_sweep(),
                ))
            },
            |seed| crate::burst_pattern(n, kk, 0, seed),
        );
        ctx.check(format!("with-sweep solves at k={kk}"), Check::Solves(&with));
        meter.absorb(&with);
        meter.absorb(&without);
        let w = with.mean();
        ctx.row(
            "abl_rho",
            Record::new()
                .with("k", kk)
                .with("with_sweep_mean", w)
                .with("without_sweep_mean", crate::mean_or_nan(&without))
                .with("without_sweep_censored", without.censored()),
        );
        let (wo, slow) = if without.solved > 0 {
            let m = without.mean();
            (format!("{m:.1}"), format!("{:.2}×", m / w))
        } else {
            ("all censored".into(), "∞".into())
        };
        rho_tab.push_row([kk.to_string(), format!("{w:.1}"), wo, slow]);
    }
    ctx.table("abl_rho", &rho_tab);

    // --- ABL-C -------------------------------------------------------------
    ctx.note("\nABL-C: Scenario C sensitivity to the constant c (k = 64 so the");
    ctx.note("walk must descend past c-scaled row boundaries)");
    let mut c_tab = Table::new(["c", "mean latency", "censored"]);
    for c in [1u32, 2, 4, 8] {
        let res = run_ensemble_stream(
            &ctx.spec(n, runs, 7200, &format!("ABL-C c={c}")),
            move |seed| -> Box<dyn mac_sim::Protocol> {
                Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed).with_c(c)))
            },
            |seed| crate::burst_pattern(n, 64, 0, seed),
        );
        meter.absorb(&res);
        ctx.row(
            "abl_c",
            Record::new()
                .with("c", c)
                .with("mean", crate::mean_or_nan(&res))
                .with("censored", res.censored()),
        );
        c_tab.push_row([
            c.to_string(),
            if res.solved > 0 {
                format!("{:.1}", res.mean())
            } else {
                "-".into()
            },
            res.censored().to_string(),
        ]);
    }
    ctx.table("abl_c", &c_tab);

    // --- ABL-ENERGY ---------------------------------------------------------
    ctx.note("\nABL-ENERGY: mean transmissions per run (energy cost)");
    let mut e_tab = Table::new([
        "protocol",
        "mean latency",
        "mean transmissions",
        "mean collisions",
    ]);
    type Factory = Box<dyn Fn(u64) -> Box<dyn mac_sim::Protocol> + Sync>;
    let protos: Vec<(&str, Factory)> = vec![
        (
            "round-robin",
            Box::new(move |_| Box::new(RoundRobin::new(n))),
        ),
        (
            "wakeup_with_k",
            Box::new(move |seed| {
                Box::new(WakeupWithK::new(
                    n,
                    k as u32,
                    FamilyProvider::random_with_seed(seed),
                ))
            }),
        ),
        (
            "wakeup(n)",
            Box::new(move |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))),
        ),
        ("RPD", Box::new(move |_| Box::new(Rpd::new(n)))),
    ];
    for (name, factory) in &protos {
        let res = run_ensemble_stream(
            &ctx.spec(n, runs, 7300, &format!("ABL-ENERGY {name}")),
            factory.as_ref(),
            |seed| crate::burst_pattern(n, k, 0, seed),
        );
        meter.absorb(&res);
        ctx.row(
            "abl_energy",
            Record::new()
                .with("protocol", *name)
                .with("n", n)
                .with("k", k)
                .with_all(res.record()),
        );
        e_tab.push_row([
            name.to_string(),
            if res.solved > 0 {
                format!("{:.1}", res.mean())
            } else {
                "-".into()
            },
            format!("{:.1}", res.energy.mean_transmissions()),
            format!("{:.1}", res.energy.mean_collisions()),
        ]);
    }
    ctx.table("abl_energy", &e_tab);

    // --- ABL-BUDGET -----------------------------------------------------------
    ctx.note("\nABL-BUDGET: per-station transmission budgets (power-sensitive ext.)");
    let mut b_tab = Table::new(["protocol", "budget", "solved %", "mean latency"]);
    for budget in [1u64, 2, 4, 16] {
        for (name, mk) in [
            (
                "wakeup_with_k",
                Box::new(move |seed: u64| -> Box<dyn mac_sim::Protocol> {
                    Box::new(EnergyCapped::new(
                        WakeupWithK::new(n, k as u32, FamilyProvider::random_with_seed(seed)),
                        budget,
                    ))
                }) as Box<dyn Fn(u64) -> Box<dyn mac_sim::Protocol> + Sync>,
            ),
            (
                "wakeup(n)",
                Box::new(move |seed: u64| -> Box<dyn mac_sim::Protocol> {
                    Box::new(EnergyCapped::new(
                        WakeupN::new(MatrixParams::new(n).with_seed(seed)),
                        budget,
                    ))
                }),
            ),
            (
                "ALOHA 1/k",
                Box::new(move |_| -> Box<dyn mac_sim::Protocol> {
                    Box::new(EnergyCapped::new(Aloha::new(n, k as u32), budget))
                }),
            ),
        ] {
            let res = run_ensemble_stream(
                &ctx.spec(n, runs, 7500, &format!("ABL-BUDGET {name} b={budget}"))
                    .with_max_slots(20_000),
                mk.as_ref(),
                |seed| crate::burst_pattern(n, k, 0, seed),
            );
            meter.absorb(&res);
            ctx.row(
                "abl_budget",
                Record::new()
                    .with("protocol", name)
                    .with("budget", budget)
                    .with("solved", res.solved)
                    .with("runs", res.runs)
                    .with("mean", res.mean()),
            );
            b_tab.push_row([
                name.to_string(),
                budget.to_string(),
                format!("{:.0}%", 100.0 * res.solved as f64 / res.runs.max(1) as f64),
                if res.solved > 0 {
                    format!("{:.1}", res.mean())
                } else {
                    "-".into()
                },
            ]);
        }
    }
    ctx.table("abl_budget", &b_tab);

    // --- ABL-ADV -------------------------------------------------------------
    ctx.note("\nABL-ADV: spoiler adversary (delay-the-winner) vs random patterns");
    let mut a_tab = Table::new(["protocol", "random mean", "spoiled latency", "moves"]);
    let sim = Simulator::new(SimConfig::new(n));
    let spoiler = SpoilerSearch::new(32, 100_000);
    let adv_protos: Vec<(&str, Box<dyn mac_sim::Protocol>)> = vec![
        ("round-robin", Box::new(RoundRobin::new(n))),
        (
            "wakeup_with_k",
            Box::new(WakeupWithK::new(n, k as u32, FamilyProvider::default())),
        ),
        ("wakeup(n)", Box::new(WakeupN::new(MatrixParams::new(n)))),
    ];
    // Fixed deterministic protocols: the construction cache builds each
    // schedule/matrix once for the whole ensemble instead of once per run.
    let cache = wakeup_core::ConstructionCache::new();
    for (name, proto) in &adv_protos {
        let res = wakeup_analysis::run_ensemble_stream_cached(
            &ctx.spec(n, runs, 7400, &format!("ABL-ADV {name}")),
            &cache,
            |cache, _| -> Box<dyn mac_sim::Protocol> {
                // Note: same protocol object semantics per run; adversary
                // probes the fixed deterministic schedule.
                match *name {
                    "round-robin" => Box::new(RoundRobin::new(n)),
                    "wakeup_with_k" => Box::new(WakeupWithK::cached(
                        n,
                        k as u32,
                        &FamilyProvider::default(),
                        cache,
                    )),
                    _ => Box::new(WakeupN::cached(MatrixParams::new(n), cache)),
                }
            },
            |seed| crate::burst_pattern(n, k, 0, seed),
        );
        meter.absorb(&res);
        let start = crate::burst_pattern(n, k, 0, 99);
        let spoiled = spoiler.search(&sim, proto.as_ref(), start, 99).unwrap();
        ctx.row(
            "abl_adv",
            Record::new()
                .with("protocol", *name)
                .with("random_mean", crate::mean_or_nan(&res))
                .with(
                    "spoiled_latency",
                    spoiled.outcome.latency().map(|l| l as i64).unwrap_or(-1),
                )
                .with("spoiler_moves", spoiled.moves),
        );
        a_tab.push_row([
            name.to_string(),
            if res.solved > 0 {
                format!("{:.1}", res.mean())
            } else {
                "-".into()
            },
            spoiled
                .outcome
                .latency()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "censored".into()),
            spoiled.moves.to_string(),
        ]);
    }
    ctx.table("abl_adv", &a_tab);
    ctx.work("EXP-ABL", &meter);
}
