//! EXP-A — §3: `wakeup_with_s` resolves contention in `Θ(k·log(n/k) + 1)`
//! when the first wake-up slot `s` is known.
//!
//! Workload: simultaneous bursts at a known `s` (the hardest case for the
//! selective component — every awake station participates), with the
//! *adversarial* station block (the IDs owning round-robin's last turns),
//! so the measurement reflects the worst case the theorem bounds rather
//! than round-robin's lucky `n/k` average on random IDs. Reports mean/max
//! latency per `(n, k)` and fits the measured means **and the P² p90
//! curve** against the candidate model shapes; the paper's bound must rank
//! at the top and the absolute latency must stay below the round-robin
//! envelope `2n`.
//!
//! Since every protocol here rides the sparse engine, the full sweep
//! reaches `n = 2^20` (per-run cost is `O(events·log k)`, not `O(n)`); the
//! ensembles run on the work-stealing runner and the table footer reports
//! the aggregated `WorkStats` and throughput.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, TableMeter};
use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_scenario_a",
    id: "EXP-A",
    title: "EXP-A — Scenario A (s known): wakeup_with_s",
    claim: "Θ(k·log(n/k) + 1), optimal (Thm 2.1 + Clementi et al.)",
    grid: Grid::Sparse,
    full_budget_secs: 300,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // `--family-pool F` reduces the family seed modulo F, so each cell
    // builds at most F distinct selective families (amortized through the
    // per-cell construction cache) instead of one per run. Without the
    // flag every run keeps its own realization — the historical behavior,
    // bit-identical through the cached constructor.
    let pool = ctx.family_pool();
    let mut table = Table::new(["n", "k", "mean", "ci95", "max", "2n envelope", "censored"]);
    let mut points = Vec::new();
    let mut meter = TableMeter::new();

    for &n in &ctx.ns() {
        for &k in &ctx.ks(n) {
            let spec = ctx.spec(n, runs, 1000, &format!("EXP-A n={n} k={k}"));
            let cell_cache = ConstructionCache::new();
            let res = run_ensemble_stream_cached(
                &spec,
                &cell_cache,
                |cache, seed| -> Box<dyn Protocol> {
                    let s = (seed % 97) * 13;
                    let family_seed = pool.map_or(seed, |f| seed % f);
                    Box::new(WakeupWithS::cached(
                        n,
                        s,
                        &FamilyProvider::Random {
                            seed: family_seed,
                            delta: 1e-4,
                        },
                        cache,
                    ))
                },
                |seed| {
                    let s = (seed % 97) * 13;
                    crate::worst_rr_pattern(n, k as usize, s)
                },
            );
            ctx.check(
                format!("scenario A solves at n={n}, k={k}"),
                Check::NoCensored(&res),
            );
            ctx.check(
                format!("within round-robin envelope at n={n}, k={k}"),
                Check::MaxWithin(&res, 2.0 * f64::from(n) + 1.0),
            );
            meter.absorb(&res);
            points.push(SweepPoint::of(n, k, &res));
            ctx.row(
                "sweep",
                Record::new()
                    .with("n", n)
                    .with("k", k)
                    .with("envelope", u64::from(2 * n))
                    .with_all(res.record()),
            );
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", res.mean()),
                format!("{:.1}", res.ci95()),
                format!("{:.0}", res.max()),
                (2 * n).to_string(),
                res.censored().to_string(),
            ]);
        }
    }
    ctx.table("main", &table);
    ctx.work("EXP-A", &meter);

    // Mean fits (the historical output), then the P² p90 curve: the bound
    // is worst-case, so the tail must grow with the claimed shape too.
    ctx.note("\nmodel ranking over measured means (best R² first):");
    for fit in rank_models_by(Metric::Mean, &points).iter().take(4) {
        ctx.note(format!("  {}", fit.render()));
        emit_fit(ctx, Metric::Mean, fit);
    }
    let target = fit_model_by(Model::KLogNOverK, Metric::Mean, &points).expect("fit");
    ctx.note(format!("\npaper-shape fit: {}", target.render()));
    ctx.note(crate::shape_verdict_by(
        &points,
        Metric::Mean,
        Model::KLogNOverK,
    ));

    ctx.note("\nmodel ranking over measured p90s (P² sketches, best R² first):");
    for fit in rank_models_by(Metric::P90, &points).iter().take(4) {
        ctx.note(format!("  {}", fit.render()));
        emit_fit(ctx, Metric::P90, fit);
    }
    let target_p90 = fit_model_by(Model::KLogNOverK, Metric::P90, &points).expect("fit");
    ctx.note(format!("\npaper-shape fit (p90): {}", target_p90.render()));
    ctx.note(crate::shape_verdict_by(
        &points,
        Metric::P90,
        Model::KLogNOverK,
    ));
}

fn emit_fit(ctx: &mut Ctx<'_>, metric: Metric, fit: &FitResult) {
    ctx.row(
        "fit",
        Record::new()
            .with("metric", metric.name())
            .with("model", fit.model.name())
            .with("a", fit.a)
            .with("b", fit.b)
            .with("r2", fit.r2),
    );
}
