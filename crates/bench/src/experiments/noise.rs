//! EXP-NOISE — graceful degradation under channel faults: erasure sweeps
//! and capture effects.
//!
//! The fault layer perturbs the ground-truth slot outcome *before* it
//! reaches feedback, transcript, and stop rule
//! ([`ChannelModel`](mac_sim::ChannelModel)): a success can be erased to
//! silence, a collision can be captured by one transmitter. Fault draws are
//! pure in `(run seed, slot)` with a shared hash threshold, so the fault
//! sets are **nested** across rates: every slot erased at rate `p` is also
//! erased at any rate `p′ > p`. That coupling turns two qualitative claims
//! into per-seed deterministic facts this experiment checks hard:
//!
//! * **Erasures only delay.** Until the first erased success the faulty and
//!   fault-free runs are identical, so first-success latency is pointwise
//!   monotone non-decreasing in the erasure rate.
//! * **Captures only help.** Under first-success semantics a captured
//!   collision ends the run at a slot where the ideal channel kept going,
//!   so latency is pointwise monotone non-increasing in the capture rate.
//!
//! On top of the monotonicity staircase, the round-robin rows check the
//! retry model quantitatively: a round-robin winner whose success is erased
//! retries one cycle (`n` slots) later and each retry independently
//! survives with probability `1 − p`, so the mean degrades by
//! `≈ n·p/(1−p)` — the sweep asserts it stays within a slack factor of
//! that bound.
//!
//! `WAKEUP_ASSERT_CLASSES=1` (the CI smoke) re-runs every erasure cell
//! under [`PopulationMode::Classes`](mac_sim::PopulationMode::Classes) and
//! turns bit-identity of the aggregates — fault counters included — into
//! hard check failures: fault injection is engine-path-independent.

use crate::experiment::{Check, Ctx, Experiment};
use crate::{random_pattern, Grid};
use mac_sim::{ChannelModel, FeedbackModel, Protocol, WakePattern};
use wakeup_analysis::ensemble::EnsembleSummary;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_noise",
    id: "EXP-NOISE",
    title: "EXP-NOISE — degradation under channel faults (erasure, capture)",
    claim: "erasures delay monotonically, ≈ n·p/(1−p) for round-robin; captures only help",
    grid: Grid::Sparse,
    full_budget_secs: 60,
    run,
};

/// Erasure rates of the sweep, in parts-per-million (0%, 5%, 15%, 30%).
const ERASURE_PPM: [u32; 4] = [0, 50_000, 150_000, 300_000];

/// Contending stations per run.
const K: u32 = 8;

/// The universe sizes of the noise sweep: the sparse grid capped at
/// 2^16 — the sweep's subject is the fault layer, not engine scale.
fn noise_ns(ctx: &Ctx<'_>) -> Vec<u32> {
    let ns: Vec<u32> = ctx.ns().into_iter().filter(|&n| n <= 1 << 16).collect();
    match (ns.first(), ns.last()) {
        (Some(&lo), Some(&hi)) if lo != hi => vec![lo, hi],
        (Some(&lo), _) => vec![lo],
        _ => vec![256],
    }
}

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // lint: allow(env-discipline) — opt-in CI assertion knob, read-only; documented in README.md
    let assert_classes = std::env::var("WAKEUP_ASSERT_CLASSES").is_ok();
    // lint: allow(env-discipline) — opt-in exploration knob (extra erasure rate, ppm), read-only; documented in README.md
    let extra_ppm: Option<u32> = std::env::var("WAKEUP_NOISE_PPM")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut rates: Vec<u32> = ERASURE_PPM.to_vec();
    if let Some(ppm) = extra_ppm {
        ctx.note(format!("WAKEUP_NOISE_PPM: extra erasure rate {ppm} ppm"));
        rates.push(ppm.min(999_999));
        rates.sort_unstable();
        rates.dedup();
    }

    // --- erasure sweep ---------------------------------------------------
    let mut table = Table::new([
        "protocol", "n", "erasure", "mean", "max", "worst", "erasures", "censored",
    ]);
    let cache = ConstructionCache::new();
    for &n in &noise_ns(ctx) {
        for proto_name in ["round_robin", "wakeup_with_s"] {
            let mut baseline: Option<EnsembleSummary> = None;
            let mut prev_mean = f64::NEG_INFINITY;
            for &ppm in &rates {
                let p = ppm as f64 / 1e6;
                let label = format!("EXP-NOISE {proto_name} n={n} p={ppm}ppm");
                let channel = ChannelModel::ideal().with_erasure_ppm(ppm);
                let spec = ctx
                    .spec(n, runs, 31_000, &label)
                    .with_max_slots(32 * u64::from(n))
                    .with_channel(channel);
                let res = run_noise_ensemble(&spec, &cache, proto_name, n);
                ctx.check(
                    format!("{proto_name} solves at n={n}, erasure {ppm} ppm"),
                    Check::NoCensored(&res),
                );
                // Nested fault draws: latency is pointwise non-decreasing
                // in the erasure rate, so the ensemble mean must be too.
                ctx.check(
                    format!("{proto_name} mean monotone at n={n}, erasure {ppm} ppm"),
                    Check::Holds(
                        res.mean() >= prev_mean,
                        format!("mean {:.1} vs previous rate's {:.1}", res.mean(), prev_mean),
                    ),
                );
                prev_mean = res.mean();
                match &baseline {
                    None => {
                        ctx.check(
                            format!("{proto_name} fault-free at n={n}: no fault fired"),
                            Check::Holds(!res.faults.any(), format!("{:?}", res.faults)),
                        );
                        baseline = Some(res.clone());
                    }
                    Some(base) if proto_name == "round_robin" => {
                        // Retry model: each erased success costs one more
                        // n-slot cycle; expected retries p/(1−p). Slack 3×
                        // plus one cycle absorbs small-ensemble variance.
                        let bound =
                            base.mean() + f64::from(n) * (3.0 * p / (1.0 - p)) + f64::from(n);
                        ctx.check(
                            format!("{proto_name} degradation bounded at n={n}, erasure {ppm} ppm"),
                            Check::Holds(
                                res.mean() <= bound,
                                format!(
                                    "mean {:.1} vs retry-model bound {:.1} (baseline {:.1})",
                                    res.mean(),
                                    bound,
                                    base.mean()
                                ),
                            ),
                        );
                    }
                    Some(_) => {}
                }
                if assert_classes {
                    let classed = run_noise_ensemble(
                        &ctx.spec(n, runs, 31_000, &format!("{label} classes"))
                            .with_max_slots(32 * u64::from(n))
                            .with_channel(channel)
                            .with_classes()
                            .without_per_station_detail(),
                        &cache,
                        proto_name,
                        n,
                    );
                    check_identical(ctx, proto_name, n, ppm, &res, &classed);
                }
                emit_cell(ctx, &mut table, proto_name, n, "erasure", ppm, &res);
            }
        }
    }
    ctx.table("erasure", &table);

    // --- capture arm -----------------------------------------------------
    // Slotted ALOHA on a simultaneous burst collides constantly under
    // collision detection — the natural subject for capture. Nested draws
    // again: a captured slot stays captured at any higher rate, so latency
    // is pointwise non-increasing in the capture rate.
    let mut ctab = Table::new([
        "n",
        "capture",
        "false-coll",
        "mean",
        "max",
        "captures",
        "false_collisions",
    ]);
    for &n in &noise_ns(ctx) {
        let mut base_mean = f64::INFINITY;
        for (cap_ppm, fc_ppm) in [(0u32, 0u32), (200_000, 0), (200_000, 50_000)] {
            let label = format!("EXP-NOISE aloha n={n} cap={cap_ppm}ppm fc={fc_ppm}ppm");
            let channel = ChannelModel::ideal()
                .with_capture_ppm(cap_ppm)
                .with_false_collision_ppm(fc_ppm);
            let spec = ctx
                .spec(n, runs, 47_000, &label)
                .with_feedback(FeedbackModel::CollisionDetection)
                .with_max_slots(32 * u64::from(n))
                .with_channel(channel);
            let res = run_ensemble_stream(
                &spec,
                |_| -> Box<dyn Protocol> { Box::new(Aloha::new(n, K)) },
                |seed| {
                    let s = (seed % 97) * 13;
                    crate::burst_pattern(n, K as usize, s, seed)
                },
            );
            ctx.check(
                format!("aloha solves at n={n}, capture {cap_ppm} ppm, false-coll {fc_ppm} ppm"),
                Check::NoCensored(&res),
            );
            if cap_ppm == 0 {
                base_mean = res.mean();
            } else if fc_ppm == 0 {
                ctx.check(
                    format!("capture only helps at n={n}"),
                    Check::Holds(
                        res.mean() <= base_mean,
                        format!("mean {:.1} vs ideal-channel {:.1}", res.mean(), base_mean),
                    ),
                );
            }
            ctx.row(
                "capture",
                Record::new()
                    .with("n", n)
                    .with("k", K)
                    .with("capture_ppm", cap_ppm)
                    .with("false_collision_ppm", fc_ppm)
                    .with("captures", res.faults.captures)
                    .with("false_collisions", res.faults.false_collisions)
                    .with_all(res.record()),
            );
            ctab.push_row([
                n.to_string(),
                format!("{:.0}%", f64::from(cap_ppm) / 1e4),
                format!("{:.0}%", f64::from(fc_ppm) / 1e4),
                format!("{:.1}", res.mean()),
                format!("{:.0}", res.max()),
                res.faults.captures.to_string(),
                res.faults.false_collisions.to_string(),
            ]);
        }
    }
    ctx.table("capture", &ctab);
    if assert_classes && ctx.failures() == 0 {
        ctx.note("fault-layer assertion: PASSED (classed erasure cells bit-identical)");
    }
}

/// One erasure cell: `runs` faulty-channel runs of `proto_name` with `K`
/// contenders waking across a window (round-robin) or as a block at the
/// protocol's known `s` (`wakeup_with_s`).
fn run_noise_ensemble(
    spec: &wakeup_analysis::EnsembleSpec,
    cache: &ConstructionCache,
    proto_name: &str,
    n: u32,
) -> EnsembleSummary {
    match proto_name {
        "round_robin" => run_ensemble_stream(
            spec,
            |_| -> Box<dyn Protocol> { Box::new(RoundRobin::new(n)) },
            |seed| random_pattern(n, K as usize, u64::from(n), seed),
        ),
        "wakeup_with_s" => run_ensemble_stream_cached(
            spec,
            cache,
            |cache, seed| -> Box<dyn Protocol> {
                let s = (seed % 97) * 13;
                Box::new(WakeupWithS::cached(n, s, &FamilyProvider::default(), cache))
            },
            |seed| {
                let s = (seed % 97) * 13;
                WakePattern::range(1, K + 1, s).expect("valid block")
            },
        ),
        other => unreachable!("unknown noise protocol {other}"),
    }
}

/// Emit one erasure cell's sweep row and pretty-table row.
fn emit_cell(
    ctx: &mut Ctx<'_>,
    table: &mut Table,
    proto_name: &str,
    n: u32,
    fault: &str,
    ppm: u32,
    res: &EnsembleSummary,
) {
    ctx.row(
        "sweep",
        Record::new()
            .with("protocol", proto_name)
            .with("n", n)
            .with("k", K)
            .with("fault", fault)
            .with("ppm", ppm)
            .with("erasures", res.faults.erasures)
            .with_all(res.record()),
    );
    table.push_row([
        proto_name.to_string(),
        n.to_string(),
        format!("{:.0}%", f64::from(ppm) / 1e4),
        format!("{:.1}", res.mean()),
        format!("{:.0}", res.max()),
        res.worst.to_string(),
        res.faults.erasures.to_string(),
        res.censored().to_string(),
    ]);
}

/// A classed and a concrete run of the same faulty cell must agree exactly
/// on every observable aggregate **including the fault counters** — the
/// channel perturbs outcomes, never engine-path determinism.
/// (`false_collisions` is excluded like `polls`: only materialized silent
/// slots can be misheard, and the erasure arm never arms mishearing.)
fn check_identical(
    ctx: &mut Ctx<'_>,
    proto_name: &str,
    n: u32,
    ppm: u32,
    concrete: &EnsembleSummary,
    classed: &EnsembleSummary,
) {
    let same = classed.runs == concrete.runs
        && classed.solved == concrete.solved
        && classed.worst == concrete.worst
        && classed.mean().to_bits() == concrete.mean().to_bits()
        && classed.max().to_bits() == concrete.max().to_bits()
        && classed.energy.total_transmissions == concrete.energy.total_transmissions
        && classed.energy.total_collisions == concrete.energy.total_collisions
        && classed.work.slots == concrete.work.slots
        && classed.faults.erasures == concrete.faults.erasures
        && classed.faults.captures == concrete.faults.captures
        && classed.faults.churn_crashes == concrete.faults.churn_crashes
        && classed.faults.churn_rewakes == concrete.faults.churn_rewakes;
    ctx.check(
        format!("{proto_name} classes ≡ concrete at n={n}, erasure {ppm} ppm"),
        Check::Holds(
            same,
            format!(
                "classed mean {} erasures {} vs concrete mean {} erasures {}",
                classed.mean(),
                classed.faults.erasures,
                concrete.mean(),
                concrete.faults.erasures,
            ),
        ),
    );
}
