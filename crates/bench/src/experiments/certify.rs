//! EXP-CERT — bounded certification of waking matrices (the §7 open
//! problem, answered executably at toy scale).
//!
//! For toy universes, *every* wake pattern of a bounded adversary class is
//! enumerated and the seeded matrix is certified to isolate a station within
//! the Theorem 5.3 horizon — plus a seed-search demonstrating that random
//! matrices certify essentially immediately (the probabilistic-method claim,
//! observed).

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale};
use wakeup_analysis::{Record, Table};
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_certify",
    id: "EXP-CERT",
    title: "EXP-CERT — bounded certification of seeded waking matrices",
    claim: "Theorem 5.2: a random matrix is a waking matrix w.h.p.",
    grid: Grid::Dense,
    full_budget_secs: 60,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();

    let (ns, cfgs): (Vec<u32>, Vec<CertifyConfig>) = match scale {
        Scale::Quick => (
            vec![4, 6, 8],
            vec![CertifyConfig {
                k_max: 2,
                window: 4,
                horizon_scale: 2,
            }],
        ),
        Scale::Full => (
            vec![4, 6, 8, 10],
            vec![
                CertifyConfig {
                    k_max: 2,
                    window: 6,
                    horizon_scale: 2,
                },
                CertifyConfig {
                    k_max: 3,
                    window: 4,
                    horizon_scale: 2,
                },
            ],
        ),
    };

    let mut table = Table::new([
        "n",
        "k_max",
        "window",
        "patterns checked",
        "worst latency",
        "horizon (k_max)",
        "verdict",
    ]);
    for &n in &ns {
        for cfg in &cfgs {
            let matrix = WakingMatrix::new(MatrixParams::new(n));
            let horizon = cfg.horizon_scale
                * 2
                * u64::from(matrix.c())
                * u64::from(cfg.k_max)
                * u64::from(matrix.rows())
                * u64::from(matrix.window());
            let result = certify(&matrix, *cfg);
            ctx.check(
                format!("matrix certifies at n={n}, k_max={}", cfg.k_max),
                Check::Holds(
                    result.is_ok(),
                    match &result {
                        Ok(cert) => format!("worst latency {}", cert.worst_latency),
                        Err(fail) => format!("fails on {:?}", fail.wakes),
                    },
                ),
            );
            match result {
                Ok(cert) => {
                    ctx.row(
                        "certification",
                        Record::new()
                            .with("n", n)
                            .with("k_max", cfg.k_max)
                            .with("window", cfg.window)
                            .with("patterns_checked", cert.patterns_checked)
                            .with("worst_latency", cert.worst_latency)
                            .with("horizon", horizon)
                            .with("certified", true),
                    );
                    table.push_row([
                        n.to_string(),
                        cfg.k_max.to_string(),
                        cfg.window.to_string(),
                        cert.patterns_checked.to_string(),
                        cert.worst_latency.to_string(),
                        horizon.to_string(),
                        "CERTIFIED".into(),
                    ]);
                }
                Err(fail) => {
                    ctx.row(
                        "certification",
                        Record::new()
                            .with("n", n)
                            .with("k_max", cfg.k_max)
                            .with("window", cfg.window)
                            .with("horizon", horizon)
                            .with("certified", false),
                    );
                    table.push_row([
                        n.to_string(),
                        cfg.k_max.to_string(),
                        cfg.window.to_string(),
                        "-".into(),
                        "-".into(),
                        horizon.to_string(),
                        format!("FAILS on {:?}", fail.wakes),
                    ]);
                }
            }
        }
    }
    ctx.table("main", &table);

    ctx.note("\nseed search (how many random matrices until one certifies):");
    let mut search_tab = Table::new(["n", "first certified seed", "patterns checked"]);
    for &n in &ns {
        let cfg = cfgs[0];
        let found = search_certified_seed(MatrixParams::new(n), cfg, 64);
        ctx.check(
            format!("some seed < 64 certifies at n={n}"),
            Check::Holds(
                found.is_some(),
                found
                    .as_ref()
                    .map(|(seed, _)| format!("first certified seed {seed}"))
                    .unwrap_or_else(|| "no certified seed below 64".into()),
            ),
        );
        match found {
            Some((seed, cert)) => {
                ctx.row(
                    "seed_search",
                    Record::new()
                        .with("n", n)
                        .with("first_certified_seed", seed)
                        .with("patterns_checked", cert.patterns_checked),
                );
                search_tab.push_row([
                    n.to_string(),
                    seed.to_string(),
                    cert.patterns_checked.to_string(),
                ]);
            }
            None => search_tab.push_row([n.to_string(), "none < 64".into(), "-".into()]),
        }
    }
    ctx.table("seed_search", &search_tab);
    ctx.note(
        "\n(Theorem 5.2 predicts almost every seed certifies — the first \
         certified seed\nshould almost always be 0.)",
    );
}
