//! EXP-LB — Theorem 2.1: the wake-up problem requires `min{k, n−k+1}`
//! rounds, even with simultaneous start and known `k`, `n`.
//!
//! Runs the swap-chain adversary against round-robin and against a
//! selective-family schedule, reporting the rounds each schedule is forced
//! to spend versus the theoretical bound. Corollary 2.1's identity
//! `n−k+1 = Θ(k log(n/k)+1)` for `k > n/c` is tabulated alongside. The
//! per-`(n, k)` adversary runs are independent and fan out on the
//! work-stealing runner (rows still print in sweep order).

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale};
use selectors::schedule::{RoundRobinSchedule, ScheduleExt};
use wakeup_analysis::{Record, Table};
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_lower_bound",
    id: "EXP-LB",
    title: "EXP-LB — Theorem 2.1 lower bound (swap-chain adversary)",
    claim: "any algorithm needs ≥ min{k, n−k+1} rounds; forced_rounds must meet it",
    grid: Grid::Dense,
    full_budget_secs: 30,
    run,
};

fn run(ctx: &mut Ctx<'_>) {
    let scale = ctx.scale();
    let ns: Vec<u32> = match scale {
        Scale::Quick => vec![32, 64, 128],
        Scale::Full => vec![32, 64, 128, 256, 512],
    };

    let mut table = Table::new([
        "n",
        "k",
        "bound min{k,n-k+1}",
        "forced (round-robin)",
        "distinct rounds",
        "forced (selective)",
    ]);

    let mut grid: Vec<(u32, u32)> = Vec::new();
    for &n in &ns {
        for k in [1u32, 2, 4, n / 4, n / 2, 3 * n / 4, n - 2, n - 1] {
            if (1..=n).contains(&k) {
                grid.push((n, k));
            }
        }
    }

    let (rows, _stats) = ctx.runner("EXP-LB").map(grid.len() as u64, |i| {
        let (n, k) = grid[i as usize];
        let adv = SwapChainAdversary::new(n, k);
        let rr = adv.run(&RoundRobinSchedule::new(n));
        // A selective-family schedule (the building block of the upper
        // bounds) is also subject to the lower bound.
        let fam = FamilyProvider::random_with_seed(1).family(n, k.max(2));
        let sel = adv.run(&fam.clone().cycle());
        (n, k, adv.bound(), rr, sel)
    });
    for (n, k, bound, rr, sel) in rows {
        ctx.check(
            format!("round-robin meets the bound at n={n}, k={k}"),
            Check::Holds(
                rr.forced_rounds >= bound,
                format!("forced {} vs bound {bound}", rr.forced_rounds),
            ),
        );
        ctx.row(
            "sweep",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("bound", bound)
                .with("forced_round_robin", rr.forced_rounds)
                .with("distinct_rounds", rr.distinct_rounds)
                .with("forced_selective", sel.forced_rounds)
                .with("selective_unresolved_set", sel.found_unisolated_set),
        );
        table.push_row([
            n.to_string(),
            k.to_string(),
            bound.to_string(),
            rr.forced_rounds.to_string(),
            rr.distinct_rounds.to_string(),
            if sel.found_unisolated_set {
                format!("{}+ (unresolved set)", sel.forced_rounds)
            } else {
                sel.forced_rounds.to_string()
            },
        ]);
    }
    ctx.table("main", &table);

    ctx.note("\nCorollary 2.1: for k > n/c, n−k+1 = Θ(k·log(n/k)+1):");
    let mut cor = Table::new(["n", "k", "n-k+1", "k·log2(n/k)+1", "ratio"]);
    let n = 1024u32;
    for k in [512u32, 768, 896, 1008, 1020] {
        let rhs = f64::from(k) * (f64::from(n) / f64::from(k)).log2() + 1.0;
        ctx.row(
            "corollary",
            Record::new()
                .with("n", n)
                .with("k", k)
                .with("envelope", u64::from(n - k + 1))
                .with("k_log_n_over_k", rhs)
                .with("ratio", f64::from(n - k + 1) / rhs.max(1e-9)),
        );
        cor.push_row([
            n.to_string(),
            k.to_string(),
            (n - k + 1).to_string(),
            format!("{rhs:.1}"),
            format!("{:.2}", f64::from(n - k + 1) / rhs.max(1e-9)),
        ]);
    }
    ctx.table("corollary", &cor);
    ctx.note("\n(The ratio stays Θ(1)·ln2-ish as k → n: the two bounds coincide.)");
}
