//! EXP-MEGA — the implicit mega-station engine: equivalence-class
//! populations at n far beyond what concrete per-station simulation can
//! materialize.
//!
//! The paper's protocols are deterministic per station, so a block wake of
//! half the universe is **one** equivalence class: the class engine
//! ([`PopulationMode::Classes`]) simulates a single weighted unit where the
//! concrete engine would box `n/2` stations. This sweep runs round-robin
//! and `wakeup_with_s` on block wakes from `n = 2^14` (quick) up to
//! `n = 2^24` (full) and reports the unit economy per cell: `classes` is
//! the peak number of live simulation units (the engine's memory
//! proxy) and `reduction` is `k / classes` — stations represented per held
//! unit.
//!
//! The round-robin rows use the wrapped block (wake just after the block's
//! turns passed), so every run crosses ≈ `n/2` silent slots: at full scale
//! a single cell simulates > 400M slots through one hint per run. The
//! `wakeup_with_s` rows exercise the class-aware doubling-schedule
//! constructor through the shared [`ConstructionCache`].
//!
//! `WAKEUP_ASSERT_CLASSES=1` (the CI smoke) additionally re-runs every cell
//! the concrete engine can afford (`n ≤ 2^16`) under
//! [`PopulationMode::Concrete`] and turns bit-identity of the observable
//! aggregates (latency samples, energy, slots) into hard check failures —
//! the end-to-end guard that class aggregation changes memory, not
//! outcomes.
//!
//! [`PopulationMode::Classes`]: mac_sim::PopulationMode::Classes
//! [`PopulationMode::Concrete`]: mac_sim::PopulationMode::Concrete
//! [`ConstructionCache`]: wakeup_core::ConstructionCache

use crate::experiment::{Check, Ctx, Experiment};
use crate::{Grid, Scale, TableMeter};
use mac_sim::{Protocol, WakePattern};
use wakeup_analysis::ensemble::EnsembleSummary;
use wakeup_analysis::prelude::*;
use wakeup_analysis::Record;
use wakeup_core::prelude::*;

/// Registry entry.
pub const EXP: Experiment = Experiment {
    name: "exp_mega",
    id: "EXP-MEGA",
    title: "EXP-MEGA — mega-station sweeps (equivalence-class populations)",
    claim: "class engine: memory O(classes), outcomes identical to concrete",
    grid: Grid::Sparse,
    full_budget_secs: 15,
    run,
};

/// The universe sizes of the mega sweep: the quick sizes stay inside what
/// the concrete engine can cross-check in CI; full scale climbs to the
/// ROADMAP's n = 2^24.
fn mega_ns(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Quick => vec![1 << 14, 1 << 16],
        Scale::Full => vec![1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24],
    }
}

/// Concrete cross-check ceiling: above this, materializing the block
/// per-station is exactly the cost the class engine exists to avoid.
const CONCRETE_CEILING: u32 = 1 << 16;

fn run(ctx: &mut Ctx<'_>) {
    let runs = ctx.runs();
    // lint: allow(env-discipline) — opt-in CI assertion knob, read-only; documented in EXPERIMENTS.md
    let assert_classes = std::env::var("WAKEUP_ASSERT_CLASSES").is_ok();
    let cache = ConstructionCache::new();
    let mut table = Table::new([
        "protocol",
        "n",
        "k",
        "mean",
        "max",
        "slots",
        "classes",
        "reduction",
    ]);
    let mut meter = TableMeter::new();

    for &n in &mega_ns(ctx.scale()) {
        let k = n / 2;
        for proto_name in ["round_robin", "wakeup_with_s"] {
            let label = format!("EXP-MEGA {proto_name} n={n}");
            let spec = ctx
                .spec(n, runs, 12_000, &label)
                .with_classes()
                .without_per_station_detail();
            let res = run_mega_ensemble(&spec, &cache, proto_name, n, k);
            ctx.check(
                format!("{proto_name} solves at n={n}, k={k}"),
                Check::NoCensored(&res),
            );
            // The block is one equivalence class: the engine must never
            // have held more than one unit per run (deterministic, so this
            // is a hard guard at every scale).
            ctx.check(
                format!("{proto_name} block is one class at n={n}, k={k}"),
                Check::Holds(
                    res.work.peak_units == 1,
                    format!("peak_units {} (expected 1)", res.work.peak_units),
                ),
            );
            if assert_classes && n <= CONCRETE_CEILING {
                let concrete = run_mega_ensemble(
                    &ctx.spec(n, runs, 12_000, &format!("{label} concrete")),
                    &cache,
                    proto_name,
                    n,
                    k,
                );
                check_identical(ctx, proto_name, n, k, &res, &concrete);
            }
            let reduction = k as f64 / res.work.peak_units.max(1) as f64;
            meter.absorb(&res);
            ctx.row(
                "sweep",
                Record::new()
                    .with("protocol", proto_name)
                    .with("n", n)
                    .with("k", k)
                    .with("reduction", reduction)
                    .with_all(res.record()),
            );
            table.push_row([
                proto_name.to_string(),
                n.to_string(),
                k.to_string(),
                format!("{:.1}", res.mean()),
                format!("{:.0}", res.max()),
                res.work.slots.to_string(),
                res.work.peak_units.to_string(),
                format!("{reduction:.0}x"),
            ]);
        }
    }
    ctx.table("main", &table);
    ctx.work("EXP-MEGA", &meter);
    if assert_classes && ctx.failures() == 0 {
        ctx.note(
            "class-engine assertion: PASSED (one unit per block run; \
             concrete cross-checks bit-identical)",
        );
    }
}

/// One mega cell: `runs` class-engine runs of `proto_name` on the block
/// pattern for `(n, k)`. Round-robin wakes the block just after its turns
/// passed (≈ `n − k + k/2` silent slots to skip per run); `wakeup_with_s`
/// wakes at its known `s`, exercising both the round-robin track and the
/// doubling-schedule track of the combined protocol.
fn run_mega_ensemble(
    spec: &wakeup_analysis::EnsembleSpec,
    cache: &ConstructionCache,
    proto_name: &str,
    n: u32,
    k: u32,
) -> EnsembleSummary {
    match proto_name {
        "round_robin" => run_ensemble_stream(
            spec,
            |_| -> Box<dyn Protocol> { Box::new(RoundRobin::new(n)) },
            |seed| {
                // Wake at a slot past the block's first turns, so the run
                // has to wrap: latency ≈ n − s + k/2, all skipped sparsely.
                let s = u64::from(k) + (seed % 97) * 13;
                WakePattern::range(0, k, s).expect("valid block")
            },
        ),
        "wakeup_with_s" => run_ensemble_stream_cached(
            spec,
            cache,
            |cache, seed| -> Box<dyn Protocol> {
                let s = (seed % 97) * 13;
                Box::new(WakeupWithS::cached(n, s, &FamilyProvider::default(), cache))
            },
            |seed| {
                let s = (seed % 97) * 13;
                WakePattern::range(1, k + 1, s).expect("valid block")
            },
        ),
        other => unreachable!("unknown mega protocol {other}"),
    }
}

/// The observable aggregates of a classed and a concrete ensemble of the
/// same cell must agree exactly — work counters excluded (their difference
/// *is* the feature), and `max_per_station_tx` excluded because the lean
/// classed spec drops per-station detail.
fn check_identical(
    ctx: &mut Ctx<'_>,
    proto_name: &str,
    n: u32,
    k: u32,
    classed: &EnsembleSummary,
    concrete: &EnsembleSummary,
) {
    let same = classed.runs == concrete.runs
        && classed.solved == concrete.solved
        && classed.worst == concrete.worst
        && classed.mean().to_bits() == concrete.mean().to_bits()
        && classed.max().to_bits() == concrete.max().to_bits()
        && classed.energy.total_transmissions == concrete.energy.total_transmissions
        && classed.energy.total_collisions == concrete.energy.total_collisions
        && classed.work.slots == concrete.work.slots;
    ctx.check(
        format!("{proto_name} classes ≡ concrete at n={n}, k={k}"),
        Check::Holds(
            same,
            format!(
                "classed mean {} slots {} tx {} vs concrete mean {} slots {} tx {}",
                classed.mean(),
                classed.work.slots,
                classed.energy.total_transmissions,
                concrete.mean(),
                concrete.work.slots,
                concrete.energy.total_transmissions,
            ),
        ),
    );
}
