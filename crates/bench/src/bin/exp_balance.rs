//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::balance`; prefer `wakeup run exp_balance`.

fn main() {
    wakeup_bench::cli::shim("exp_balance")
}
