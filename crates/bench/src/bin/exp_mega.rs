//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::mega`; prefer `wakeup run exp_mega`.

fn main() {
    wakeup_bench::cli::shim("exp_mega")
}
