//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::vs_chlebus`; prefer `wakeup run exp_vs_chlebus`.

fn main() {
    wakeup_bench::cli::shim("exp_vs_chlebus")
}
