//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::scenario_c`; prefer `wakeup run exp_scenario_c`.

fn main() {
    wakeup_bench::cli::shim("exp_scenario_c")
}
