//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::noise`; prefer `wakeup run exp_noise`.

fn main() {
    wakeup_bench::cli::shim("exp_noise")
}
