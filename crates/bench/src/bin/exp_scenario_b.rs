//! EXP-B — §4: `wakeup_with_k` resolves contention in `Θ(k·log(n/k) + 1)`
//! when the contention bound `k` is known, under *staggered* wake-ups.
//!
//! Workload: the non-synchronized patterns Scenario B is designed for —
//! uniform windows, staggered arithmetic arrivals and bursts. Reports
//! per-pattern-family latency and the model-shape fit. Runs on the
//! work-stealing runner with the sparse-engine sweep up to `n = 2^20`; the
//! footer reports per-table `WorkStats` and throughput.

use mac_sim::{Protocol, WakePattern};
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, ensemble_spec, random_pattern, worst_rr_pattern, Scale, TableMeter};
use wakeup_core::prelude::*;

fn staggered_pattern(n: u32, k: usize, seed: u64) -> WakePattern {
    use mac_sim::pattern::IdChoice;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    WakePattern::staggered(&ids, seed % 53, 1 + seed % 11).unwrap()
}

fn main() {
    banner(
        "EXP-B — Scenario B (k known): wakeup_with_k",
        "Θ(k·log(n/k) + 1) under arbitrary wake-up patterns",
    );
    let scale = Scale::from_env();
    let runs = scale.runs();
    type PatternFn = fn(u32, usize, u64) -> WakePattern;
    let patterns: [(&str, PatternFn); 3] = [
        ("uniform-window", |n, k, seed| {
            random_pattern(n, k, 64, seed)
        }),
        ("staggered", staggered_pattern),
        ("worst-block burst", |n, k, _seed| worst_rr_pattern(n, k, 7)),
    ];

    let mut table = Table::new(["pattern", "n", "k", "mean", "max", "censored"]);
    let mut points = Vec::new();
    let mut meter = TableMeter::new();

    for &n in &scale.n_sweep_sparse() {
        for &k in &scale.k_sweep_sparse(n) {
            for (pname, pfn) in &patterns {
                let spec = ensemble_spec(n, runs, 2000, &format!("EXP-B {pname} n={n} k={k}"));
                let res = run_ensemble_stream(
                    &spec,
                    |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupWithK::new(
                            n,
                            k,
                            FamilyProvider::Random { seed, delta: 1e-4 },
                        ))
                    },
                    |seed| pfn(n, k as usize, seed),
                );
                assert_eq!(res.censored(), 0, "{pname} n={n} k={k}");
                assert!(
                    res.max() <= 2.0 * f64::from(n) + 1.0,
                    "beyond round-robin envelope: {pname} n={n} k={k}"
                );
                meter.absorb(&res);
                if *pname == "worst-block burst" {
                    points.push((f64::from(n), f64::from(k), res.mean()));
                }
                table.push_row([
                    pname.to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{:.1}", res.mean()),
                    format!("{:.0}", res.max()),
                    res.censored().to_string(),
                ]);
            }
        }
    }
    table.print();
    meter.print("EXP-B");

    println!("\nmodel ranking over burst means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        println!("  {}", fit.render());
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    println!("\npaper-shape fit: {}", target.render());
    println!(
        "{}",
        wakeup_bench::shape_verdict(&points, Model::KLogNOverK)
    );
}
