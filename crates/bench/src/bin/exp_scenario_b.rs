//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::scenario_b`; prefer `wakeup run exp_scenario_b`.

fn main() {
    wakeup_bench::cli::shim("exp_scenario_b")
}
