//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::scenario_a`; prefer `wakeup run exp_scenario_a`.

fn main() {
    wakeup_bench::cli::shim("exp_scenario_a")
}
