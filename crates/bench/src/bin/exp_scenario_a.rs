//! EXP-A — §3: `wakeup_with_s` resolves contention in `Θ(k·log(n/k) + 1)`
//! when the first wake-up slot `s` is known.
//!
//! Workload: simultaneous bursts at a known `s` (the hardest case for the
//! selective component — every awake station participates), with the
//! *adversarial* station block (the IDs owning round-robin's last turns),
//! so the measurement reflects the worst case the theorem bounds rather
//! than round-robin's lucky `n/k` average on random IDs. Reports mean/max
//! latency per `(n, k)` and fits the measured means against the candidate
//! model shapes; the paper's bound must rank at the top and the absolute
//! latency must stay below the round-robin envelope `2n`.
//!
//! Since every protocol here rides the sparse engine, the full sweep
//! reaches `n = 2^20` (per-run cost is `O(events·log k)`, not `O(n)`); the
//! ensembles run on the work-stealing runner and the table footer reports
//! the aggregated `WorkStats` and throughput.

use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, ensemble_spec, worst_rr_pattern, Scale, TableMeter};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-A — Scenario A (s known): wakeup_with_s",
        "Θ(k·log(n/k) + 1), optimal (Thm 2.1 + Clementi et al.)",
    );
    let scale = Scale::from_env();
    let runs = scale.runs();
    let mut table = Table::new(["n", "k", "mean", "ci95", "max", "2n envelope", "censored"]);
    let mut points = Vec::new();
    let mut meter = TableMeter::new();

    for &n in &scale.n_sweep_sparse() {
        for &k in &scale.k_sweep_sparse(n) {
            let spec = ensemble_spec(n, runs, 1000, &format!("EXP-A n={n} k={k}"));
            let res = run_ensemble_stream(
                &spec,
                |seed| -> Box<dyn Protocol> {
                    let s = (seed % 97) * 13;
                    Box::new(WakeupWithS::new(
                        n,
                        s,
                        FamilyProvider::Random { seed, delta: 1e-4 },
                    ))
                },
                |seed| {
                    let s = (seed % 97) * 13;
                    worst_rr_pattern(n, k as usize, s)
                },
            );
            assert_eq!(res.censored(), 0, "scenario A must solve");
            assert!(
                res.max() <= 2.0 * f64::from(n) + 1.0,
                "latency beyond round-robin envelope at n={n}, k={k}"
            );
            meter.absorb(&res);
            points.push((f64::from(n), f64::from(k), res.mean()));
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", res.mean()),
                format!("{:.1}", res.ci95()),
                format!("{:.0}", res.max()),
                (2 * n).to_string(),
                res.censored().to_string(),
            ]);
        }
    }
    table.print();
    meter.print("EXP-A");

    println!("\nmodel ranking over measured means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        println!("  {}", fit.render());
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    println!("\npaper-shape fit: {}", target.render());
    println!(
        "{}",
        wakeup_bench::shape_verdict(&points, Model::KLogNOverK)
    );
}
