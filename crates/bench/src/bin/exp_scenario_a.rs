//! EXP-A — §3: `wakeup_with_s` resolves contention in `Θ(k·log(n/k) + 1)`
//! when the first wake-up slot `s` is known.
//!
//! Workload: simultaneous bursts at a known `s` (the hardest case for the
//! selective component — every awake station participates), with the
//! *adversarial* station block (the IDs owning round-robin's last turns),
//! so the measurement reflects the worst case the theorem bounds rather
//! than round-robin's lucky `n/k` average on random IDs. Reports mean/max
//! latency per `(n, k)` and fits the measured means against the candidate
//! model shapes; the paper's bound must rank at the top and the absolute
//! latency must stay below the round-robin envelope `2n`.

use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, worst_rr_pattern, Scale};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-A — Scenario A (s known): wakeup_with_s",
        "Θ(k·log(n/k) + 1), optimal (Thm 2.1 + Clementi et al.)",
    );
    let scale = Scale::from_env();
    let runs = scale.runs();
    let mut table = Table::new(["n", "k", "mean", "ci95", "max", "2n envelope", "censored"]);
    let mut points = Vec::new();

    for &n in &scale.n_sweep() {
        for &k in &scale.k_sweep(n) {
            let spec = EnsembleSpec::new(n, runs).with_base_seed(1000);
            let res = run_ensemble(
                &spec,
                |seed| -> Box<dyn Protocol> {
                    let s = (seed % 97) * 13;
                    Box::new(WakeupWithS::new(
                        n,
                        s,
                        FamilyProvider::Random { seed, delta: 1e-4 },
                    ))
                },
                |seed| {
                    let s = (seed % 97) * 13;
                    worst_rr_pattern(n, k as usize, s)
                },
            );
            let summary = res.summary().expect("scenario A must solve");
            assert_eq!(res.censored(), 0);
            assert!(
                summary.max <= 2.0 * f64::from(n) + 1.0,
                "latency beyond round-robin envelope at n={n}, k={k}"
            );
            points.push((f64::from(n), f64::from(k), summary.mean));
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", summary.mean),
                format!("{:.1}", summary.ci95()),
                format!("{:.0}", summary.max),
                (2 * n).to_string(),
                res.censored().to_string(),
            ]);
        }
    }
    table.print();

    println!("\nmodel ranking over measured means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        println!("  {}", fit.render());
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    println!("\npaper-shape fit: {}", target.render());
    println!(
        "{}",
        wakeup_bench::shape_verdict(&points, Model::KLogNOverK)
    );
}
