//! EXP-KG — the Komlós–Greenberg predecessor problem (§1, reference \[25\]):
//! all `k` awake stations must transmit successfully, in
//! `O(k + k·log(n/k))` (their existential bound).
//!
//! Measures the selective-family resolver with retirement against retiring
//! round-robin (`Θ(n)`) and fits the measured full-resolution latency
//! against `k·log(n/k)+1` and `n`. Full-resolution runs stay on the dense
//! engine (retirement is feedback-driven), so they are the expensive kind —
//! the per-`(n, k)` ensembles run on the work-stealing runner.

use mac_sim::prelude::*;
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, burst_pattern, runner, Scale};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-KG — full conflict resolution (every station transmits)",
        "Komlós–Greenberg: O(k + k·log(n/k)); time-division baseline: Θ(n)",
    );
    let scale = Scale::from_env();
    let runs = scale.runs();
    let mut table = Table::new([
        "n",
        "k",
        "selective (mean)",
        "selective (max)",
        "retiring RR (mean)",
        "unresolved",
    ]);
    let mut points = Vec::new();

    for &n in &scale.n_sweep() {
        for &k in &scale.k_sweep(64.min(n)) {
            let sel = run_ensemble_full(runs, 8000, n, k, true);
            let rr = run_ensemble_full(runs, 8000, n, k, false);
            let sel_summary = Summary::of_u64(&sel.0).expect("selective must resolve");
            let rr_summary = Summary::of_u64(&rr.0).expect("round-robin must resolve");
            points.push((f64::from(n), f64::from(k), sel_summary.mean));
            table.push_row([
                n.to_string(),
                k.to_string(),
                format!("{:.1}", sel_summary.mean),
                format!("{:.0}", sel_summary.max),
                format!("{:.1}", rr_summary.mean),
                (sel.1 + rr.1).to_string(),
            ]);
        }
    }
    table.print();

    println!("\nmodel ranking over selective-resolver means (best R² first):");
    for fit in wakeup_analysis::fit::rank_models(&points).iter().take(4) {
        println!("  {}", fit.render());
    }
    let target = fit_model(Model::KLogNOverK, &points).expect("fit");
    let linear = fit_model(Model::K, &points).expect("fit");
    println!("\nKG-shape fit: {}", target.render());
    // KG's bound is O(k + k·log(n/k)) — an upper bound with an additive
    // Θ(k) term. Measured growth of Θ(k) (each resolution needs its own
    // success slot) sits *inside* the bound; either shape fitting well
    // confirms it.
    if target.r2 >= 0.85 || linear.r2 >= 0.85 {
        println!(
            "UPPER BOUND CONSISTENT: growth is Θ(k)·const (R² = {:.3}) \
             within O(k + k·log(n/k)); the log factor is subdominant at \
             these sizes",
            linear.r2.max(target.r2)
        );
    } else {
        println!("shape unclear — see EXPERIMENTS.md notes");
    }
}

/// Returns (full-resolution latencies in seed order, unresolved count).
/// Runs execute on the work-stealing pool; the fold is in seed order, so
/// the output is identical to the old sequential loop.
fn run_ensemble_full(
    runs: u64,
    base_seed: u64,
    n: u32,
    k: u32,
    selective: bool,
) -> (Vec<u64>, usize) {
    let cfg = SimConfig::new(n)
        .with_max_slots(4 * u64::from(n) * 64)
        .until_all_resolved();
    let sim = Simulator::new(cfg);
    let label = format!(
        "EXP-KG {} n={n} k={k}",
        if selective { "selective" } else { "rr" }
    );
    let (results, _stats) = runner(&label).map(runs, |i| {
        let seed = base_seed.wrapping_add(i);
        let pattern = burst_pattern(n, k as usize, 3, seed);
        let protocol: Box<dyn Protocol> = if selective {
            Box::new(FullResolution::new(
                n,
                k,
                FamilyProvider::Random { seed, delta: 1e-4 },
            ))
        } else {
            Box::new(RetiringRoundRobin::new(n))
        };
        sim.run(protocol.as_ref(), &pattern, seed)
            .unwrap()
            .full_resolution_latency()
    });
    let latencies: Vec<u64> = results.iter().filter_map(|&l| l).collect();
    let unresolved = results.len() - latencies.len();
    (latencies, unresolved)
}
