//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::full_resolution`; prefer `wakeup run exp_full_resolution`.

fn main() {
    wakeup_bench::cli::shim("exp_full_resolution")
}
