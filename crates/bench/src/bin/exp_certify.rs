//! EXP-CERT — bounded certification of waking matrices (the §7 open
//! problem, answered executably at toy scale).
//!
//! For toy universes, *every* wake pattern of a bounded adversary class is
//! enumerated and the seeded matrix is certified to isolate a station within
//! the Theorem 5.3 horizon — plus a seed-search demonstrating that random
//! matrices certify essentially immediately (the probabilistic-method claim,
//! observed).

use wakeup_analysis::Table;
use wakeup_bench::{banner, Scale};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-CERT — bounded certification of seeded waking matrices",
        "Theorem 5.2: a random matrix is a waking matrix w.h.p.",
    );
    let scale = Scale::from_env();

    let (ns, cfgs): (Vec<u32>, Vec<CertifyConfig>) = match scale {
        Scale::Quick => (
            vec![4, 6, 8],
            vec![CertifyConfig {
                k_max: 2,
                window: 4,
                horizon_scale: 2,
            }],
        ),
        Scale::Full => (
            vec![4, 6, 8, 10],
            vec![
                CertifyConfig {
                    k_max: 2,
                    window: 6,
                    horizon_scale: 2,
                },
                CertifyConfig {
                    k_max: 3,
                    window: 4,
                    horizon_scale: 2,
                },
            ],
        ),
    };

    let mut table = Table::new([
        "n",
        "k_max",
        "window",
        "patterns checked",
        "worst latency",
        "horizon (k_max)",
        "verdict",
    ]);
    for &n in &ns {
        for cfg in &cfgs {
            let matrix = WakingMatrix::new(MatrixParams::new(n));
            let horizon = cfg.horizon_scale
                * 2
                * u64::from(matrix.c())
                * u64::from(cfg.k_max)
                * u64::from(matrix.rows())
                * u64::from(matrix.window());
            match certify(&matrix, *cfg) {
                Ok(cert) => table.push_row([
                    n.to_string(),
                    cfg.k_max.to_string(),
                    cfg.window.to_string(),
                    cert.patterns_checked.to_string(),
                    cert.worst_latency.to_string(),
                    horizon.to_string(),
                    "CERTIFIED".into(),
                ]),
                Err(fail) => table.push_row([
                    n.to_string(),
                    cfg.k_max.to_string(),
                    cfg.window.to_string(),
                    "-".into(),
                    "-".into(),
                    horizon.to_string(),
                    format!("FAILS on {:?}", fail.wakes),
                ]),
            }
        }
    }
    table.print();

    println!("\nseed search (how many random matrices until one certifies):");
    let mut search_tab = Table::new(["n", "first certified seed", "patterns checked"]);
    for &n in &ns {
        let cfg = cfgs[0];
        match search_certified_seed(MatrixParams::new(n), cfg, 64) {
            Some((seed, cert)) => search_tab.push_row([
                n.to_string(),
                seed.to_string(),
                cert.patterns_checked.to_string(),
            ]),
            None => search_tab.push_row([n.to_string(), "none < 64".into(), "-".into()]),
        }
    }
    search_tab.print();
    println!(
        "\n(Theorem 5.2 predicts almost every seed certifies — the first \
         certified seed\nshould almost always be 0.)"
    );
}
