//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::certify`; prefer `wakeup run exp_certify`.

fn main() {
    wakeup_bench::cli::shim("exp_certify")
}
