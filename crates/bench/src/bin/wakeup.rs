//! `wakeup` — the single driver over the experiment registry.
//!
//! `wakeup list` shows all experiments; `wakeup run <name>... | --all`
//! executes them with `--scale`, `--threads`, `--seed`, `--out
//! table|csv|json` and `--out-dir` (env fallbacks: `WAKEUP_SCALE`,
//! `WAKEUP_THREADS`). See `wakeup --help`.

fn main() {
    std::process::exit(wakeup_bench::cli::main())
}
