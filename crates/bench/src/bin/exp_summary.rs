//! TAB-SUMMARY — the paper's headline result table (abstract + §1):
//!
//! | Scenario | Bound |
//! |----------|-------|
//! | A (s known) | `Θ(k log(n/k) + 1)` |
//! | B (k known) | `Θ(k log(n/k) + 1)` |
//! | C (neither)  | `O(k log n log log n)` |
//!
//! Regenerated with measured latencies for each scenario's algorithm at a
//! grid of `(n, k)`, on the work-stealing runner with streaming
//! aggregation.

use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, burst_pattern, ensemble_spec, Scale, TableMeter};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "TAB-SUMMARY — the three-scenario result table",
        "A, B: Θ(k·log(n/k)+1); C: O(k·log n·log log n)",
    );
    let scale = Scale::from_env();
    let runs = scale.runs();
    let mut table = Table::new([
        "scenario",
        "bound",
        "n",
        "k",
        "measured mean",
        "measured max",
        "model value",
    ]);
    let mut meter = TableMeter::new();

    for &n in &scale.n_sweep() {
        for &k in &[2u32, 8, 32] {
            if k > n {
                continue;
            }
            let s_for = |seed: u64| (seed % 31) * 7;
            type Factory = Box<dyn Fn(u64) -> Box<dyn Protocol> + Sync>;
            let configs: Vec<(Scenario, Factory)> = vec![
                (
                    Scenario::A { s: 0 },
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupWithS::new(
                            n,
                            s_for(seed),
                            FamilyProvider::random_with_seed(seed),
                        ))
                    }),
                ),
                (
                    Scenario::B { k },
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupWithK::new(
                            n,
                            k,
                            FamilyProvider::random_with_seed(seed),
                        ))
                    }),
                ),
                (
                    Scenario::C,
                    Box::new(move |seed| -> Box<dyn Protocol> {
                        Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed)))
                    }),
                ),
            ];
            for (scenario, factory) in &configs {
                let res = run_ensemble_stream(
                    &ensemble_spec(
                        n,
                        runs,
                        6000,
                        &format!("TAB-SUMMARY {} n={n} k={k}", scenario.label()),
                    ),
                    factory.as_ref(),
                    |seed| burst_pattern(n, k as usize, s_for(seed), seed),
                );
                assert!(res.solved > 0, "{} must solve", scenario.label());
                meter.absorb(&res);
                let model = match scenario {
                    Scenario::C => Model::KLogNLogLogN.eval(f64::from(n), f64::from(k)),
                    _ => Model::KLogNOverK.eval(f64::from(n), f64::from(k)),
                };
                table.push_row([
                    scenario.label().to_string(),
                    scenario.bound().to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{:.1}", res.mean()),
                    format!("{:.0}", res.max()),
                    format!("{model:.0}"),
                ]);
            }
        }
    }
    table.print();
    meter.print("TAB-SUMMARY");
    println!(
        "\n(measured/model ratios are implementation constants; the shape \
         columns are validated by EXP-A/B/C's fits)"
    );
}
