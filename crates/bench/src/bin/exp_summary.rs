//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::summary`; prefer `wakeup run exp_summary`.

fn main() {
    wakeup_bench::cli::shim("exp_summary")
}
