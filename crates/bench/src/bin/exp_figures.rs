//! EXP-FIG1 / EXP-FIG2 — the paper's two figures, regenerated as text.
//!
//! * Figure 1: the transmission sets of a `(log n × ℓ)` transmission matrix
//!   conditionally to which a station `u`, waking up at time `σ_u`,
//!   transmits between `µ(σ_u)` and `µ(σ_u) + m_1 + … + m_i − 1`.
//! * Figure 2: three stations waking at different times transmit, at slot
//!   `j`, conditionally to sets in different *rows* of the same *column*.

use mac_sim::{StationId, WakePattern};
use wakeup_bench::banner;
use wakeup_core::waking_matrix::{render_column, render_walk, MatrixAnalysis};
use wakeup_core::{MatrixParams, WakingMatrix};

fn main() {
    banner(
        "EXP-FIG — Figures 1 and 2 (matrix walk, column snapshot)",
        "protocol structure diagrams of §5.1",
    );
    let n = 64u32;
    let matrix = WakingMatrix::new(MatrixParams::new(n));

    println!("--- Figure 1: one station's walk over the matrix rows ---\n");
    print!("{}", render_walk(&matrix, 7));

    println!("\n--- Figure 2: three stations, different rows, same column ---\n");
    // Stagger the wake-ups so the stations sit in rows 3, 2 and 1 at slot j:
    // the earliest waker has descended deepest.
    let j = matrix.dwell(1) + matrix.dwell(2) + matrix.dwell(3) / 2;
    let wake_row2 = matrix.dwell(1) + matrix.dwell(2) - 2; // δ ∈ [m₁, m₁+m₂)
    let wake_row1 = j - matrix.dwell(1) / 2; // δ < m₁
    let pattern = WakePattern::new(vec![
        (StationId(5), 0),
        (StationId(23), wake_row2),
        (StationId(47), wake_row1),
    ])
    .unwrap();
    print!("{}", render_column(&matrix, &pattern, j));

    // Cross-check the figure against the analysis machinery.
    let analysis = MatrixAnalysis::new(&matrix, &pattern);
    let occ = analysis.occupancy(j);
    println!("\noccupancy check at j={j}: {occ:?}");
    assert_eq!(occ.len(), 3, "all three stations should be operational");
    let rows: std::collections::HashSet<u32> = occ.iter().map(|&(_, r)| r).collect();
    assert_eq!(rows.len(), 3, "stations should occupy three distinct rows");
    println!("distinct rows occupied: 3 (earlier wakers sit in deeper rows)");
}
