//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::figures`; prefer `wakeup run exp_figures`.

fn main() {
    wakeup_bench::cli::shim("exp_figures")
}
