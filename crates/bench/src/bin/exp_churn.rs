//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::churn`; prefer `wakeup run exp_churn`.

fn main() {
    wakeup_bench::cli::shim("exp_churn")
}
