//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::ablations`; prefer `wakeup run exp_ablations`.

fn main() {
    wakeup_bench::cli::shim("exp_ablations")
}
