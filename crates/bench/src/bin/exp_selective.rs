//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::selective`; prefer `wakeup run exp_selective`.

fn main() {
    wakeup_bench::cli::shim("exp_selective")
}
