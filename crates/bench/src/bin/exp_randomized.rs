//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::randomized`; prefer `wakeup run exp_randomized`.

fn main() {
    wakeup_bench::cli::shim("exp_randomized")
}
