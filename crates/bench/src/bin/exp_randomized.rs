//! EXP-RAND — §6: randomized solutions.
//!
//! * RPD accomplishes wake-up in `O(log n)` expected time (Jurdziński &
//!   Stachowiak), independent of `k` and of the wake-up pattern;
//! * with known `k`, RPD with period `2⌈log k⌉` achieves `O(log k)`,
//!   matching the Kushilevitz–Mansour `Ω(log k)` lower bound;
//! * classical baselines (slotted ALOHA at `p = 1/k`, binary exponential
//!   backoff) for context.
//!
//! Streaming ensembles on the work-stealing runner (randomized protocols
//! mean many cheap runs — exactly the workload batching amortizes).

use mac_sim::Protocol;
use wakeup_analysis::prelude::*;
use wakeup_bench::{banner, burst_pattern, ensemble_spec, random_pattern, Scale, TableMeter};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-RAND — §6 randomized protocols",
        "RPD: O(log n) expected; RPD-k: O(log k) ≍ Ω(log k) lower bound",
    );
    let scale = Scale::from_env();
    let runs = scale.runs() * 4; // randomized: more runs, cheap ones
    let k = 4usize;
    let mut meter = TableMeter::new();

    // --- RPD expected time vs log n ------------------------------------
    let mut rpd_points = Vec::new();
    let mut table = Table::new(["n", "k", "RPD mean", "log2 n", "RPD-k mean", "log2 k"]);
    for &n in &scale.n_sweep() {
        let rpd = run_ensemble_stream(
            &ensemble_spec(n, runs, 5000, &format!("EXP-RAND rpd n={n}")).with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(Rpd::new(n)) },
            |seed| random_pattern(n, k, 16, seed),
        );
        let rpdk = run_ensemble_stream(
            &ensemble_spec(n, runs, 5000, &format!("EXP-RAND rpdk n={n}"))
                .with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(RpdK::new(n, k as u32)) },
            |seed| random_pattern(n, k, 16, seed),
        );
        assert!(rpd.solved > 0, "RPD must solve");
        assert!(rpdk.solved > 0, "RPD-k must solve");
        meter.absorb(&rpd);
        meter.absorb(&rpdk);
        rpd_points.push((f64::from(n), k as f64, rpd.mean()));
        table.push_row([
            n.to_string(),
            k.to_string(),
            format!("{:.1}", rpd.mean()),
            format!("{:.1}", f64::from(n).log2()),
            format!("{:.1}", rpdk.mean()),
            format!("{:.1}", (k as f64).log2()),
        ]);
    }
    table.print();
    let fit = fit_model(Model::LogN, &rpd_points).expect("fit");
    println!("\nRPD shape fit: {}", fit.render());

    // --- RPD-k vs the Ω(log k) lower bound ------------------------------
    println!("\nRPD-k expected latency vs k (n fixed), with the Ω(log k) reference:");
    let n = *scale.n_sweep().last().unwrap();
    let mut ktab = Table::new(["n", "k", "RPD-k mean", "log2 k (lower-bound shape)"]);
    let mut k_points = Vec::new();
    for kk in [2u32, 4, 8, 16, 32, 64] {
        let res = run_ensemble_stream(
            &ensemble_spec(n, runs, 5100, &format!("EXP-RAND rpdk k={kk}"))
                .with_max_slots(1_000_000),
            |_| -> Box<dyn Protocol> { Box::new(RpdK::new(n, kk)) },
            |seed| burst_pattern(n, kk as usize, 3, seed),
        );
        assert!(res.solved > 0, "RPD-k must solve");
        meter.absorb(&res);
        k_points.push((f64::from(n), f64::from(kk), res.mean()));
        ktab.push_row([
            n.to_string(),
            kk.to_string(),
            format!("{:.1}", res.mean()),
            format!("{:.1}", f64::from(kk).log2()),
        ]);
    }
    ktab.print();
    let kfit = fit_model(Model::LogK, &k_points).expect("fit");
    println!("RPD-k shape fit: {}", kfit.render());

    // --- baseline comparison at one configuration -----------------------
    println!("\nbaseline comparison (n={n}, k=8, simultaneous burst):");
    let mut btab = Table::new(["protocol", "mean", "p90", "max"]);
    type Factory = Box<dyn Fn(u64) -> Box<dyn Protocol> + Sync>;
    let protocols: Vec<(&str, Factory)> = vec![
        ("RPD", Box::new(move |_| Box::new(Rpd::new(n)))),
        ("RPD-k", Box::new(move |_| Box::new(RpdK::new(n, 8)))),
        ("ALOHA 1/k", Box::new(move |_| Box::new(Aloha::new(n, 8)))),
        (
            "BEB",
            Box::new(move |_| Box::new(BinaryExponentialBackoff::new(n))),
        ),
    ];
    for (name, factory) in &protocols {
        let res = run_ensemble_stream(
            &ensemble_spec(n, runs, 5200, &format!("EXP-RAND {name}")).with_max_slots(1_000_000),
            factory.as_ref(),
            |seed| burst_pattern(n, 8, 0, seed),
        );
        assert!(res.solved > 0, "{name} must solve");
        meter.absorb(&res);
        btab.push_row([
            name.to_string(),
            format!("{:.1}", res.mean()),
            format!("{:.1}", res.p90()),
            format!("{:.0}", res.max()),
        ]);
    }
    btab.print();
    meter.print("EXP-RAND");
}
