//! EXP-LB — Theorem 2.1: the wake-up problem requires `min{k, n−k+1}`
//! rounds, even with simultaneous start and known `k`, `n`.
//!
//! Runs the swap-chain adversary against round-robin and against a
//! selective-family schedule, reporting the rounds each schedule is forced
//! to spend versus the theoretical bound. Corollary 2.1's identity
//! `n−k+1 = Θ(k log(n/k)+1)` for `k > n/c` is tabulated alongside. The
//! per-`(n, k)` adversary runs are independent and fan out on the
//! work-stealing runner (rows still print in sweep order).

use selectors::schedule::{RoundRobinSchedule, ScheduleExt};
use wakeup_analysis::Table;
use wakeup_bench::{banner, runner, Scale};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-LB — Theorem 2.1 lower bound (swap-chain adversary)",
        "any algorithm needs ≥ min{k, n−k+1} rounds; forced_rounds must meet it",
    );
    let scale = Scale::from_env();
    let ns: Vec<u32> = match scale {
        Scale::Quick => vec![32, 64, 128],
        Scale::Full => vec![32, 64, 128, 256, 512],
    };

    let mut table = Table::new([
        "n",
        "k",
        "bound min{k,n-k+1}",
        "forced (round-robin)",
        "distinct rounds",
        "forced (selective)",
    ]);

    let mut grid: Vec<(u32, u32)> = Vec::new();
    for &n in &ns {
        for k in [1u32, 2, 4, n / 4, n / 2, 3 * n / 4, n - 2, n - 1] {
            if (1..=n).contains(&k) {
                grid.push((n, k));
            }
        }
    }

    let (rows, _stats) = runner("EXP-LB").map(grid.len() as u64, |i| {
        let (n, k) = grid[i as usize];
        let adv = SwapChainAdversary::new(n, k);
        let rr = adv.run(&RoundRobinSchedule::new(n));
        assert!(
            rr.forced_rounds >= adv.bound(),
            "round-robin evaded the bound at n={n}, k={k}"
        );
        // A selective-family schedule (the building block of the upper
        // bounds) is also subject to the lower bound.
        let fam = FamilyProvider::random_with_seed(1).family(n, k.max(2));
        let sel = adv.run(&fam.clone().cycle());
        [
            n.to_string(),
            k.to_string(),
            adv.bound().to_string(),
            rr.forced_rounds.to_string(),
            rr.distinct_rounds.to_string(),
            if sel.found_unisolated_set {
                format!("{}+ (unresolved set)", sel.forced_rounds)
            } else {
                sel.forced_rounds.to_string()
            },
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table.print();

    println!("\nCorollary 2.1: for k > n/c, n−k+1 = Θ(k·log(n/k)+1):");
    let mut cor = Table::new(["n", "k", "n-k+1", "k·log2(n/k)+1", "ratio"]);
    let n = 1024u32;
    for k in [512u32, 768, 896, 1008, 1020] {
        let rhs = f64::from(k) * (f64::from(n) / f64::from(k)).log2() + 1.0;
        cor.push_row([
            n.to_string(),
            k.to_string(),
            (n - k + 1).to_string(),
            format!("{rhs:.1}"),
            format!("{:.2}", f64::from(n - k + 1) / rhs.max(1e-9)),
        ]);
    }
    cor.print();
    println!("\n(The ratio stays Θ(1)·ln2-ish as k → n: the two bounds coincide.)");
}
