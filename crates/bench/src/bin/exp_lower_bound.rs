//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::lower_bound`; prefer `wakeup run exp_lower_bound`.

fn main() {
    wakeup_bench::cli::shim("exp_lower_bound")
}
