//! Shim: the experiment body lives in
//! `wakeup_bench::experiments::crossover`; prefer `wakeup run exp_crossover`.

fn main() {
    wakeup_bench::cli::shim("exp_crossover")
}
