//! EXP-CROSS — Corollary 2.1 / the §3–§4 interleaving rationale:
//! round-robin wins for `k > n/c`, the selective component wins for small
//! `k`, and the interleaved algorithm tracks the minimum of the two.
//!
//! Fixed `n`, sweeping `k` to `n`, measuring worst-case-flavoured latency
//! (the adversarial last-block pattern for round-robin, bursts for the
//! others).

use mac_sim::prelude::*;
use wakeup_analysis::Table;
use wakeup_bench::{banner, worst_rr_pattern, Scale};
use wakeup_core::prelude::*;

fn main() {
    banner(
        "EXP-CROSS — round-robin vs selective component vs interleaving",
        "interleaving = Θ(min{n−k+1, k·log(n/k)+k}) = Θ(k·log(n/k)+1)",
    );
    let scale = Scale::from_env();
    let n: u32 = match scale {
        Scale::Quick => 1024,
        Scale::Full => 4096,
    };
    let sim = Simulator::new(SimConfig::new(n).with_max_slots(40 * u64::from(n)));

    let mut table = Table::new([
        "k",
        "round-robin (worst ids)",
        "wait-and-go alone",
        "wakeup_with_k (interleaved)",
        "n-k+1",
    ]);

    let mut ks: Vec<u32> = vec![2, 4, 16, 64];
    ks.extend([n / 8, n / 4, n / 2, 3 * n / 4, n - 16, n - 1]);
    for k in ks {
        if !(1..=n).contains(&k) {
            continue;
        }
        // Round-robin against its adversarial pattern: the k stations owning
        // the last turns of the cycle.
        let rr_pattern = worst_rr_pattern(n, k as usize, 0);
        let rr = sim
            .run(&RoundRobin::new(n), &rr_pattern, 0)
            .unwrap()
            .latency()
            .expect("round-robin always solves");

        // The selective component and the interleaved algorithm face the
        // same adversarial block, so the interleaved column reads as
        // min(round-robin column, wait-and-go column) · O(1).
        let burst = worst_rr_pattern(n, k as usize, 0);
        let wag = sim
            .run(&WaitAndGo::new(n, k, FamilyProvider::default()), &burst, 0)
            .unwrap();
        let wag_str = wag
            .latency()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "censored".into());
        let full = sim
            .run(
                &WakeupWithK::new(n, k, FamilyProvider::default()),
                &burst,
                0,
            )
            .unwrap()
            .latency()
            .expect("interleaved algorithm must solve");

        table.push_row([
            k.to_string(),
            rr.to_string(),
            wag_str,
            full.to_string(),
            (n - k + 1).to_string(),
        ]);
    }
    table.print();
    println!(
        "\n(for small k the selective column ≪ round-robin; near k = n the \
         round-robin column ≈ n−k+1 wins; the interleaved column stays within \
         2× the better of the two — the factor-2 interleaving cost)"
    );
}
