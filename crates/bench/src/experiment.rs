//! The declarative experiment abstraction behind the `wakeup` driver.
//!
//! An [`Experiment`] is data: its registry name, banner strings, the
//! per-scale sweep [`Grid`] it walks, and a body function reporting through
//! a [`Ctx`]. The body never touches `println!`, `std::env` or `assert!` —
//! configuration comes in through the context (CLI flags layered over the
//! `WAKEUP_*` env fallbacks) and results go out through the active
//! [`Sink`], so the same experiment renders as pretty tables, CSV or JSON
//! Lines without changing a line of its body.
//!
//! The inline `assert!`s of the historical binaries became declarative
//! [`Check`]s: each check is evaluated against a streaming summary, its
//! outcome is *emitted* (machine sinks record passes and failures alike),
//! and the driver's exit code reflects any failure — so a failed paper
//! expectation is a reported measurement, not a half-printed panic.

use crate::sink::{ExperimentHead, Sink};
use crate::{Grid, Scale};
use std::cell::Cell;
use wakeup_analysis::ensemble::{EnsembleSpec, EnsembleSummary, TraceSpec};
use wakeup_analysis::serial::Record;
use wakeup_analysis::Table;

/// One registry entry: everything the driver needs to list and run an
/// experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Registry / CLI / binary name (`exp_scenario_a`).
    pub name: &'static str,
    /// Short id used in table footers and row labels (`EXP-A`).
    pub id: &'static str,
    /// Banner title line (includes the id by convention).
    pub title: &'static str,
    /// The paper claim under test (the banner's second line).
    pub claim: &'static str,
    /// The sweep grid the body walks via [`Ctx::ns`]/[`Ctx::ks`]. Bodies
    /// with bespoke grids (figures, certification) leave the default.
    pub grid: Grid,
    /// Declared wall-clock budget of one **full-scale** run on the
    /// reference single-core box, in seconds (measured, rounded up).
    /// `wakeup list` prints it and `wakeup run --time-box` uses it to
    /// project whether a selection fits the box; quick-scale runs are
    /// seconds each and are not budgeted.
    pub full_budget_secs: u64,
    /// The body.
    pub run: fn(&mut Ctx<'_>),
}

impl Experiment {
    /// The banner identity of this experiment.
    pub fn head(&self) -> ExperimentHead<'_> {
        ExperimentHead {
            name: self.name,
            id: self.id,
            title: self.title,
            claim: self.claim,
        }
    }
}

/// Optional workload knobs the CLI threads into experiment bodies — the
/// flags that tune *how* a sweep runs without changing what it measures.
#[derive(Clone, Copy, Debug, Default)]
pub struct Knobs {
    /// `--family-pool F`: EXP-A/B draw their selective-family seeds from a
    /// pool of `F` realizations per sweep cell, so construction is
    /// amortized through the ensemble cache instead of paid once per run.
    pub family_pool: Option<u64>,
    /// `--calibrate`: every [`EnsembleSpec`] built by the context
    /// self-calibrates the adaptive engine constants against the protocol
    /// (outcomes unchanged; work counters become machine-dependent).
    pub calibrate: bool,
}

/// A declarative expectation on measured results — the replacement for the
/// binaries' inline `assert!`s. Constructed per sweep cell and handed to
/// [`Ctx::check`], which evaluates, emits and tallies it.
#[derive(Debug)]
pub enum Check<'a> {
    /// Every run solved within the cap (`censored() == 0`).
    NoCensored(&'a EnsembleSummary),
    /// At least one run solved (`solved > 0`).
    Solves(&'a EnsembleSummary),
    /// The maximum solved latency stays within `bound`.
    MaxWithin(&'a EnsembleSummary, f64),
    /// An arbitrary already-evaluated predicate with rendered evidence.
    Holds(bool, String),
}

impl Check<'_> {
    fn eval(&self) -> (bool, String) {
        match self {
            Check::NoCensored(s) => (
                s.censored() == 0,
                format!("{} of {} runs censored", s.censored(), s.runs),
            ),
            Check::Solves(s) => (
                s.solved > 0,
                format!("{} of {} runs solved", s.solved, s.runs),
            ),
            Check::MaxWithin(s, bound) => (
                s.max() <= *bound,
                format!("max latency {:.0} vs bound {bound:.0}", s.max()),
            ),
            Check::Holds(ok, detail) => (*ok, detail.clone()),
        }
    }
}

/// The evaluated result of a [`Check`], as emitted to sinks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOutcome {
    /// The check's label (usually `"<what> at n=…, k=…"`).
    pub name: String,
    /// Did it hold?
    pub passed: bool,
    /// Rendered evidence (measured value vs expectation).
    pub detail: String,
}

/// The experiment's execution context: resolved configuration plus the
/// active sink.
pub struct Ctx<'a> {
    scale: Scale,
    grid: Grid,
    seed: u64,
    threads: Option<usize>,
    sink: &'a mut dyn Sink,
    failures: u64,
    /// The experiment's short id, prefixed onto progress labels so that
    /// nested or repeated sweeps never interleave identical labels in one
    /// stderr stream.
    id: String,
    /// Ordinal of the next ensemble this context builds (see
    /// `progress_label`).
    ensembles: Cell<u64>,
    /// Structured-trace capture attached to every spec built here.
    trace: Option<TraceSpec>,
    /// CLI workload knobs (family pooling, self-calibration).
    knobs: Knobs,
}

impl<'a> Ctx<'a> {
    /// A context at `scale` over `grid`, reporting to `sink`. `seed` is
    /// added (wrapping) to every ensemble base seed; `threads` overrides
    /// the worker count when set (else `WAKEUP_THREADS`, else available
    /// parallelism).
    pub fn new(
        scale: Scale,
        grid: Grid,
        seed: u64,
        threads: Option<usize>,
        sink: &'a mut dyn Sink,
    ) -> Self {
        Ctx {
            scale,
            grid,
            seed,
            threads,
            sink,
            failures: 0,
            id: String::new(),
            ensembles: Cell::new(0),
            trace: None,
            knobs: Knobs::default(),
        }
    }

    /// Tag this context with the experiment's short id (label prefixing).
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = id.into();
        self
    }

    /// Attach structured-trace capture: every [`spec`](Self::spec) built by
    /// this context traces into it.
    pub fn with_trace(mut self, trace: Option<TraceSpec>) -> Self {
        self.trace = trace;
        self
    }

    /// Attach the CLI workload knobs (family pooling, self-calibration).
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// `--family-pool F`, when set: bodies that construct per-run selective
    /// families should reduce their family seed modulo `F` and route
    /// construction through an ensemble cache.
    pub fn family_pool(&self) -> Option<u64> {
        self.knobs.family_pool
    }

    /// The resolved scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The `n` sweep of this experiment's grid at the resolved scale.
    pub fn ns(&self) -> Vec<u32> {
        self.scale.n_sweep(self.grid)
    }

    /// The `k` sweep of this experiment's grid for universe size `n`.
    pub fn ks(&self, n: u32) -> Vec<u32> {
        self.scale.k_sweep(self.grid, n)
    }

    /// Runs per configuration at the resolved scale.
    pub fn runs(&self) -> u64 {
        self.scale.runs()
    }

    /// The global seed offset (`--seed`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A unique progress label for the next ensemble: the experiment id is
    /// prefixed when the body's label doesn't already carry it, and an
    /// ensemble ordinal (`#4`) is appended. A sweep that reuses one label
    /// for every cell — or a summary experiment nesting sub-sweeps — thus
    /// never emits two progress streams under the same name.
    fn progress_label(&self, label: &str) -> String {
        let seq = self.ensembles.get();
        if self.id.is_empty() || label.starts_with(self.id.as_str()) {
            format!("{label} #{seq}")
        } else {
            format!("{} {label} #{seq}", self.id)
        }
    }

    /// An [`EnsembleSpec`] carrying the resolved configuration: the CLI
    /// `--seed` offset on top of `base_seed`, the resolved thread count,
    /// `WAKEUP_PROGRESS` routed through the sink's progress target (under a
    /// disambiguated, uniquely-numbered label), and the context's
    /// trace capture, if any.
    pub fn spec(&self, n: u32, runs: u64, base_seed: u64, label: &str) -> EnsembleSpec {
        let mut spec = EnsembleSpec::new(n, runs).with_base_seed(base_seed.wrapping_add(self.seed));
        if let Some(threads) = self.threads.or_else(crate::env_threads) {
            spec = spec.with_threads(threads);
        }
        if let Some(p) = crate::env_progress(&self.progress_label(label)) {
            spec = spec.with_progress_spec(p.with_sink(self.sink.progress_sink()));
        }
        if let Some(trace) = &self.trace {
            spec = spec.with_trace(trace.clone());
        }
        if self.knobs.calibrate {
            spec = spec.with_calibration();
        }
        self.ensembles.set(self.ensembles.get() + 1);
        spec
    }

    /// A bare [`wakeup_runner::Runner`] carrying the resolved thread count
    /// and progress routing — for experiment kernels outside the ensemble
    /// layer.
    pub fn runner(&self, label: &str) -> wakeup_runner::Runner {
        let mut r = wakeup_runner::Runner::new();
        if let Some(threads) = self.threads.or_else(crate::env_threads) {
            r = r.with_threads(threads);
        }
        if let Some(p) = crate::env_progress(&self.progress_label(label)) {
            r = r.with_progress(p.with_sink(self.sink.progress_sink()));
        }
        self.ensembles.set(self.ensembles.get() + 1);
        r
    }

    /// Emit a commentary line.
    pub fn note(&mut self, text: impl AsRef<str>) {
        self.sink.note(text.as_ref());
    }

    /// Emit a completed pretty table.
    pub fn table(&mut self, name: &str, table: &Table) {
        self.sink.table(name, table);
    }

    /// Emit one machine-readable row.
    pub fn row(&mut self, stream: &str, record: Record) {
        self.sink.row(stream, &record);
    }

    /// Emit a per-table work/throughput footer.
    pub fn work(&mut self, label: &str, meter: &crate::TableMeter) {
        self.sink.work(label, meter);
    }

    /// Evaluate a [`Check`], emit its outcome, and tally a failure if it
    /// did not hold. Returns whether it passed, so bodies can guard
    /// follow-up computation on the checked invariant.
    pub fn check(&mut self, name: impl Into<String>, check: Check<'_>) -> bool {
        let (passed, detail) = check.eval();
        let outcome = CheckOutcome {
            name: name.into(),
            passed,
            detail,
        };
        if !passed {
            self.failures += 1;
        }
        self.sink.check(&outcome);
        passed
    }

    /// Number of failed checks so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

/// Run one experiment end to end against `sink`; returns the number of
/// failed checks (the driver's exit status source).
pub fn run_experiment(
    exp: &Experiment,
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    sink: &mut dyn Sink,
) -> u64 {
    run_experiment_traced(exp, scale, seed, threads, None, sink)
}

/// [`run_experiment`] with structured-trace capture: every ensemble the
/// body runs records trace events into `trace` (when `Some`), without
/// perturbing outcomes or the sink's output.
pub fn run_experiment_traced(
    exp: &Experiment,
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    trace: Option<TraceSpec>,
    sink: &mut dyn Sink,
) -> u64 {
    run_experiment_with(exp, scale, seed, threads, trace, Knobs::default(), sink)
}

/// [`run_experiment_traced`] with explicit workload [`Knobs`] — the full
/// entry point the `wakeup` driver uses.
pub fn run_experiment_with(
    exp: &Experiment,
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    trace: Option<TraceSpec>,
    knobs: Knobs,
    sink: &mut dyn Sink,
) -> u64 {
    sink.begin(&exp.head(), scale, seed);
    let mut ctx = Ctx::new(scale, exp.grid, seed, threads, sink)
        .with_id(exp.id)
        .with_trace(trace)
        .with_knobs(knobs);
    (exp.run)(&mut ctx);
    let failures = ctx.failures();
    sink.finish(failures);
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullSink {
        checks: Vec<CheckOutcome>,
    }
    impl Sink for NullSink {
        fn check(&mut self, outcome: &CheckOutcome) {
            self.checks.push(outcome.clone());
        }
    }

    #[test]
    fn checks_tally_and_emit() {
        let mut sink = NullSink { checks: vec![] };
        let mut ctx = Ctx::new(Scale::Quick, Grid::Dense, 0, None, &mut sink);
        assert!(ctx.check("always", Check::Holds(true, "fine".into())));
        assert!(!ctx.check("never", Check::Holds(false, "broken".into())));
        assert_eq!(ctx.failures(), 1);
        assert_eq!(sink.checks.len(), 2);
        assert_eq!(sink.checks[1].name, "never");
        assert!(!sink.checks[1].passed);
    }

    #[test]
    fn summary_checks_evaluate_the_right_fields() {
        let spec = EnsembleSpec::new(16, 4).with_max_slots(40);
        let solved = wakeup_analysis::run_ensemble_stream(
            &spec,
            |_| Box::new(wakeup_core::prelude::RoundRobin::new(16)),
            |seed| crate::burst_pattern(16, 2, 0, seed),
        );
        assert!(matches!(Check::NoCensored(&solved).eval(), (true, _)));
        assert!(matches!(Check::Solves(&solved).eval(), (true, _)));
        assert!(matches!(
            Check::MaxWithin(&solved, 2.0 * 16.0 + 1.0).eval(),
            (true, _)
        ));
        assert!(matches!(Check::MaxWithin(&solved, 0.5).eval(), (false, _)));
    }

    #[test]
    fn ctx_spec_applies_seed_offset_and_threads() {
        let mut sink = NullSink { checks: vec![] };
        let ctx = Ctx::new(Scale::Quick, Grid::Sparse, 100, Some(3), &mut sink);
        let spec = ctx.spec(64, 10, 4000, "test");
        assert_eq!(spec.base_seed, 4100);
        assert_eq!(spec.threads, 3);
        assert_eq!(spec.n, 64);
        // Grid plumbs through to the sweeps.
        assert_eq!(ctx.ns(), Scale::Quick.n_sweep(Grid::Sparse));
        assert_eq!(ctx.ks(256), Scale::Quick.k_sweep(Grid::Sparse, 256));
    }

    #[test]
    fn progress_labels_are_unique_and_id_prefixed() {
        let mut sink = NullSink { checks: vec![] };
        let ctx = Ctx::new(Scale::Quick, Grid::Dense, 0, None, &mut sink)
            .with_id("EXP-X")
            .with_trace(None);
        // A bare body label gets the experiment id prefixed; the ensemble
        // ordinal makes repeated identical labels distinct.
        assert_eq!(ctx.progress_label("n=256 k=4"), "EXP-X n=256 k=4 #0");
        ctx.spec(16, 2, 100, "n=256 k=4");
        assert_eq!(ctx.progress_label("n=256 k=4"), "EXP-X n=256 k=4 #1");
        // Labels already carrying the id are not double-prefixed.
        assert_eq!(ctx.progress_label("EXP-X n=1"), "EXP-X n=1 #1");
        ctx.spec(16, 2, 100, "x");
        assert_eq!(ctx.progress_label("x"), "EXP-X x #2");
        // Without an id (bare Ctx::new) only the ordinal is appended.
        let mut sink2 = NullSink { checks: vec![] };
        let ctx2 = Ctx::new(Scale::Quick, Grid::Dense, 0, None, &mut sink2);
        assert_eq!(ctx2.progress_label("plain"), "plain #0");
    }
}
