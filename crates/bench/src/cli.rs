//! The `wakeup` driver: one CLI over the whole experiment registry.
//!
//! ```text
//! wakeup list
//! wakeup run <name>... | --all [--scale quick|full] [--threads N]
//!            [--seed S] [--out table|csv|json] [--out-dir DIR]
//!            [--trace] [--trace-out DIR] [--trace-sample N]
//! wakeup trace <name>...      # run with --trace defaulted on
//! wakeup report <trace.jsonl> # fold a trace artifact back into tables
//! ```
//!
//! Flags fall back to the historical environment variables where one
//! exists (`--scale` → `WAKEUP_SCALE`, `--threads` → `WAKEUP_THREADS`), so
//! existing invocations and CI recipes keep working; the `exp_*` binaries
//! are shims onto [`shim`].

use crate::experiment::{run_experiment_with, Knobs};
use crate::experiments;
use crate::sink::OutFormat;
use crate::Scale;
use mac_sim::tracer::TraceFilter;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use wakeup_analysis::ensemble::TraceSpec;

/// Resolved driver configuration (flags over env fallbacks).
#[derive(Clone, Debug)]
pub struct Config {
    /// Sweep scale (`--scale`, else `WAKEUP_SCALE`, else quick).
    pub scale: Scale,
    /// Worker threads (`--threads`, else `WAKEUP_THREADS`, else auto).
    pub threads: Option<usize>,
    /// Offset added to every ensemble base seed (`--seed`, default 0).
    pub seed: u64,
    /// Output format (`--out`, default table).
    pub out: OutFormat,
    /// Per-experiment output files instead of stdout (`--out-dir`).
    pub out_dir: Option<PathBuf>,
    /// Wall-clock box for the selection, in seconds (`--time-box`): at full
    /// scale the driver schedules the selection **budget-ascending** by the
    /// registry's declared
    /// [`full_budget_secs`](crate::experiment::Experiment::full_budget_secs)
    /// and stops admitting experiments before the cumulative projection
    /// would overflow the box; the deferred remainder is reported.
    pub time_box: Option<u64>,
    /// Capture a structured trace per experiment (`--trace`, or the
    /// `wakeup trace` subcommand which defaults it on).
    pub trace: bool,
    /// Directory for `<experiment>.trace.jsonl` / `.exec.jsonl` artifacts
    /// (`--trace-out`, default `traces`).
    pub trace_out: Option<PathBuf>,
    /// Keep every N-th event per (run, kind) stream (`--trace-sample`,
    /// default 1 = keep everything).
    pub trace_sample: u64,
    /// Family-pool size (`--family-pool`, else `WAKEUP_FAMILY_POOL`):
    /// EXP-A/B draw their selective-family seeds from a pool of `F`
    /// realizations per sweep cell, amortizing construction through the
    /// ensemble-wide cache instead of building one family per run.
    pub family_pool: Option<u64>,
    /// Self-calibrate the adaptive engine constants per ensemble
    /// (`--calibrate`, else `WAKEUP_CALIBRATE=1`). Outcomes are unchanged;
    /// work counters become machine-dependent.
    pub calibrate: bool,
}

impl Config {
    /// The environment-only configuration the shim binaries run with.
    pub fn from_env() -> Config {
        Config {
            scale: Scale::from_env(),
            threads: None, // Ctx falls back to WAKEUP_THREADS itself
            seed: 0,
            out: OutFormat::Table,
            out_dir: None,
            time_box: None,
            trace: false,
            trace_out: None,
            trace_sample: 1,
            family_pool: std::env::var("WAKEUP_FAMILY_POOL")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&f| f >= 1),
            calibrate: matches!(std::env::var("WAKEUP_CALIBRATE").as_deref(), Ok("1")),
        }
    }
}

const USAGE: &str = "\
wakeup — the experiment driver of the De Marco & Kowalski reproduction

USAGE:
    wakeup list
    wakeup run <experiment>... [OPTIONS]
    wakeup run --all [OPTIONS]
    wakeup trace <experiment>... [OPTIONS]
    wakeup report <trace.jsonl> [--out table|csv|json]
    wakeup diff <dir_a> <dir_b> [--threshold F]
    wakeup lint [--out table|csv|json] [--baseline FILE] [--rules]

OPTIONS:
    --scale quick|full     sweep scale (default: $WAKEUP_SCALE or quick)
    --threads N            runner worker threads (default: $WAKEUP_THREADS or auto)
    --seed S               offset added to every ensemble base seed (default 0)
    --out table|csv|json   output format (default: table; json = JSON Lines)
    --out-dir DIR          write <experiment>.{txt,csv,jsonl} under DIR
    --trace                also capture a structured event trace per experiment
    --trace-out DIR        trace artifact directory (default: traces)
    --trace-sample N       keep every N-th event per (run, kind) stream
    --family-pool F        EXP-A/B: draw family seeds from a pool of F
                           realizations per sweep cell (construction amortized
                           through the ensemble cache; default: $WAKEUP_FAMILY_POOL
                           or one fresh family per run)
    --calibrate            self-calibrate the adaptive engine constants per
                           ensemble (default: $WAKEUP_CALIBRATE=1; outcomes
                           unchanged, work counters become machine-dependent)
    --time-box SECS        schedule the selection inside this wall-clock box:
                           at full scale, run budget-ascending (declared
                           per-experiment budgets) and stop before the
                           cumulative projection overflows; defer the rest
    --threshold F          diff: relative regression threshold (default 0.05)
    -h, --help             this help

`wakeup trace` is `wakeup run` with --trace defaulted on: each experiment
writes <name>.trace.jsonl (the deterministic event stream — bit-identical
across --threads counts for a fixed seed) and <name>.exec.jsonl (wall-clock
tier: per-ensemble phase timers and per-worker counters) under --trace-out.
`wakeup report` folds a trace artifact back into slot-class / contention
histograms, the mode-switch timeline and worker utilization.

`wakeup diff` compares two --out-dir JSON artifact directories (baseline,
candidate) and exits 1 when any latency/work metric regressed beyond the
threshold, a row or artifact disappeared, or a check flipped to failing.

`wakeup lint` statically checks the workspace's determinism & architecture
invariants (hash-state, wall-clock, ambient RNG, unsafe hygiene, sink/env
discipline, crate layering, hot-path panics, trace-schema sync) and exits 1
on any deny finding or warn-tier growth past ci/lint-baseline.jsonl; see
`wakeup lint --rules`.

Environment: WAKEUP_PROGRESS=secs enables live runs/s lines on stderr;
WAKEUP_ASSERT_SPARSE=1 turns EXP-KG's sparse-path expectations into checks;
WAKEUP_ASSERT_CLASSES=1 adds EXP-MEGA's concrete cross-checks (class-engine
aggregates bit-identical to the per-station engine).
";

/// Errors from argument parsing, rendered to stderr by [`main`].
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

/// The parsed command.
#[derive(Debug)]
pub enum Command {
    /// `wakeup list`
    List,
    /// `wakeup run …`
    Run {
        /// Experiment names to run, in registry order.
        names: Vec<String>,
        /// Resolved configuration.
        config: Config,
    },
    /// `wakeup report <trace.jsonl>`
    Report {
        /// Trace artifact to fold.
        path: PathBuf,
        /// Output format for the report.
        out: OutFormat,
    },
    /// `wakeup lint …` — all remaining arguments pass through to the
    /// analyzer's own driver ([`wakeup_lint::cli::run`]).
    Lint {
        /// Post-subcommand arguments, verbatim.
        args: Vec<String>,
    },
    /// `wakeup diff <dir_a> <dir_b>`
    Diff {
        /// Baseline artifact directory.
        dir_a: PathBuf,
        /// Candidate artifact directory.
        dir_b: PathBuf,
        /// Relative regression threshold.
        threshold: f64,
    },
    /// `-h` / `--help` / no args.
    Help,
}

/// Parse a full argument vector (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "list" => {
            if let Some(extra) = it.next() {
                return Err(ParseError(format!("unexpected argument '{extra}'")));
            }
            Ok(Command::List)
        }
        "run" => parse_run(&mut it, false),
        "trace" => parse_run(&mut it, true),
        "lint" => Ok(Command::Lint {
            args: it.cloned().collect(),
        }),
        "report" => {
            let mut path: Option<PathBuf> = None;
            let mut out = OutFormat::Table;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--out needs a value".into()))?;
                        out = OutFormat::parse(v).ok_or_else(|| {
                            ParseError(format!("--out must be table|csv|json, got '{v}'"))
                        })?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ParseError(format!("unknown flag '{flag}'")))
                    }
                    p if path.is_none() => path = Some(PathBuf::from(p)),
                    extra => {
                        return Err(ParseError(format!(
                            "report takes one trace file, got extra '{extra}'"
                        )))
                    }
                }
            }
            let path =
                path.ok_or_else(|| ParseError("report needs a trace file to fold".into()))?;
            Ok(Command::Report { path, out })
        }
        "diff" => {
            let mut dirs: Vec<PathBuf> = Vec::new();
            let mut threshold = 0.05f64;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--threshold" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--threshold needs a value".into()))?;
                        threshold = v.parse::<f64>().map_err(|_| {
                            ParseError(format!("--threshold must be a number, got '{v}'"))
                        })?;
                        if threshold.is_nan() || threshold < 0.0 {
                            return Err(ParseError(format!(
                                "--threshold must be ≥ 0, got {threshold}"
                            )));
                        }
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ParseError(format!("unknown flag '{flag}'")))
                    }
                    dir => dirs.push(PathBuf::from(dir)),
                }
            }
            let [dir_a, dir_b] = <[PathBuf; 2]>::try_from(dirs).map_err(|d| {
                ParseError(format!(
                    "diff takes exactly two artifact directories, got {}",
                    d.len()
                ))
            })?;
            Ok(Command::Diff {
                dir_a,
                dir_b,
                threshold,
            })
        }
        other => Err(ParseError(format!(
            "unknown command '{other}' (try `wakeup --help`)"
        ))),
    }
}

/// Parse the shared `run`/`trace` grammar; `trace` starts the flag on
/// (the `wakeup trace` subcommand) and `--trace` can still add it to a
/// plain `run`.
fn parse_run(
    it: &mut std::iter::Peekable<std::slice::Iter<String>>,
    trace: bool,
) -> Result<Command, ParseError> {
    let mut config = Config::from_env();
    config.trace = trace;
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, ParseError> {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--trace" => config.trace = true,
            "--scale" => {
                config.scale = match value(it, "--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => {
                        return Err(ParseError(format!(
                            "--scale must be quick|full, got '{other}'"
                        )))
                    }
                }
            }
            "--threads" => {
                let v = value(it, "--threads")?;
                config.threads =
                    Some(v.parse::<usize>().map_err(|_| {
                        ParseError(format!("--threads must be a number, got '{v}'"))
                    })?);
            }
            "--seed" => {
                let v = value(it, "--seed")?;
                config.seed = v
                    .parse::<u64>()
                    .map_err(|_| ParseError(format!("--seed must be a number, got '{v}'")))?;
            }
            "--out" => {
                let v = value(it, "--out")?;
                config.out = OutFormat::parse(&v).ok_or_else(|| {
                    ParseError(format!("--out must be table|csv|json, got '{v}'"))
                })?;
            }
            "--out-dir" => {
                config.out_dir = Some(PathBuf::from(value(it, "--out-dir")?));
            }
            "--trace-out" => {
                config.trace = true;
                config.trace_out = Some(PathBuf::from(value(it, "--trace-out")?));
            }
            "--trace-sample" => {
                config.trace = true;
                let v = value(it, "--trace-sample")?;
                let n = v.parse::<u64>().map_err(|_| {
                    ParseError(format!("--trace-sample must be a number, got '{v}'"))
                })?;
                if n == 0 {
                    return Err(ParseError("--trace-sample must be ≥ 1".into()));
                }
                config.trace_sample = n;
            }
            "--family-pool" => {
                let v = value(it, "--family-pool")?;
                let f = v.parse::<u64>().map_err(|_| {
                    ParseError(format!("--family-pool must be a number, got '{v}'"))
                })?;
                if f == 0 {
                    return Err(ParseError("--family-pool must be ≥ 1".into()));
                }
                config.family_pool = Some(f);
            }
            "--calibrate" => config.calibrate = true,
            "--time-box" => {
                let v = value(it, "--time-box")?;
                config.time_box =
                    Some(v.parse::<u64>().map_err(|_| {
                        ParseError(format!("--time-box must be seconds, got '{v}'"))
                    })?);
            }
            flag if flag.starts_with('-') => {
                return Err(ParseError(format!("unknown flag '{flag}'")))
            }
            name => names.push(name.to_string()),
        }
    }
    if all {
        if !names.is_empty() {
            return Err(ParseError(
                "pass either --all or experiment names, not both".into(),
            ));
        }
        names = experiments::registry()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
    } else if names.is_empty() {
        return Err(ParseError(
            "nothing to run: pass experiment names or --all".into(),
        ));
    }
    for name in &names {
        if experiments::find(name).is_none() {
            return Err(ParseError(format!(
                "unknown experiment '{name}' (see `wakeup list`)"
            )));
        }
    }
    Ok(Command::Run { names, config })
}

/// Render the registry listing.
pub fn render_list() -> String {
    let mut table = wakeup_analysis::Table::new(["name", "id", "grid", "full budget", "claim"]);
    let mut total = 0u64;
    for e in experiments::registry() {
        total += e.full_budget_secs;
        table.push_row([
            e.name.to_string(),
            e.id.to_string(),
            format!("{:?}", e.grid).to_lowercase(),
            format!("{}s", e.full_budget_secs),
            e.claim.to_string(),
        ]);
    }
    format!(
        "{}\nfull-scale budget of the whole registry: ~{total}s \
         (single core; quick scale runs in seconds per experiment)\n",
        table.to_markdown()
    )
}

/// Schedule a selection against a `--time-box`: at full scale the selection
/// is reordered **budget-ascending** (ties keep selection order) and
/// experiments are admitted greedily while the cumulative declared
/// full-scale budget still fits the box — the driver stops *before* the
/// overflowing entry rather than starting work it cannot finish. Returns
/// the admitted names in execution order plus the note to print (schedule
/// summary, deferred remainder, or the quick-scale caveat — quick sweeps
/// finish in seconds and are not budgeted, so the selection passes through
/// untouched).
pub fn time_box_plan(names: &[String], config: &Config) -> (Vec<String>, Option<String>) {
    let Some(box_secs) = config.time_box else {
        return (names.to_vec(), None);
    };
    if config.scale != Scale::Full {
        return (
            names.to_vec(),
            Some(format!(
                "wakeup: --time-box {box_secs}s noted, but budgets are declared for \
                 --scale full; quick sweeps finish in seconds"
            )),
        );
    }
    let mut by_budget: Vec<_> = names.iter().filter_map(|n| experiments::find(n)).collect();
    by_budget.sort_by_key(|e| e.full_budget_secs);
    let mut spent = 0u64;
    let mut admitted: Vec<String> = Vec::new();
    let mut deferred: Vec<String> = Vec::new();
    for e in by_budget {
        if spent + e.full_budget_secs <= box_secs {
            spent += e.full_budget_secs;
            admitted.push(e.name.to_string());
        } else {
            deferred.push(format!("{} {}s", e.name, e.full_budget_secs));
        }
    }
    let note = if deferred.is_empty() {
        format!(
            "wakeup: --time-box {box_secs}s: all {} experiment(s) fit (~{spent}s), \
             running budget-ascending",
            admitted.len()
        )
    } else {
        format!(
            "wakeup: --time-box {box_secs}s: running {} of {} experiment(s) \
             (~{spent}s projected), deferring over-box: {}",
            admitted.len(),
            admitted.len() + deferred.len(),
            deferred.join(", ")
        )
    };
    (admitted, Some(note))
}

/// Open the per-experiment trace + exec sinks and build the [`TraceSpec`]
/// for one traced experiment. Returns the spec plus the shared sink handles
/// so the caller can flush them once the run finishes (the spec's clones
/// are dropped inside the runner).
#[allow(clippy::type_complexity)]
fn open_trace(
    name: &str,
    config: &Config,
) -> std::io::Result<(
    TraceSpec,
    Arc<Mutex<dyn Write + Send>>,
    Arc<Mutex<dyn Write + Send>>,
)> {
    let dir = config
        .trace_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("traces"));
    std::fs::create_dir_all(&dir)?;
    let trace_path = dir.join(format!("{name}.trace.jsonl"));
    let exec_path = dir.join(format!("{name}.exec.jsonl"));
    eprintln!(
        "wakeup: tracing {name} -> {} (+ {})",
        trace_path.display(),
        exec_path.display()
    );
    let trace_sink: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::BufWriter::new(
        std::fs::File::create(&trace_path)?,
    )));
    let exec_sink: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(std::io::BufWriter::new(
        std::fs::File::create(&exec_path)?,
    )));
    let filter = TraceFilter::all().sample_every(config.trace_sample.max(1));
    let spec =
        TraceSpec::new(filter, Arc::clone(&trace_sink)).with_exec_sink(Arc::clone(&exec_sink));
    Ok((spec, trace_sink, exec_sink))
}

/// Run the named experiments under `config`. Returns the number of failed
/// checks across all of them.
pub fn run_many(names: &[String], config: &Config) -> std::io::Result<u64> {
    let mut failures = 0u64;
    for name in names {
        let exp = experiments::find(name).expect("validated by parse");
        let writer: Box<dyn Write> = match &config.out_dir {
            None => Box::new(std::io::stdout().lock()),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{name}.{}", config.out.extension()));
                eprintln!("wakeup: running {name} -> {}", path.display());
                Box::new(std::io::BufWriter::new(std::fs::File::create(path)?))
            }
        };
        let mut sink = config.out.sink(writer);
        let (trace, sinks) = if config.trace {
            let (spec, t, e) = open_trace(name, config)?;
            (Some(spec), Some((t, e)))
        } else {
            (None, None)
        };
        failures += run_experiment_with(
            &exp,
            config.scale,
            config.seed,
            config.threads,
            trace,
            Knobs {
                family_pool: config.family_pool,
                calibrate: config.calibrate,
            },
            sink.as_mut(),
        );
        if let Some((t, e)) = sinks {
            t.lock().expect("trace sink poisoned").flush()?;
            e.lock().expect("exec sink poisoned").flush()?;
        }
    }
    Ok(failures)
}

/// The `wakeup` binary's entry point; returns the process exit code.
pub fn main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Err(ParseError(msg)) => {
            eprintln!("wakeup: {msg}");
            2
        }
        Ok(Command::Help) => {
            print!("{USAGE}");
            0
        }
        Ok(Command::List) => {
            print!("{}", render_list());
            0
        }
        Ok(Command::Run { names, config }) => {
            let (names, note) = time_box_plan(&names, &config);
            if let Some(note) = note {
                eprintln!("{note}");
            }
            match run_many(&names, &config) {
                Err(e) => {
                    eprintln!("wakeup: i/o error: {e}");
                    2
                }
                Ok(0) => 0,
                Ok(failures) => {
                    eprintln!("wakeup: {failures} check(s) failed");
                    1
                }
            }
        }
        Ok(Command::Lint { args }) => wakeup_lint::cli::run(&args),
        Ok(Command::Report { path, out }) => {
            let mut sink = out.sink(Box::new(std::io::stdout().lock()));
            match crate::report::report_file(&path, sink.as_mut()) {
                Err(e) => {
                    eprintln!("wakeup: report error: {e}");
                    2
                }
                Ok(()) => 0,
            }
        }
        Ok(Command::Diff {
            dir_a,
            dir_b,
            threshold,
        }) => {
            let mut out = std::io::stdout().lock();
            match crate::diff::diff_dirs(&dir_a, &dir_b, threshold, &mut out) {
                Err(e) => {
                    eprintln!("wakeup: diff error: {e}");
                    2
                }
                Ok(report) if report.regressions == 0 => 0,
                Ok(report) => {
                    eprintln!("wakeup: {} regression(s) found", report.regressions);
                    1
                }
            }
        }
    }
}

/// Entry point of the historical `exp_*` shim binaries: run one registry
/// entry with pure environment configuration and pretty output on stdout —
/// exactly the behavior the standalone binaries had.
pub fn shim(name: &str) -> ! {
    let config = Config::from_env();
    let code = match run_many(&[name.to_string()], &config) {
        Ok(0) => 0,
        Ok(_) => 1,
        Err(e) => {
            eprintln!("{name}: i/o error: {e}");
            2
        }
    };
    std::process::exit(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        assert!(matches!(parse(&argv("list")), Ok(Command::List)));
        assert!(matches!(parse(&argv("--help")), Ok(Command::Help)));
        assert!(matches!(parse(&[]), Ok(Command::Help)));
        let Ok(Command::Run { names, config }) = parse(&argv(
            "run exp_scenario_a exp_certify --scale full --threads 4 --seed 7 --out json --out-dir /tmp/x",
        )) else {
            panic!("run did not parse");
        };
        assert_eq!(names, vec!["exp_scenario_a", "exp_certify"]);
        assert_eq!(config.scale, Scale::Full);
        assert_eq!(config.threads, Some(4));
        assert_eq!(config.seed, 7);
        assert_eq!(config.out, OutFormat::Json);
        assert_eq!(
            config.out_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
    }

    #[test]
    fn parse_lint_passes_arguments_through_verbatim() {
        let Ok(Command::Lint { args }) =
            parse(&argv("lint --out json --baseline ci/lint-baseline.jsonl"))
        else {
            panic!("lint did not parse");
        };
        assert_eq!(args, argv("--out json --baseline ci/lint-baseline.jsonl"));
        let Ok(Command::Lint { args }) = parse(&argv("lint")) else {
            panic!("bare lint did not parse");
        };
        assert!(args.is_empty());
    }

    #[test]
    fn parse_all_expands_to_the_registry() {
        let Ok(Command::Run { names, .. }) = parse(&argv("run --all")) else {
            panic!("--all did not parse");
        };
        assert_eq!(names.len(), 17);
        assert!(names.contains(&"exp_full_resolution".to_string()));
        assert!(names.contains(&"exp_mega".to_string()));
        assert!(names.contains(&"exp_noise".to_string()));
        assert!(names.contains(&"exp_churn".to_string()));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run --all exp_certify")).is_err());
        assert!(parse(&argv("run exp_nope")).is_err());
        assert!(parse(&argv("run exp_certify --scale big")).is_err());
        assert!(parse(&argv("run exp_certify --out yaml")).is_err());
        assert!(parse(&argv("run exp_certify --threads many")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("list extra")).is_err());
    }

    #[test]
    fn parse_trace_grammar() {
        // run without trace flags: tracing off.
        let Ok(Command::Run { config, .. }) = parse(&argv("run exp_certify")) else {
            panic!("run did not parse");
        };
        assert!(!config.trace);
        assert_eq!(config.trace_sample, 1);
        // --trace on run.
        let Ok(Command::Run { config, .. }) = parse(&argv("run exp_certify --trace")) else {
            panic!("run --trace did not parse");
        };
        assert!(config.trace);
        // The trace subcommand defaults tracing on and shares the grammar.
        let Ok(Command::Run { names, config }) = parse(&argv(
            "trace exp_scenario_a --scale quick --trace-out /tmp/t --trace-sample 8",
        )) else {
            panic!("trace did not parse");
        };
        assert_eq!(names, vec!["exp_scenario_a"]);
        assert!(config.trace);
        assert_eq!(
            config.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t"))
        );
        assert_eq!(config.trace_sample, 8);
        // --trace-out / --trace-sample imply --trace.
        let Ok(Command::Run { config, .. }) = parse(&argv("run exp_certify --trace-sample 4"))
        else {
            panic!("run --trace-sample did not parse");
        };
        assert!(config.trace);
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace exp_nope")).is_err());
        assert!(parse(&argv("run exp_certify --trace-sample 0")).is_err());
        assert!(parse(&argv("run exp_certify --trace-sample lots")).is_err());
    }

    #[test]
    fn parse_family_pool_and_calibrate() {
        // Defaults: no pool, no calibration (env is not set under test).
        let Ok(Command::Run { config, .. }) = parse(&argv("run exp_scenario_a")) else {
            panic!("run did not parse");
        };
        assert_eq!(config.family_pool, None);
        assert!(!config.calibrate);
        let Ok(Command::Run { config, .. }) = parse(&argv(
            "run exp_scenario_a exp_scenario_b --family-pool 8 --calibrate",
        )) else {
            panic!("run with knobs did not parse");
        };
        assert_eq!(config.family_pool, Some(8));
        assert!(config.calibrate);
        assert!(parse(&argv("run exp_scenario_a --family-pool 0")).is_err());
        assert!(parse(&argv("run exp_scenario_a --family-pool lots")).is_err());
        assert!(parse(&argv("run exp_scenario_a --family-pool")).is_err());
    }

    #[test]
    fn parse_report_grammar() {
        let Ok(Command::Report { path, out }) = parse(&argv("report traces/x.trace.jsonl")) else {
            panic!("report did not parse");
        };
        assert_eq!(path, PathBuf::from("traces/x.trace.jsonl"));
        assert_eq!(out, OutFormat::Table);
        let Ok(Command::Report { out, .. }) = parse(&argv("report t.jsonl --out json")) else {
            panic!("report --out did not parse");
        };
        assert_eq!(out, OutFormat::Json);
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report a b")).is_err());
        assert!(parse(&argv("report t.jsonl --out yaml")).is_err());
        assert!(parse(&argv("report t.jsonl --frob")).is_err());
    }

    #[test]
    fn parse_diff_grammar() {
        let Ok(Command::Diff {
            dir_a,
            dir_b,
            threshold,
        }) = parse(&argv("diff golden fresh --threshold 0.1"))
        else {
            panic!("diff did not parse");
        };
        assert_eq!(dir_a, PathBuf::from("golden"));
        assert_eq!(dir_b, PathBuf::from("fresh"));
        assert!((threshold - 0.1).abs() < 1e-12);
        // Default threshold.
        let Ok(Command::Diff { threshold, .. }) = parse(&argv("diff a b")) else {
            panic!("diff did not parse");
        };
        assert!((threshold - 0.05).abs() < 1e-12);
        assert!(parse(&argv("diff onlyone")).is_err());
        assert!(parse(&argv("diff a b c")).is_err());
        assert!(parse(&argv("diff a b --threshold nope")).is_err());
        assert!(parse(&argv("diff a b --threshold -1")).is_err());
    }

    #[test]
    fn time_box_schedules_budget_ascending_and_stops_before_overflow() {
        let names: Vec<String> = experiments::registry()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        let mut budgets: Vec<u64> = experiments::registry()
            .iter()
            .map(|e| e.full_budget_secs)
            .collect();
        budgets.sort_unstable();
        let total: u64 = budgets.iter().sum();
        let mut config = Config::from_env();
        config.scale = Scale::Full;

        // A box that fits everything: all admitted, reordered budget-ascending.
        config.time_box = Some(total);
        let (admitted, note) = time_box_plan(&names, &config);
        assert_eq!(admitted.len(), names.len());
        let admitted_budgets: Vec<u64> = admitted
            .iter()
            .map(|n| experiments::find(n).unwrap().full_budget_secs)
            .collect();
        assert!(
            admitted_budgets.windows(2).all(|w| w[0] <= w[1]),
            "not budget-ascending: {admitted_budgets:?}"
        );
        assert!(note.unwrap().contains("all"), "fit note missing");

        // One second short of the total: the most expensive entry (at
        // least) is deferred, everything admitted still fits the box.
        config.time_box = Some(total - 1);
        let (admitted, note) = time_box_plan(&names, &config);
        assert!(admitted.len() < names.len());
        let spent: u64 = admitted
            .iter()
            .map(|n| experiments::find(n).unwrap().full_budget_secs)
            .sum();
        assert!(spent < total, "admitted {spent}s overflows the box");
        let note = note.unwrap();
        assert!(note.contains("deferring"), "{note}");

        // A box smaller than the cheapest experiment admits nothing.
        config.time_box = Some(budgets[0] - 1);
        let (admitted, _) = time_box_plan(&names, &config);
        assert!(admitted.is_empty());

        // No box: pass-through in selection order, no note.
        config.time_box = None;
        let (admitted, note) = time_box_plan(&names, &config);
        assert_eq!(admitted, names);
        assert!(note.is_none());

        // Quick scale: budgets do not apply — pass-through plus a caveat.
        config.time_box = Some(1);
        config.scale = Scale::Quick;
        let (admitted, note) = time_box_plan(&names, &config);
        assert_eq!(admitted, names);
        assert!(note.unwrap().contains("quick"));
    }

    #[test]
    fn every_experiment_declares_a_budget() {
        for e in experiments::registry() {
            assert!(
                e.full_budget_secs > 0,
                "{} has no full-scale budget",
                e.name
            );
        }
        // The listing prints them.
        assert!(render_list().contains("full budget"));
        assert!(render_list().contains("600s"), "crossover budget missing");
    }

    #[test]
    fn list_mentions_every_experiment() {
        let listing = render_list();
        for e in crate::experiments::registry() {
            assert!(listing.contains(e.name), "{} missing", e.name);
            assert!(listing.contains(e.id), "{} missing", e.id);
        }
    }
}
