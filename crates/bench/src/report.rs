//! `wakeup report` — fold a trace artifact back into tables.
//!
//! The input is the JSONL stream a traced run wrote (`<exp>.trace.jsonl`:
//! one flat object per event, `{"run":3,"ev":"collision",…}`); the output
//! goes through the same [`Sink`] machinery as the experiments, so one
//! folding pass renders as a pretty table set, CSV sections or JSON Lines.
//!
//! Three views are derived:
//!
//! * **slot classes** — how the covered slots partition into silence /
//!   success / collision, plus a collision-size (contention) histogram;
//! * **mode-switch timeline** — when the adaptive engine crossed
//!   sparse↔dense, per run (capped at [`MODE_SWITCH_ROWS`] rendered rows);
//! * **worker utilization** — per-ensemble and per-worker execution
//!   records read from the `.exec.jsonl` sidecar next to the trace, when
//!   present (the non-deterministic tier: wall-clock phases, steals,
//!   queue high-waters).

use crate::sink::{ExperimentHead, Sink};
use crate::Scale;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use wakeup_analysis::serial::{parse_json_object, Record, Value};
use wakeup_analysis::Table;

/// Maximum mode-switch timeline rows rendered (the counts are always
/// complete; only the row listing is capped).
pub const MODE_SWITCH_ROWS: usize = 64;

/// Aggregates folded from one trace stream.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Trace lines folded.
    pub lines: u64,
    /// Total runs in the artifact — one per `run_end` event (run tags
    /// restart at 0 for every ensemble, so they do not count runs).
    pub runs: u64,
    /// Distinct run tags seen (`max(run) + 1`): the per-ensemble run
    /// count when every ensemble ran the same number of runs.
    pub run_tags: u64,
    /// Events per kind (`ev` value → count), alphabetical.
    pub kind_counts: BTreeMap<String, u64>,
    /// Slots spent silent (summed `Silence.slots`).
    pub silent_slots: u64,
    /// Slots won by exactly one transmitter.
    pub success_slots: u64,
    /// Slots lost to collisions.
    pub collision_slots: u64,
    /// Collision-size histogram: contenders → collision slots.
    pub contention: BTreeMap<u64, u64>,
    /// Mode-switch timeline entries `(run, slot, dense)` in stream order.
    pub mode_switches: Vec<(u64, u64, bool)>,
    /// Hint re-query events and the hints they re-queried.
    pub requeries: u64,
    /// Total hints re-queried across those events.
    pub queries: u64,
    /// Burst windows opened.
    pub bursts_opened: u64,
    /// Class-engine units born by splits.
    pub classes_born: u64,
    /// Largest sparse-heap watermark seen.
    pub max_heap: u64,
    /// Largest live-unit watermark seen.
    pub max_units: u64,
    /// Slots covered, summed over `run_end` events.
    pub total_slots: u64,
    /// Runs whose `run_end` carried a `first_success`.
    pub solved_runs: u64,
}

fn get_u64(rec: &Record, name: &str) -> Option<u64> {
    match rec.get(name) {
        Some(Value::U64(v)) => Some(*v),
        _ => None,
    }
}

impl TraceReport {
    /// Fold one parsed trace line.
    fn fold(&mut self, rec: &Record) -> Result<(), String> {
        let Some(Value::Str(ev)) = rec.get("ev") else {
            return Err("line has no \"ev\" field".into());
        };
        self.lines += 1;
        if let Some(run) = get_u64(rec, "run") {
            self.run_tags = self.run_tags.max(run + 1);
        }
        *self.kind_counts.entry(ev.clone()).or_insert(0) += 1;
        match ev.as_str() {
            "silence" => self.silent_slots += get_u64(rec, "slots").unwrap_or(0),
            "success" => self.success_slots += 1,
            "collision" => {
                self.collision_slots += 1;
                let c = get_u64(rec, "contenders").unwrap_or(0);
                *self.contention.entry(c).or_insert(0) += 1;
            }
            "mode_switch" => {
                let dense = matches!(rec.get("dense"), Some(Value::Bool(true)));
                self.mode_switches.push((
                    get_u64(rec, "run").unwrap_or(0),
                    get_u64(rec, "slot").unwrap_or(0),
                    dense,
                ));
            }
            "hint_requery" => {
                self.requeries += 1;
                self.queries += get_u64(rec, "queries").unwrap_or(0);
            }
            "burst_open" => self.bursts_opened += 1,
            "class_split" => self.classes_born += get_u64(rec, "born").unwrap_or(0),
            "watermark" => {
                self.max_heap = self.max_heap.max(get_u64(rec, "heap").unwrap_or(0));
                self.max_units = self.max_units.max(get_u64(rec, "units").unwrap_or(0));
            }
            "run_end" => {
                self.runs += 1;
                self.total_slots += get_u64(rec, "slots").unwrap_or(0);
                if matches!(rec.get("first_success"), Some(Value::U64(_))) {
                    self.solved_runs += 1;
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// Fold a trace JSONL stream into a [`TraceReport`]. Blank lines are
/// skipped; a malformed line fails the whole report (a trace artifact is
/// machine-written — damage should be loud, not averaged over).
pub fn fold_trace(reader: impl BufRead) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_json_object(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        report
            .fold(&rec)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(report)
}

/// The `.exec.jsonl` sidecar path next to a `.trace.jsonl` artifact.
pub fn exec_sidecar_path(trace: &Path) -> PathBuf {
    let name = trace.file_name().and_then(|n| n.to_str()).unwrap_or("");
    match name.strip_suffix(".trace.jsonl") {
        Some(stem) => trace.with_file_name(format!("{stem}.exec.jsonl")),
        None => trace.with_file_name(format!("{name}.exec.jsonl")),
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Render a folded report through `sink`: summary row, slot-class and
/// contention histograms, the mode-switch timeline, engine counters, and —
/// when `exec_lines` is given — the worker-utilization records.
pub fn render_report(
    report: &TraceReport,
    source: &str,
    exec_lines: Option<&[Record]>,
    sink: &mut dyn Sink,
) {
    let title = format!("TRACE — report of {source}");
    let head = ExperimentHead {
        name: "trace_report",
        id: "TRACE",
        title: &title,
        claim: "folded from a structured trace artifact",
    };
    sink.begin(&head, Scale::Quick, 0);

    sink.note(&format!(
        "{} events over {} run(s); {} slots covered, {} solved run(s)",
        report.lines, report.runs, report.total_slots, report.solved_runs
    ));
    sink.row(
        "summary",
        &Record::new()
            .with("events", report.lines)
            .with("runs", report.runs)
            .with("run_tags", report.run_tags)
            .with("solved_runs", report.solved_runs)
            .with("slots", report.total_slots)
            .with("silent_slots", report.silent_slots)
            .with("success_slots", report.success_slots)
            .with("collision_slots", report.collision_slots)
            .with("requeries", report.requeries)
            .with("queries", report.queries)
            .with("bursts_opened", report.bursts_opened)
            .with("classes_born", report.classes_born)
            .with("max_heap", report.max_heap)
            .with("max_units", report.max_units),
    );

    // Per-event-kind counts.
    sink.note("\nevents by kind:");
    let mut kinds = Table::new(["event", "count"]);
    for (ev, count) in &report.kind_counts {
        kinds.push_row([ev.clone(), count.to_string()]);
        sink.row(
            "kinds",
            &Record::new().with("ev", ev.as_str()).with("count", *count),
        );
    }
    sink.table("kinds", &kinds);

    // Slot classes: how covered slots partition by channel outcome.
    sink.note("\nslot classes (channel outcome over covered slots):");
    let covered = report.total_slots;
    let mut classes = Table::new(["class", "slots", "share"]);
    for (class, slots) in [
        ("silence", report.silent_slots),
        ("success", report.success_slots),
        ("collision", report.collision_slots),
    ] {
        classes.push_row([class.into(), slots.to_string(), pct(slots, covered)]);
        sink.row(
            "slot_class",
            &Record::new().with("class", class).with("slots", slots),
        );
    }
    sink.table("slot classes", &classes);

    // Contention histogram (collision sizes).
    if !report.contention.is_empty() {
        sink.note("\ncontention histogram (collision sizes):");
        let mut hist = Table::new(["contenders", "collisions"]);
        for (&c, &count) in &report.contention {
            hist.push_row([c.to_string(), count.to_string()]);
            sink.row(
                "contention",
                &Record::new()
                    .with("contenders", c)
                    .with("collisions", count),
            );
        }
        sink.table("contention histogram", &hist);
    }

    // Mode-switch timeline (rows capped; counts always complete).
    if !report.mode_switches.is_empty() {
        sink.note("\nmode-switch timeline (per-ensemble run tags):");
        let mut timeline = Table::new(["run", "slot", "to"]);
        for &(run, slot, dense) in report.mode_switches.iter().take(MODE_SWITCH_ROWS) {
            let to = if dense { "dense" } else { "sparse" };
            timeline.push_row([run.to_string(), slot.to_string(), to.to_string()]);
            sink.row(
                "mode_switch",
                &Record::new()
                    .with("run", run)
                    .with("slot", slot)
                    .with("dense", dense),
            );
        }
        sink.table("mode-switch timeline", &timeline);
        if report.mode_switches.len() > MODE_SWITCH_ROWS {
            sink.note(&format!(
                "(timeline truncated: {} of {} switches shown)",
                MODE_SWITCH_ROWS,
                report.mode_switches.len()
            ));
        }
    }

    // Worker utilization from the exec sidecar (wall-clock tier).
    if let Some(lines) = exec_lines {
        let mut ensembles = Table::new([
            "ensemble",
            "label",
            "runs",
            "threads",
            "elapsed",
            "construction",
            "simulation",
            "reduction",
        ]);
        let mut workers = Table::new([
            "ensemble",
            "worker",
            "runs",
            "steals",
            "fail-scans",
            "depth hw",
        ]);
        let us = |rec: &Record, f: &str| {
            format!("{:.1}ms", get_u64(rec, f).unwrap_or(0) as f64 / 1000.0)
        };
        let cell = |rec: &Record, f: &str| get_u64(rec, f).unwrap_or(0).to_string();
        let (mut n_ens, mut n_wrk) = (0usize, 0usize);
        for rec in lines {
            match rec.get("record") {
                Some(Value::Str(kind)) if kind == "ensemble" => {
                    n_ens += 1;
                    let label = match rec.get("label") {
                        Some(Value::Str(l)) if !l.is_empty() => l.clone(),
                        _ => "-".into(),
                    };
                    ensembles.push_row([
                        cell(rec, "ensemble"),
                        label,
                        cell(rec, "runs"),
                        cell(rec, "threads"),
                        us(rec, "elapsed_us"),
                        us(rec, "construction_us"),
                        us(rec, "simulation_us"),
                        us(rec, "reduction_us"),
                    ]);
                    sink.row("ensemble_exec", rec);
                }
                Some(Value::Str(kind)) if kind == "worker" => {
                    n_wrk += 1;
                    workers.push_row([
                        cell(rec, "ensemble"),
                        cell(rec, "worker"),
                        cell(rec, "runs"),
                        cell(rec, "steals"),
                        cell(rec, "fail_scans"),
                        cell(rec, "queue_depth_hw"),
                    ]);
                    sink.row("worker", rec);
                }
                _ => {}
            }
        }
        if n_ens > 0 {
            sink.note("\nensemble execution (wall-clock tier — not deterministic):");
            sink.table("ensembles", &ensembles);
        }
        if n_wrk > 0 {
            sink.note("\nworker utilization:");
            sink.table("worker utilization", &workers);
        }
    } else {
        sink.note("(no .exec.jsonl sidecar found — worker utilization omitted)");
    }

    sink.finish(0);
}

/// Run the whole `wakeup report` pipeline: read and fold the trace at
/// `path`, read the exec sidecar when present, render through `sink`.
/// Returns an error string suitable for the driver's stderr.
pub fn report_file(path: &Path, sink: &mut dyn Sink) -> Result<(), String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let report = fold_trace(std::io::BufReader::new(file))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let exec_path = exec_sidecar_path(path);
    let exec_lines: Option<Vec<Record>> = match std::fs::read_to_string(&exec_path) {
        Err(_) => None,
        Ok(text) => {
            let mut recs = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                recs.push(
                    parse_json_object(line)
                        .map_err(|e| format!("{} line {}: {e}", exec_path.display(), i + 1))?,
                );
            }
            Some(recs)
        }
    };
    render_report(
        &report,
        &path.display().to_string(),
        exec_lines.as_deref(),
        sink,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> &'static str {
        "\
{\"run\":0,\"ev\":\"wake\",\"slot\":0,\"stations\":3}\n\
{\"run\":0,\"ev\":\"silence\",\"slot\":0,\"slots\":4}\n\
{\"run\":0,\"ev\":\"collision\",\"slot\":4,\"contenders\":3}\n\
{\"run\":0,\"ev\":\"mode_switch\",\"slot\":5,\"dense\":true}\n\
{\"run\":0,\"ev\":\"burst_open\",\"slot\":5,\"window\":8}\n\
{\"run\":0,\"ev\":\"collision\",\"slot\":5,\"contenders\":2}\n\
{\"run\":0,\"ev\":\"success\",\"slot\":6,\"winner\":17}\n\
{\"run\":0,\"ev\":\"run_end\",\"slots\":7,\"first_success\":6}\n\
{\"run\":1,\"ev\":\"wake\",\"slot\":2,\"stations\":1}\n\
{\"run\":1,\"ev\":\"hint_requery\",\"slot\":3,\"queries\":1}\n\
{\"run\":1,\"ev\":\"watermark\",\"slot\":2,\"heap\":5,\"units\":9}\n\
{\"run\":1,\"ev\":\"silence\",\"slot\":2,\"slots\":10}\n\
{\"run\":1,\"ev\":\"run_end\",\"slots\":12,\"first_success\":null}\n"
    }

    #[test]
    fn fold_trace_aggregates_the_stream() {
        let r = fold_trace(Cursor::new(sample())).unwrap();
        assert_eq!(r.lines, 13);
        assert_eq!(r.runs, 2);
        assert_eq!(r.run_tags, 2);
        assert_eq!(r.total_slots, 19);
        assert_eq!(r.solved_runs, 1);
        assert_eq!(r.silent_slots, 14);
        assert_eq!(r.success_slots, 1);
        assert_eq!(r.collision_slots, 2);
        assert_eq!(r.contention.get(&3), Some(&1));
        assert_eq!(r.contention.get(&2), Some(&1));
        assert_eq!(r.mode_switches, vec![(0, 5, true)]);
        assert_eq!(r.requeries, 1);
        assert_eq!(r.queries, 1);
        assert_eq!(r.bursts_opened, 1);
        assert_eq!(r.max_heap, 5);
        assert_eq!(r.max_units, 9);
        assert_eq!(r.kind_counts.get("collision"), Some(&2));
        assert_eq!(r.kind_counts.get("run_end"), Some(&2));
    }

    #[test]
    fn fold_trace_rejects_damage() {
        assert!(fold_trace(Cursor::new("not json\n")).is_err());
        assert!(fold_trace(Cursor::new("{\"slot\":4}\n")).is_err());
        // Blank lines are fine.
        let r = fold_trace(Cursor::new("\n\n")).unwrap();
        assert_eq!(r.lines, 0);
    }

    #[test]
    fn exec_sidecar_path_derivation() {
        assert_eq!(
            exec_sidecar_path(Path::new("traces/exp_a.trace.jsonl")),
            PathBuf::from("traces/exp_a.exec.jsonl")
        );
        assert_eq!(
            exec_sidecar_path(Path::new("weird.jsonl")),
            PathBuf::from("weird.jsonl.exec.jsonl")
        );
    }
}
