//! # wakeup-bench — experiment regenerators and micro-benchmarks
//!
//! One binary per experiment of `DESIGN.md` §3 / `EXPERIMENTS.md`:
//!
//! | binary | experiment |
//! |--------|------------|
//! | `exp_lower_bound` | EXP-LB — Theorem 2.1 swap-chain adversary |
//! | `exp_scenario_a`  | EXP-A — `wakeup_with_s` scaling |
//! | `exp_scenario_b`  | EXP-B — `wakeup_with_k` scaling |
//! | `exp_scenario_c`  | EXP-C — `wakeup(n)` scaling |
//! | `exp_vs_chlebus`  | EXP-CHL — Scenario C vs locally-synchronized baseline |
//! | `exp_randomized`  | EXP-RAND — RPD / RPD-k / ALOHA / BEB |
//! | `exp_figures`     | EXP-FIG1/2 — matrix walk and column snapshot |
//! | `exp_balance`     | EXP-BAL — §5.2 well-balancedness and isolation |
//! | `exp_selective`   | EXP-SEL — selective-family sizes and verification |
//! | `exp_crossover`   | EXP-CROSS — round-robin vs selective crossover |
//! | `exp_summary`     | TAB-SUMMARY — the three-scenario bound table |
//! | `exp_ablations`   | EXP-ABL — CD feedback, energy, ρ-sweep, spoiler |
//! | `exp_full_resolution` | EXP-KG — Komlós–Greenberg full conflict resolution |
//! | `exp_certify`     | EXP-CERT — bounded waking-matrix certification |
//!
//! All binaries accept the environment variables:
//!
//! * `WAKEUP_SCALE` — `quick` (default, seconds) or `full` (minutes,
//!   larger sweeps; EXP-A/B and EXP-CROSS reach n = 2^20);
//! * `WAKEUP_THREADS` — worker-pool size override for the work-stealing
//!   runner (default: available parallelism);
//! * `WAKEUP_PROGRESS` — seconds between live `runs/s | steals` progress
//!   lines on stderr (unset: silent).
//!
//! Seeds are printed so every table is exactly reproducible, and ensemble
//! aggregation folds in seed order, so tables are identical at any thread
//! count.
//!
//! Criterion micro-benches live in `benches/` (`kernels` — simulation
//! hot paths; `runner` — chunked vs work-stealing ensemble scheduling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mac_sim::pattern::IdChoice;
use mac_sim::{StationId, WakePattern};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use wakeup_analysis::ensemble::{EnsembleSpec, EnsembleSummary, WorkStats};

/// Experiment scale, from `WAKEUP_SCALE` (`quick` | `full`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sweeps (CI-friendly). The default.
    Quick,
    /// Minutes-scale sweeps matching EXPERIMENTS.md's recorded tables.
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("WAKEUP_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The `n` sweep for scaling experiments.
    pub fn n_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![256, 1024, 4096],
            Scale::Full => vec![256, 1024, 4096, 16384, 65536],
        }
    }

    /// The `k` sweep (powers of two up to `n`).
    pub fn k_sweep(self, n: u32) -> Vec<u32> {
        let cap = match self {
            Scale::Quick => 64.min(n),
            Scale::Full => n,
        };
        let mut ks = vec![1u32];
        let mut k = 2u32;
        while k <= cap {
            ks.push(k);
            k = k.saturating_mul(2);
        }
        ks
    }

    /// Runs per configuration.
    pub fn runs(self) -> u64 {
        match self {
            Scale::Quick => 10,
            Scale::Full => 50,
        }
    }

    /// The `n` sweep for experiments whose protocols ride the sparse engine
    /// end-to-end (EXP-A/B, the crossover): per-run cost is
    /// `O(events·log k)`, independent of `n`, so the full sweep reaches
    /// `n = 2^20`.
    pub fn n_sweep_sparse(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![256, 1024, 4096],
            Scale::Full => vec![256, 1024, 4096, 16384, 65536, 1 << 20],
        }
    }

    /// The `k` sweep paired with [`n_sweep_sparse`](Self::n_sweep_sparse):
    /// powers of two, capped (4096 at full scale) because per-run cost and
    /// memory grow with `k` (each awake station is instantiated), not `n`.
    pub fn k_sweep_sparse(self, n: u32) -> Vec<u32> {
        let cap = match self {
            Scale::Quick => 64.min(n),
            Scale::Full => 4096.min(n),
        };
        let mut ks = vec![1u32];
        let mut k = 2u32;
        while k <= cap {
            ks.push(k);
            k = k.saturating_mul(2);
        }
        ks
    }
}

/// `WAKEUP_THREADS` override for the runner's worker count, if set.
fn env_threads() -> Option<usize> {
    std::env::var("WAKEUP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// `WAKEUP_PROGRESS` (seconds between updates, bare value = 5) as a
/// [`wakeup_runner::Progress`] spec labelled `label`, if set.
fn env_progress(label: &str) -> Option<wakeup_runner::Progress> {
    std::env::var("WAKEUP_PROGRESS").ok().map(|v| {
        let secs = v.parse::<u64>().unwrap_or(5).max(1);
        wakeup_runner::Progress::new(Duration::from_secs(secs), label)
    })
}

/// An [`EnsembleSpec`] wired to the environment: `WAKEUP_THREADS` overrides
/// the worker count and `WAKEUP_PROGRESS` (seconds, bare = 5) enables live
/// runs/s reporting labelled `label`.
pub fn ensemble_spec(n: u32, runs: u64, base_seed: u64, label: &str) -> EnsembleSpec {
    let mut spec = EnsembleSpec::new(n, runs).with_base_seed(base_seed);
    if let Some(threads) = env_threads() {
        spec = spec.with_threads(threads);
    }
    if let Some(p) = env_progress(label) {
        spec = spec.with_progress(p.every, p.label);
    }
    spec
}

/// A bare [`wakeup_runner::Runner`] wired to the environment the same way
/// as [`ensemble_spec`] — for experiment kernels that are not simulator
/// ensembles (adversary sweeps, matrix analyses, full-resolution runs).
pub fn runner(label: &str) -> wakeup_runner::Runner {
    let mut r = wakeup_runner::Runner::new();
    if let Some(threads) = env_threads() {
        r = r.with_threads(threads);
    }
    if let Some(p) = env_progress(label) {
        r = r.with_progress(p);
    }
    r
}

/// Per-table accumulator of engine work and runner throughput, printed as a
/// footer line under each experiment table:
///
/// ```text
/// EXP-A work: slots 1234 | polls 56 (0.0454 polls/slot) | … || 500 runs in 1.2s (417 runs/s, 9.1k polls/s)
/// ```
#[derive(Clone, Debug, Default)]
pub struct TableMeter {
    work: WorkStats,
    runs: u64,
    elapsed: Duration,
}

impl TableMeter {
    /// An empty meter.
    pub fn new() -> Self {
        TableMeter::default()
    }

    /// Fold one ensemble's work and execution stats into the table totals.
    pub fn absorb(&mut self, summary: &EnsembleSummary) {
        self.work.merge(&summary.work);
        self.runs += summary.runs;
        self.elapsed += summary.exec.elapsed;
    }

    /// The accumulated engine-work counters.
    pub fn work(&self) -> &WorkStats {
        &self.work
    }

    /// Print the footer line.
    pub fn print(&self, label: &str) {
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{label} work: {} || {} runs in {:.2}s ({:.1} runs/s, {:.0} polls/s)",
            self.work.render(),
            self.runs,
            self.elapsed.as_secs_f64(),
            self.runs as f64 / secs,
            self.work.polls as f64 / secs,
        );
    }
}

/// A random wake pattern: `k` random stations, wake times uniform in a
/// window of `window` slots starting at a random `s` (first waker pinned to
/// `s`).
pub fn random_pattern(n: u32, k: usize, window: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    let s = (seed % 97) * 13; // vary s across runs
    WakePattern::uniform_window(&ids, s, window.max(1), &mut rng).unwrap()
}

/// A simultaneous-burst pattern at slot `s` with `k` random stations.
pub fn burst_pattern(n: u32, k: usize, s: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// The adversarial block pattern for round-robin: the `k` stations owning
/// the *last* turns of the cycle, waking together.
pub fn worst_rr_pattern(n: u32, k: usize, s: u64) -> WakePattern {
    let ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// Shape verdict: the paper's model must rank #1 by R² among all candidate
/// shapes and explain most of the variance. Returns a human-readable line.
pub fn shape_verdict(points: &[(f64, f64, f64)], target: wakeup_analysis::Model) -> String {
    let ranked = wakeup_analysis::fit::rank_models(points);
    let Some(best) = ranked.first() else {
        return "no fit possible (too few points)".into();
    };
    let target_fit = ranked.iter().find(|f| f.model == target);
    match target_fit {
        Some(f) if best.model == target && f.r2 >= 0.85 => format!(
            "SHAPE CONFIRMED: {} ranks #1 of {} candidates (R² = {:.3})",
            target.name(),
            ranked.len(),
            f.r2
        ),
        Some(f) => format!(
            "shape NOT confirmed: {} has R² = {:.3}, best was {} (R² = {:.3})",
            target.name(),
            f.r2,
            best.model.name(),
            best.r2
        ),
        None => "target model not fittable on these points".into(),
    }
}

/// Print a standard experiment banner.
pub fn banner(id: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {paper_claim}");
    println!(
        "scale: {:?} (set WAKEUP_SCALE=full for the big sweep)",
        Scale::from_env()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweeps_are_nontrivial() {
        assert!(Scale::Quick.n_sweep().len() >= 3);
        assert!(Scale::Full.n_sweep().len() > Scale::Quick.n_sweep().len());
        let ks = Scale::Quick.k_sweep(1024);
        assert_eq!(ks[0], 1);
        assert!(ks.contains(&64));
        assert!(ks.iter().all(|&k| k <= 1024));
        // Full scale reaches k = n.
        assert!(Scale::Full.k_sweep(256).contains(&256));
    }

    #[test]
    fn sparse_sweeps_reach_a_million_stations() {
        assert!(Scale::Full.n_sweep_sparse().contains(&(1 << 20)));
        assert_eq!(Scale::Quick.n_sweep_sparse(), Scale::Quick.n_sweep());
        // k stays capped so per-run station instantiation is bounded.
        let ks = Scale::Full.k_sweep_sparse(1 << 20);
        assert_eq!(*ks.last().unwrap(), 4096);
        assert!(Scale::Quick.k_sweep_sparse(1 << 20).contains(&64));
        // Small universes cap at n.
        assert!(Scale::Full.k_sweep_sparse(16).iter().all(|&k| k <= 16));
    }

    #[test]
    fn table_meter_accumulates_and_prints() {
        let mut m = TableMeter::new();
        assert_eq!(m.work().slots, 0);
        m.print("TEST"); // empty meter must not divide by zero
        let spec = EnsembleSpec::new(16, 3);
        let s = wakeup_analysis::run_ensemble_stream(
            &spec,
            |_| Box::new(wakeup_core::prelude::RoundRobin::new(16)),
            |seed| random_pattern(16, 2, 4, seed),
        );
        m.absorb(&s);
        assert_eq!(m.runs, 3);
        assert!(m.work().slots > 0);
    }

    #[test]
    fn random_pattern_is_reproducible_and_valid() {
        let a = random_pattern(128, 8, 32, 7);
        let b = random_pattern(128, 8, 32, 7);
        assert_eq!(a, b);
        assert_eq!(a.k(), 8);
        assert!(a.last_wake() - a.s() < 32);
    }

    #[test]
    fn burst_and_worst_patterns() {
        let b = burst_pattern(64, 4, 10, 1);
        assert!(b.wakes().iter().all(|&(_, t)| t == 10));
        let w = worst_rr_pattern(64, 4, 0);
        assert_eq!(
            w.wakes().iter().map(|&(id, _)| id.0).collect::<Vec<_>>(),
            vec![60, 61, 62, 63]
        );
    }
}
