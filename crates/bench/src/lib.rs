//! # wakeup-bench — experiment regenerators and micro-benchmarks
//!
//! One binary per experiment of `DESIGN.md` §3 / `EXPERIMENTS.md`:
//!
//! | binary | experiment |
//! |--------|------------|
//! | `exp_lower_bound` | EXP-LB — Theorem 2.1 swap-chain adversary |
//! | `exp_scenario_a`  | EXP-A — `wakeup_with_s` scaling |
//! | `exp_scenario_b`  | EXP-B — `wakeup_with_k` scaling |
//! | `exp_scenario_c`  | EXP-C — `wakeup(n)` scaling |
//! | `exp_vs_chlebus`  | EXP-CHL — Scenario C vs locally-synchronized baseline |
//! | `exp_randomized`  | EXP-RAND — RPD / RPD-k / ALOHA / BEB |
//! | `exp_figures`     | EXP-FIG1/2 — matrix walk and column snapshot |
//! | `exp_balance`     | EXP-BAL — §5.2 well-balancedness and isolation |
//! | `exp_selective`   | EXP-SEL — selective-family sizes and verification |
//! | `exp_crossover`   | EXP-CROSS — round-robin vs selective crossover |
//! | `exp_summary`     | TAB-SUMMARY — the three-scenario bound table |
//! | `exp_ablations`   | EXP-ABL — CD feedback, energy, ρ-sweep, spoiler |
//! | `exp_full_resolution` | EXP-KG — Komlós–Greenberg full conflict resolution |
//! | `exp_certify`     | EXP-CERT — bounded waking-matrix certification |
//!
//! All binaries accept the environment variable `WAKEUP_SCALE`:
//! `quick` (default, seconds) or `full` (minutes, larger sweeps). Seeds are
//! printed so every table is exactly reproducible.
//!
//! Criterion micro-benches live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mac_sim::pattern::IdChoice;
use mac_sim::{StationId, WakePattern};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Experiment scale, from `WAKEUP_SCALE` (`quick` | `full`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sweeps (CI-friendly). The default.
    Quick,
    /// Minutes-scale sweeps matching EXPERIMENTS.md's recorded tables.
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("WAKEUP_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The `n` sweep for scaling experiments.
    pub fn n_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![256, 1024, 4096],
            Scale::Full => vec![256, 1024, 4096, 16384, 65536],
        }
    }

    /// The `k` sweep (powers of two up to `n`).
    pub fn k_sweep(self, n: u32) -> Vec<u32> {
        let cap = match self {
            Scale::Quick => 64.min(n),
            Scale::Full => n,
        };
        let mut ks = vec![1u32];
        let mut k = 2u32;
        while k <= cap {
            ks.push(k);
            k = k.saturating_mul(2);
        }
        ks
    }

    /// Runs per configuration.
    pub fn runs(self) -> u64 {
        match self {
            Scale::Quick => 10,
            Scale::Full => 50,
        }
    }
}

/// A random wake pattern: `k` random stations, wake times uniform in a
/// window of `window` slots starting at a random `s` (first waker pinned to
/// `s`).
pub fn random_pattern(n: u32, k: usize, window: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    let s = (seed % 97) * 13; // vary s across runs
    WakePattern::uniform_window(&ids, s, window.max(1), &mut rng).unwrap()
}

/// A simultaneous-burst pattern at slot `s` with `k` random stations.
pub fn burst_pattern(n: u32, k: usize, s: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// The adversarial block pattern for round-robin: the `k` stations owning
/// the *last* turns of the cycle, waking together.
pub fn worst_rr_pattern(n: u32, k: usize, s: u64) -> WakePattern {
    let ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// Shape verdict: the paper's model must rank #1 by R² among all candidate
/// shapes and explain most of the variance. Returns a human-readable line.
pub fn shape_verdict(points: &[(f64, f64, f64)], target: wakeup_analysis::Model) -> String {
    let ranked = wakeup_analysis::fit::rank_models(points);
    let Some(best) = ranked.first() else {
        return "no fit possible (too few points)".into();
    };
    let target_fit = ranked.iter().find(|f| f.model == target);
    match target_fit {
        Some(f) if best.model == target && f.r2 >= 0.85 => format!(
            "SHAPE CONFIRMED: {} ranks #1 of {} candidates (R² = {:.3})",
            target.name(),
            ranked.len(),
            f.r2
        ),
        Some(f) => format!(
            "shape NOT confirmed: {} has R² = {:.3}, best was {} (R² = {:.3})",
            target.name(),
            f.r2,
            best.model.name(),
            best.r2
        ),
        None => "target model not fittable on these points".into(),
    }
}

/// Print a standard experiment banner.
pub fn banner(id: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {paper_claim}");
    println!(
        "scale: {:?} (set WAKEUP_SCALE=full for the big sweep)",
        Scale::from_env()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweeps_are_nontrivial() {
        assert!(Scale::Quick.n_sweep().len() >= 3);
        assert!(Scale::Full.n_sweep().len() > Scale::Quick.n_sweep().len());
        let ks = Scale::Quick.k_sweep(1024);
        assert_eq!(ks[0], 1);
        assert!(ks.contains(&64));
        assert!(ks.iter().all(|&k| k <= 1024));
        // Full scale reaches k = n.
        assert!(Scale::Full.k_sweep(256).contains(&256));
    }

    #[test]
    fn random_pattern_is_reproducible_and_valid() {
        let a = random_pattern(128, 8, 32, 7);
        let b = random_pattern(128, 8, 32, 7);
        assert_eq!(a, b);
        assert_eq!(a.k(), 8);
        assert!(a.last_wake() - a.s() < 32);
    }

    #[test]
    fn burst_and_worst_patterns() {
        let b = burst_pattern(64, 4, 10, 1);
        assert!(b.wakes().iter().all(|&(_, t)| t == 10));
        let w = worst_rr_pattern(64, 4, 0);
        assert_eq!(
            w.wakes().iter().map(|&(id, _)| id.0).collect::<Vec<_>>(),
            vec![60, 61, 62, 63]
        );
    }
}
