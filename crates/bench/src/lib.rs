//! # wakeup-bench — the declarative experiment layer and `wakeup` driver
//!
//! Every experiment of `DESIGN.md` §3 / `EXPERIMENTS.md` is a **registry
//! entry** ([`experiments::registry`]): a name, a banner, a per-scale sweep
//! [`Grid`], and a body that reports through a pluggable [`sink::Sink`]
//! instead of printing. One driver binary runs them all:
//!
//! ```text
//! wakeup list                         # the registry, one line per experiment
//! wakeup run exp_scenario_a           # pretty tables on stdout (the default)
//! wakeup run --all --scale quick --out json --out-dir results/
//! wakeup run exp_crossover --scale full --threads 4 --out csv
//! ```
//!
//! | flag | values | env fallback |
//! |------|--------|--------------|
//! | `--scale`   | `quick` (default) \| `full` | `WAKEUP_SCALE` |
//! | `--threads` | worker count | `WAKEUP_THREADS` |
//! | `--seed`    | offset added to every ensemble base seed | — |
//! | `--out`     | `table` (default) \| `csv` \| `json` (JSON Lines) | — |
//! | `--out-dir` | write one file per experiment instead of stdout | — |
//! | `--trace`   | capture `<exp>.trace.jsonl` + `<exp>.exec.jsonl` | — |
//! | `--trace-out` | trace artifact directory (default `traces/`) | — |
//! | `--trace-sample` | keep every N-th event per (run, kind) stream | — |
//!
//! `wakeup trace <exp>` is `run` with `--trace` defaulted on, and
//! `wakeup report <trace.jsonl>` ([`report`]) folds an artifact back into
//! slot-class/contention histograms, the mode-switch timeline and worker
//! utilization through the same sinks.
//!
//! `WAKEUP_PROGRESS` (seconds between live `runs/s | steals` lines) and
//! `WAKEUP_ASSERT_SPARSE` (turn the sparse-path expectations of EXP-KG into
//! hard check failures) keep working as before; `WAKEUP_ASSERT_CLASSES`
//! additionally cross-checks EXP-MEGA's class-engine cells against the
//! concrete per-station engine (the CI class smoke). The historical `exp_*`
//! binaries still exist as two-line shims onto the registry, so muscle
//! memory and CI invocations keep working.
//!
//! Machine-readable output is **deterministic**: every value in a CSV/JSON
//! row folds in seed order on the runner, so `--out json` is bit-identical
//! across `--threads` counts (pinned by `tests/wakeup_cli.rs`).
//!
//! Criterion micro-benches live in `benches/` (`kernels` — simulation
//! hot paths; `runner` — chunked vs work-stealing ensemble scheduling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod diff;
pub mod experiment;
pub mod experiments;
pub mod report;
pub mod sink;

use mac_sim::pattern::IdChoice;
use mac_sim::{StationId, WakePattern};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use wakeup_analysis::ensemble::{EnsembleSummary, WorkStats};
use wakeup_analysis::fit::{Metric, SweepPoint};

/// Experiment scale: `quick` (CI-friendly seconds) or `full` (the recorded
/// tables, minutes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sweeps (CI-friendly). The default.
    Quick,
    /// Minutes-scale sweeps matching EXPERIMENTS.md's recorded tables.
    Full,
}

/// Which sweep grid an experiment walks — the one parameter that used to be
/// four near-duplicate `Scale` methods (`n_sweep`/`n_sweep_sparse`,
/// `k_sweep`/`k_sweep_sparse`). Carried by each registry entry, so the grid
/// is part of the experiment's declaration rather than re-chosen in every
/// body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Grid {
    /// Dense-engine experiments: per-run cost grows with `n`, so the full
    /// sweep tops out at `n = 65536` and `k` reaches `n`.
    #[default]
    Dense,
    /// Sparse-engine experiments (per-run cost `O(events·log k)`,
    /// independent of `n`): the full sweep reaches `n = 2^20`, with `k`
    /// capped at 4096 because stations, not slots, are what costs.
    Sparse,
}

impl Scale {
    /// Read the scale from the environment (`WAKEUP_SCALE=quick|full`).
    pub fn from_env() -> Scale {
        match std::env::var("WAKEUP_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// The CLI/env name of this scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// The `n` sweep for scaling experiments on the given grid.
    pub fn n_sweep(self, grid: Grid) -> Vec<u32> {
        let mut ns = vec![256, 1024, 4096];
        if self == Scale::Full {
            ns.extend([16384, 65536]);
            if grid == Grid::Sparse {
                ns.push(1 << 20);
            }
        }
        ns
    }

    /// The `k` sweep (powers of two from 1) paired with
    /// [`n_sweep`](Self::n_sweep): capped at 64 at quick scale, and at the
    /// grid's full-scale cap (`n` dense, 4096 sparse) otherwise.
    pub fn k_sweep(self, grid: Grid, n: u32) -> Vec<u32> {
        let cap = match (self, grid) {
            (Scale::Quick, _) => 64.min(n),
            (Scale::Full, Grid::Dense) => n,
            (Scale::Full, Grid::Sparse) => 4096.min(n),
        };
        let mut ks = vec![1u32];
        let mut k = 2u32;
        while k <= cap {
            ks.push(k);
            k = k.saturating_mul(2);
        }
        ks
    }

    /// Runs per configuration.
    pub fn runs(self) -> u64 {
        match self {
            Scale::Quick => 10,
            Scale::Full => 50,
        }
    }
}

/// `WAKEUP_THREADS` override for the runner's worker count, if set.
fn env_threads() -> Option<usize> {
    std::env::var("WAKEUP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// `WAKEUP_PROGRESS` (seconds between updates, bare value = 5) as a
/// [`wakeup_runner::Progress`] spec labelled `label`, if set.
fn env_progress(label: &str) -> Option<wakeup_runner::Progress> {
    std::env::var("WAKEUP_PROGRESS").ok().map(|v| {
        let secs = v.parse::<u64>().unwrap_or(5).max(1);
        wakeup_runner::Progress::new(Duration::from_secs(secs), label)
    })
}

/// Per-table accumulator of engine work and runner throughput, printed as a
/// footer line under each experiment table:
///
/// ```text
/// EXP-A work: slots 1234 | polls 56 (0.0454 polls/slot) | … || 500 runs in 1.2s (417 runs/s, 9.1k polls/s)
/// ```
#[derive(Clone, Debug, Default)]
pub struct TableMeter {
    work: WorkStats,
    runs: u64,
    elapsed: Duration,
}

impl TableMeter {
    /// An empty meter.
    pub fn new() -> Self {
        TableMeter::default()
    }

    /// Fold one ensemble's work and execution stats into the table totals.
    pub fn absorb(&mut self, summary: &EnsembleSummary) {
        self.work.merge(&summary.work);
        self.runs += summary.runs;
        self.elapsed += summary.exec.elapsed;
    }

    /// The accumulated engine-work counters.
    pub fn work(&self) -> &WorkStats {
        &self.work
    }

    /// Total runs folded in.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The footer line (see type docs).
    pub fn render(&self, label: &str) -> String {
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        format!(
            "{label} work: {} || {} runs in {:.2}s ({:.1} runs/s, {:.0} polls/s)",
            self.work.render(),
            self.runs,
            self.elapsed.as_secs_f64(),
            self.runs as f64 / secs,
            self.work.polls as f64 / secs,
        )
    }
}

/// A random wake pattern: `k` random stations, wake times uniform in a
/// window of `window` slots starting at a random `s` (first waker pinned to
/// `s`).
pub fn random_pattern(n: u32, k: usize, window: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    let s = (seed % 97) * 13; // vary s across runs
    WakePattern::uniform_window(&ids, s, window.max(1), &mut rng).unwrap()
}

/// A simultaneous-burst pattern at slot `s` with `k` random stations.
pub fn burst_pattern(n: u32, k: usize, s: u64, seed: u64) -> WakePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = IdChoice::Random.pick(n, k, &mut rng);
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// The adversarial block pattern for round-robin: the `k` stations owning
/// the *last* turns of the cycle, waking together.
pub fn worst_rr_pattern(n: u32, k: usize, s: u64) -> WakePattern {
    let ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    WakePattern::simultaneous(&ids, s).unwrap()
}

/// The mean solved latency for machine rows: `NaN` (rendered as JSON
/// `null` / CSV `NaN`) when **no** run solved, so a fully-censored cell is
/// unambiguous instead of reading as a latency of zero. The pretty tables
/// print `censored`/`-` for the same cells.
pub fn mean_or_nan(summary: &EnsembleSummary) -> f64 {
    if summary.solved > 0 {
        summary.mean()
    } else {
        f64::NAN
    }
}

/// Shape verdict: the paper's model must rank #1 by R² among all candidate
/// shapes and explain most of the variance. Returns a human-readable line.
pub fn shape_verdict(points: &[(f64, f64, f64)], target: wakeup_analysis::Model) -> String {
    let ranked = wakeup_analysis::fit::rank_models(points);
    let Some(best) = ranked.first() else {
        return "no fit possible (too few points)".into();
    };
    let target_fit = ranked.iter().find(|f| f.model == target);
    match target_fit {
        Some(f) if best.model == target && f.r2 >= 0.85 => format!(
            "SHAPE CONFIRMED: {} ranks #1 of {} candidates (R² = {:.3})",
            target.name(),
            ranked.len(),
            f.r2
        ),
        Some(f) => format!(
            "shape NOT confirmed: {} has R² = {:.3}, best was {} (R² = {:.3})",
            target.name(),
            f.r2,
            best.model.name(),
            best.r2
        ),
        None => "target model not fittable on these points".into(),
    }
}

/// [`shape_verdict`] against a chosen statistic of [`SweepPoint`]s — the
/// p90 variant checks that the *tail* of the latency distribution grows
/// with the claimed shape, not just the mean.
pub fn shape_verdict_by(
    points: &[SweepPoint],
    metric: Metric,
    target: wakeup_analysis::Model,
) -> String {
    shape_verdict(
        &wakeup_analysis::fit::project_points(metric, points),
        target,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweeps_are_nontrivial() {
        assert!(Scale::Quick.n_sweep(Grid::Dense).len() >= 3);
        assert!(Scale::Full.n_sweep(Grid::Dense).len() > Scale::Quick.n_sweep(Grid::Dense).len());
        let ks = Scale::Quick.k_sweep(Grid::Dense, 1024);
        assert_eq!(ks[0], 1);
        assert!(ks.contains(&64));
        assert!(ks.iter().all(|&k| k <= 1024));
        // Full scale reaches k = n on the dense grid.
        assert!(Scale::Full.k_sweep(Grid::Dense, 256).contains(&256));
    }

    #[test]
    fn sparse_grid_reaches_a_million_stations() {
        assert!(Scale::Full.n_sweep(Grid::Sparse).contains(&(1 << 20)));
        assert_eq!(
            Scale::Quick.n_sweep(Grid::Sparse),
            Scale::Quick.n_sweep(Grid::Dense)
        );
        // k stays capped so per-run station instantiation is bounded.
        let ks = Scale::Full.k_sweep(Grid::Sparse, 1 << 20);
        assert_eq!(*ks.last().unwrap(), 4096);
        assert!(Scale::Quick.k_sweep(Grid::Sparse, 1 << 20).contains(&64));
        // Small universes cap at n.
        assert!(Scale::Full
            .k_sweep(Grid::Sparse, 16)
            .iter()
            .all(|&k| k <= 16));
    }

    #[test]
    fn grids_agree_except_where_parameterized() {
        // The dedup must preserve the historical values: the grids differ
        // only in the full-scale n ceiling and full-scale k cap.
        assert_eq!(
            Scale::Full.n_sweep(Grid::Dense),
            vec![256, 1024, 4096, 16384, 65536]
        );
        assert_eq!(
            Scale::Full.n_sweep(Grid::Sparse),
            vec![256, 1024, 4096, 16384, 65536, 1 << 20]
        );
        for n in [256u32, 4096] {
            assert_eq!(
                Scale::Quick.k_sweep(Grid::Dense, n),
                Scale::Quick.k_sweep(Grid::Sparse, n)
            );
        }
        assert_eq!(Scale::Full.k_sweep(Grid::Dense, 65536).last(), Some(&65536));
    }

    #[test]
    fn table_meter_accumulates_and_prints() {
        let mut m = TableMeter::new();
        assert_eq!(m.work().slots, 0);
        // An empty meter must render without dividing by zero.
        assert!(m.render("TEST").starts_with("TEST work:"));
        let spec = wakeup_analysis::EnsembleSpec::new(16, 3);
        let s = wakeup_analysis::run_ensemble_stream(
            &spec,
            |_| Box::new(wakeup_core::prelude::RoundRobin::new(16)),
            |seed| random_pattern(16, 2, 4, seed),
        );
        m.absorb(&s);
        assert_eq!(m.runs(), 3);
        assert!(m.work().slots > 0);
        assert!(m.render("TEST").starts_with("TEST work: slots"));
    }

    #[test]
    fn random_pattern_is_reproducible_and_valid() {
        let a = random_pattern(128, 8, 32, 7);
        let b = random_pattern(128, 8, 32, 7);
        assert_eq!(a, b);
        assert_eq!(a.k(), 8);
        assert!(a.last_wake() - a.s() < 32);
    }

    #[test]
    fn burst_and_worst_patterns() {
        let b = burst_pattern(64, 4, 10, 1);
        assert!(b.wakes().iter().all(|&(_, t)| t == 10));
        let w = worst_rr_pattern(64, 4, 0);
        assert_eq!(
            w.wakes().iter().map(|&(id, _)| id.0).collect::<Vec<_>>(),
            vec![60, 61, 62, 63]
        );
    }
}
