//! `wakeup diff` — compare two JSON-Lines artifact directories and flag
//! regressions.
//!
//! Both directories are expected to hold per-experiment `*.jsonl` files as
//! written by `wakeup run --out json --out-dir DIR` (one event object per
//! line, deterministic fields only). The comparison is *semantic*, not
//! byte-wise:
//!
//! * `row` events are matched by an identity key — the stream name, every
//!   string-valued field, the conventional sweep coordinates (`n`, `k`, …)
//!   and an ordinal among otherwise-identical keys — so reordering
//!   metrics or adding new ones does not misalign rows;
//! * matched rows compare their **latency/work metrics** (`mean`, `p90`,
//!   `worst`, `polls`, `slots`, …): an increase beyond the relative
//!   `threshold` is a regression, a matching decrease is reported as an
//!   improvement; a metric that was measured in the baseline but is `null`
//!   in the candidate (e.g. a cell that stopped solving) is always a
//!   regression;
//! * `check` events regress when a check that passed in the baseline fails
//!   in the candidate (new failing checks count too);
//! * baseline rows or files with no counterpart in the candidate are
//!   regressions; *extra* candidate files/rows are informational (new
//!   experiments and metrics land without tripping the gate).
//!
//! The driver exits nonzero when any regression is found — the CI gate
//! between a fresh quick-scale artifact dir and the committed golden dir.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use wakeup_analysis::serial::{parse_json_object, Record, Value};

/// Metrics compared on matched rows; larger values are regressions.
const HIGHER_IS_WORSE: &[&str] = &[
    "mean",
    "median",
    "p90",
    "p99",
    "max",
    "worst",
    "selective_mean",
    "selective_max",
    "retiring_rr_mean",
    "censored",
    "unresolved",
    "slots",
    "polls",
    "dense_steps",
    "mean_transmissions",
    "mean_collisions",
    "max_per_station_tx",
];

/// Integer-valued fields that identify a sweep cell rather than measure it.
const ID_FIELDS: &[&str] = &["n", "k", "s", "c", "seed", "window", "k_max", "horizon"];

/// Outcome of one directory comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Regressions found (missing artifacts/rows, worsened metrics, newly
    /// failing checks). Nonzero fails the driver.
    pub regressions: u64,
    /// Metrics that improved beyond the threshold (informational).
    pub improvements: u64,
    /// Rows matched and compared across the two directories.
    pub rows: u64,
    /// Artifact files compared.
    pub files: u64,
}

/// A parsed artifact: keyed rows plus check outcomes.
#[derive(Default)]
struct Artifact {
    rows: BTreeMap<String, Record>,
    checks: BTreeMap<String, bool>,
}

fn field_as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::U64(u) => Some(u as f64),
        Value::I64(i) => Some(i as f64),
        Value::F64(f) => Some(f),
        _ => None,
    }
}

/// The identity key of a `row` event: stream, string fields, conventional
/// sweep coordinates — everything that names the cell rather than measures
/// it.
fn row_key(record: &Record) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (name, value) in record.fields() {
        let is_id = match value {
            Value::Str(_) => name != "event",
            Value::U64(_) | Value::I64(_) => ID_FIELDS.contains(&name.as_str()),
            _ => false,
        };
        if is_id {
            parts.push(format!("{name}={}", value.to_json()));
        }
    }
    parts.join("|")
}

fn parse_artifact(path: &Path) -> io::Result<Artifact> {
    let text = std::fs::read_to_string(path)?;
    let mut artifact = Artifact::default();
    let mut dups: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_json_object(line)
            .map_err(|e| io::Error::other(format!("{}:{}: {e}", path.display(), lineno + 1)))?;
        match record.get("event") {
            Some(Value::Str(ev)) if ev == "row" => {
                let base = row_key(&record);
                // Ordinal among identical keys keeps repeated cells apart.
                let ordinal = dups.entry(base.clone()).or_insert(0);
                artifact.rows.insert(format!("{base}#{ordinal}"), record);
                *ordinal += 1;
            }
            Some(Value::Str(ev)) if ev == "check" => {
                if let (Some(Value::Str(name)), Some(Value::Bool(passed))) =
                    (record.get("name"), record.get("passed"))
                {
                    artifact.checks.insert(name.clone(), *passed);
                }
            }
            _ => {}
        }
    }
    Ok(artifact)
}

fn jsonl_files(dir: &Path) -> io::Result<Vec<String>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    Ok(names)
}

/// Compare `dir_b` (candidate) against `dir_a` (baseline) with a relative
/// regression `threshold`, writing findings to `out`. See the module docs
/// for the comparison semantics.
pub fn diff_dirs(
    dir_a: &Path,
    dir_b: &Path,
    threshold: f64,
    out: &mut dyn Write,
) -> io::Result<DiffReport> {
    let mut report = DiffReport::default();
    let base_files = jsonl_files(dir_a)?;
    let cand_files = jsonl_files(dir_b)?;

    for name in &cand_files {
        if !base_files.contains(name) {
            writeln!(
                out,
                "note: {name}: only in {} (new artifact)",
                dir_b.display()
            )?;
        }
    }

    for name in &base_files {
        if !cand_files.contains(name) {
            writeln!(out, "REGRESSION {name}: missing from {}", dir_b.display())?;
            report.regressions += 1;
            continue;
        }
        report.files += 1;
        let base = parse_artifact(&dir_a.join(name))?;
        let cand = parse_artifact(&dir_b.join(name))?;

        for (key, a_row) in &base.rows {
            let Some(b_row) = cand.rows.get(key) else {
                writeln!(out, "REGRESSION {name}: row [{key}] missing from candidate")?;
                report.regressions += 1;
                continue;
            };
            report.rows += 1;
            for &metric in HIGHER_IS_WORSE {
                let (Some(a_val), Some(b_val)) = (a_row.get(metric), b_row.get(metric)) else {
                    continue;
                };
                let (Some(a), Some(b)) = (field_as_f64(a_val), field_as_f64(b_val)) else {
                    continue;
                };
                match (a.is_finite(), b.is_finite()) {
                    (true, false) => {
                        writeln!(
                            out,
                            "REGRESSION {name}: [{key}] {metric}: {a} -> null (measurement lost)"
                        )?;
                        report.regressions += 1;
                    }
                    (false, true) => {
                        writeln!(
                            out,
                            "note: {name}: [{key}] {metric}: null -> {b} (now measured)"
                        )?;
                        report.improvements += 1;
                    }
                    (false, false) => {}
                    (true, true) => {
                        let rel = (b - a) / a.abs().max(1e-9);
                        if rel > threshold {
                            writeln!(
                                out,
                                "REGRESSION {name}: [{key}] {metric}: {a} -> {b} (+{:.1}% > {:.1}%)",
                                100.0 * rel,
                                100.0 * threshold,
                            )?;
                            report.regressions += 1;
                        } else if rel < -threshold {
                            writeln!(
                                out,
                                "improvement {name}: [{key}] {metric}: {a} -> {b} ({:.1}%)",
                                100.0 * rel,
                            )?;
                            report.improvements += 1;
                        }
                    }
                }
            }
        }

        for (check, &a_passed) in &base.checks {
            match cand.checks.get(check) {
                Some(&b_passed) if a_passed && !b_passed => {
                    writeln!(out, "REGRESSION {name}: check '{check}' now fails")?;
                    report.regressions += 1;
                }
                None if a_passed => {
                    writeln!(out, "REGRESSION {name}: check '{check}' disappeared")?;
                    report.regressions += 1;
                }
                _ => {}
            }
        }
        for (check, &b_passed) in &cand.checks {
            if !b_passed && !base.checks.contains_key(check) {
                writeln!(out, "REGRESSION {name}: new check '{check}' fails")?;
                report.regressions += 1;
            }
        }
    }

    writeln!(
        out,
        "diff: {} files, {} rows compared | {} regression(s), {} improvement(s)",
        report.files, report.rows, report.regressions, report.improvements,
    )?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDirs {
        root: PathBuf,
    }

    impl TempDirs {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("wakeup-diff-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(root.join("a")).unwrap();
            std::fs::create_dir_all(root.join("b")).unwrap();
            TempDirs { root }
        }
        fn write(&self, side: &str, name: &str, lines: &[&str]) {
            std::fs::write(self.root.join(side).join(name), lines.join("\n")).unwrap();
        }
        fn diff(&self, threshold: f64) -> (DiffReport, String) {
            let mut out = Vec::new();
            let report = diff_dirs(
                &self.root.join("a"),
                &self.root.join("b"),
                threshold,
                &mut out,
            )
            .unwrap();
            (report, String::from_utf8(out).unwrap())
        }
    }

    impl Drop for TempDirs {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    const ROW_A: &str = r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":64,"k":2,"mean":10.0,"polls":100}"#;

    #[test]
    fn identical_dirs_are_clean() {
        let t = TempDirs::new("clean");
        t.write("a", "exp_x.jsonl", &[ROW_A]);
        t.write("b", "exp_x.jsonl", &[ROW_A]);
        let (report, _) = t.diff(0.05);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.rows, 1);
        assert_eq!(report.files, 1);
    }

    #[test]
    fn worsened_metric_beyond_threshold_regresses() {
        let t = TempDirs::new("worse");
        t.write("a", "exp_x.jsonl", &[ROW_A]);
        t.write(
            "b",
            "exp_x.jsonl",
            &[r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":64,"k":2,"mean":10.3,"polls":150}"#],
        );
        let (report, text) = t.diff(0.05);
        // mean +3% is within threshold; polls +50% is not.
        assert_eq!(report.regressions, 1, "{text}");
        assert!(text.contains("polls"), "{text}");
        // A tighter threshold flags both.
        let (strict, _) = t.diff(0.01);
        assert_eq!(strict.regressions, 2);
    }

    #[test]
    fn improvement_is_informational() {
        let t = TempDirs::new("better");
        t.write("a", "exp_x.jsonl", &[ROW_A]);
        t.write(
            "b",
            "exp_x.jsonl",
            &[r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":64,"k":2,"mean":5.0,"polls":100}"#],
        );
        let (report, text) = t.diff(0.05);
        assert_eq!(report.regressions, 0, "{text}");
        assert_eq!(report.improvements, 1);
    }

    #[test]
    fn lost_measurement_and_missing_rows_regress() {
        let t = TempDirs::new("lost");
        t.write(
            "a",
            "exp_x.jsonl",
            &[
                ROW_A,
                r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":128,"k":2,"mean":20.0,"polls":100}"#,
            ],
        );
        t.write(
            "b",
            "exp_x.jsonl",
            &[r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":64,"k":2,"mean":null,"polls":100}"#],
        );
        let (report, text) = t.diff(0.05);
        // One lost mean (null) + one missing row (n=128).
        assert_eq!(report.regressions, 2, "{text}");
        assert!(text.contains("measurement lost"), "{text}");
        assert!(text.contains("missing from candidate"), "{text}");
    }

    #[test]
    fn missing_file_regresses_and_extra_file_does_not() {
        let t = TempDirs::new("files");
        t.write("a", "exp_x.jsonl", &[ROW_A]);
        t.write("b", "exp_new.jsonl", &[ROW_A]);
        let (report, text) = t.diff(0.05);
        assert_eq!(report.regressions, 1, "{text}");
        assert!(text.contains("missing from"), "{text}");
        assert!(text.contains("new artifact"), "{text}");
    }

    #[test]
    fn check_flips_regress() {
        let t = TempDirs::new("checks");
        let pass =
            r#"{"event":"check","experiment":"exp_x","name":"solves","passed":true,"detail":"ok"}"#;
        let fail = r#"{"event":"check","experiment":"exp_x","name":"solves","passed":false,"detail":"bad"}"#;
        t.write("a", "exp_x.jsonl", &[pass]);
        t.write("b", "exp_x.jsonl", &[fail]);
        let (report, text) = t.diff(0.05);
        assert_eq!(report.regressions, 1, "{text}");
        assert!(text.contains("now fails"), "{text}");
        // The reverse direction (fixing a check) is clean.
        t.write("a", "exp_x.jsonl", &[fail]);
        t.write("b", "exp_x.jsonl", &[pass]);
        assert_eq!(t.diff(0.05).0.regressions, 0);
    }

    #[test]
    fn new_metrics_do_not_misalign_rows() {
        // The candidate grew extra fields (e.g. dense_steps): rows still
        // match on the identity key and the shared metrics compare.
        let t = TempDirs::new("schema");
        t.write("a", "exp_x.jsonl", &[ROW_A]);
        t.write(
            "b",
            "exp_x.jsonl",
            &[r#"{"event":"row","experiment":"exp_x","stream":"sweep","n":64,"k":2,"mean":10.0,"polls":100,"dense_steps":7}"#],
        );
        let (report, _) = t.diff(0.05);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.rows, 1);
    }
}
