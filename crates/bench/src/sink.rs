//! Output sinks: where experiment results go.
//!
//! Experiment bodies report *events* — banner, notes, pretty tables,
//! machine rows, check outcomes, work footers — to a [`Sink`]; the sink
//! decides the wire format:
//!
//! * [`TableSink`] — the historical human-readable output: banner, aligned
//!   Markdown tables, fit/verdict notes, work/throughput footers. Machine
//!   rows are dropped (the tables carry the same data, formatted).
//! * [`CsvSink`] — machine rows only, one CSV section per stream (a header
//!   line is emitted whenever the stream schema changes), with a leading
//!   `stream` column.
//! * [`JsonSink`] — JSON Lines: one object per event, rows flattened. Only
//!   deterministic values are emitted (no wall-clock, no thread counts), so
//!   the byte stream is identical across `--threads` settings.
//!
//! Progress lines (`WAKEUP_PROGRESS`) never enter a machine-readable data
//! stream: every sink routes them to stderr via
//! [`Sink::progress_sink`] — the driver hands that to the runner, replacing
//! the runner's historical hard-wired stderr reporting.

use crate::experiment::CheckOutcome;
use crate::{Scale, TableMeter};
use std::io::Write;
use std::sync::Arc;
use wakeup_analysis::serial::{Record, Value};
use wakeup_analysis::Table;
use wakeup_runner::{ProgressSink, StderrProgress};

/// The machine-readable output formats the `wakeup` driver offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutFormat {
    /// Human-readable banner + Markdown tables (the default).
    Table,
    /// CSV sections, one per row stream.
    Csv,
    /// JSON Lines, one event object per line.
    Json,
}

impl OutFormat {
    /// Parse a `--out` value.
    pub fn parse(s: &str) -> Option<OutFormat> {
        match s {
            "table" => Some(OutFormat::Table),
            "csv" => Some(OutFormat::Csv),
            "json" => Some(OutFormat::Json),
            _ => None,
        }
    }

    /// File extension used under `--out-dir`.
    pub fn extension(self) -> &'static str {
        match self {
            OutFormat::Table => "txt",
            OutFormat::Csv => "csv",
            OutFormat::Json => "jsonl",
        }
    }

    /// Build a sink of this format writing to `w`.
    pub fn sink(self, w: Box<dyn Write>) -> Box<dyn Sink> {
        match self {
            OutFormat::Table => Box::new(TableSink::new(w)),
            OutFormat::Csv => Box::new(CsvSink::new(w)),
            OutFormat::Json => Box::new(JsonSink::new(w)),
        }
    }
}

/// Identity of the experiment an output stream belongs to (a borrowed view
/// of the registry entry).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentHead<'a> {
    /// Registry / CLI name (`exp_scenario_a`).
    pub name: &'a str,
    /// Short id (`EXP-A`).
    pub id: &'a str,
    /// Banner title line.
    pub title: &'a str,
    /// The paper claim under test.
    pub claim: &'a str,
}

/// Receiver of experiment events. All methods have no-op defaults so sinks
/// implement exactly the events their format carries.
pub trait Sink {
    /// An experiment starts (banner).
    fn begin(&mut self, head: &ExperimentHead<'_>, scale: Scale, seed: u64) {
        let _ = (head, scale, seed);
    }

    /// Free-form commentary line (fit renderings, verdicts, footnotes).
    fn note(&mut self, text: &str) {
        let _ = text;
    }

    /// A completed pretty table.
    fn table(&mut self, name: &str, table: &Table) {
        let _ = (name, table);
    }

    /// One machine-readable row in the named stream.
    fn row(&mut self, stream: &str, record: &Record) {
        let _ = (stream, record);
    }

    /// A declarative check's outcome.
    fn check(&mut self, outcome: &CheckOutcome) {
        let _ = outcome;
    }

    /// Per-table engine-work totals (and, for the pretty sink, throughput).
    fn work(&mut self, label: &str, meter: &TableMeter) {
        let _ = (label, meter);
    }

    /// The experiment finished; `failures` checks failed.
    fn finish(&mut self, failures: u64) {
        let _ = failures;
    }

    /// Where live runner progress lines should go. Never the data stream:
    /// the default (stderr) is right for every built-in sink.
    fn progress_sink(&self) -> Arc<dyn ProgressSink> {
        Arc::new(StderrProgress)
    }
}

/// The historical pretty-printed output (banner + Markdown tables).
pub struct TableSink {
    w: Box<dyn Write>,
}

impl TableSink {
    /// A pretty sink writing to `w`.
    pub fn new(w: Box<dyn Write>) -> Self {
        TableSink { w }
    }
}

impl Sink for TableSink {
    fn begin(&mut self, head: &ExperimentHead<'_>, scale: Scale, _seed: u64) {
        let _ = writeln!(
            self.w,
            "================================================================"
        );
        let _ = writeln!(self.w, "{}", head.title);
        let _ = writeln!(self.w, "paper claim: {}", head.claim);
        let _ = writeln!(
            self.w,
            "scale: {scale:?} (set WAKEUP_SCALE=full for the big sweep)"
        );
        let _ = writeln!(
            self.w,
            "================================================================"
        );
    }

    fn note(&mut self, text: &str) {
        let _ = writeln!(self.w, "{text}");
    }

    fn table(&mut self, _name: &str, table: &Table) {
        let _ = write!(self.w, "{}", table.to_markdown());
    }

    fn check(&mut self, outcome: &CheckOutcome) {
        // Passing checks are silent, like the asserts they replaced.
        if !outcome.passed {
            let _ = writeln!(
                self.w,
                "CHECK FAILED [{}]: {}",
                outcome.name, outcome.detail
            );
        }
    }

    fn work(&mut self, label: &str, meter: &TableMeter) {
        let _ = writeln!(self.w, "{}", meter.render(label));
    }

    fn finish(&mut self, failures: u64) {
        if failures > 0 {
            let _ = writeln!(self.w, "{failures} CHECK(S) FAILED");
        }
        let _ = self.w.flush();
    }
}

/// CSV output: machine rows only, sectioned per stream schema.
pub struct CsvSink {
    w: Box<dyn Write>,
    experiment: String,
    /// Header of the section currently open (stream + field names).
    current: Option<(String, Vec<String>)>,
}

impl CsvSink {
    /// A CSV sink writing to `w`.
    pub fn new(w: Box<dyn Write>) -> Self {
        CsvSink {
            w,
            experiment: String::new(),
            current: None,
        }
    }
}

impl Sink for CsvSink {
    fn begin(&mut self, head: &ExperimentHead<'_>, _scale: Scale, _seed: u64) {
        self.experiment = head.name.to_string();
    }

    fn row(&mut self, stream: &str, record: &Record) {
        let names: Vec<String> = record.names().iter().map(|s| s.to_string()).collect();
        let schema = (stream.to_string(), names);
        if self.current.as_ref() != Some(&schema) {
            let _ = writeln!(self.w, "experiment,stream,{}", record.csv_header());
            self.current = Some(schema);
        }
        let _ = writeln!(
            self.w,
            "{},{},{}",
            Value::Str(self.experiment.clone()).to_csv(),
            Value::Str(stream.to_string()).to_csv(),
            record.to_csv_line()
        );
    }

    fn check(&mut self, outcome: &CheckOutcome) {
        // Failed checks must be visible in data-only output.
        if !outcome.passed {
            let rec = Record::new()
                .with("name", outcome.name.as_str())
                .with("passed", false)
                .with("detail", outcome.detail.as_str());
            self.row("check_failure", &rec);
        }
    }

    fn finish(&mut self, _failures: u64) {
        let _ = self.w.flush();
    }
}

/// JSON Lines output: one event object per line, deterministic fields only.
pub struct JsonSink {
    w: Box<dyn Write>,
    experiment: String,
}

impl JsonSink {
    /// A JSON Lines sink writing to `w`.
    pub fn new(w: Box<dyn Write>) -> Self {
        JsonSink {
            w,
            experiment: String::new(),
        }
    }

    fn emit(&mut self, event: &str, extra: Record) {
        let mut rec = Record::new()
            .with("event", event)
            .with("experiment", self.experiment.as_str());
        for (name, value) in extra.fields() {
            rec.push(name.clone(), value.clone());
        }
        let _ = writeln!(self.w, "{}", rec.to_json());
    }
}

impl Sink for JsonSink {
    fn begin(&mut self, head: &ExperimentHead<'_>, scale: Scale, seed: u64) {
        self.experiment = head.name.to_string();
        self.emit(
            "begin",
            Record::new()
                .with("id", head.id)
                .with("title", head.title)
                .with("claim", head.claim)
                .with("scale", scale.name())
                .with("seed", seed),
        );
    }

    fn note(&mut self, text: &str) {
        self.emit("note", Record::new().with("text", text));
    }

    fn row(&mut self, stream: &str, record: &Record) {
        let mut extra = Record::new().with("stream", stream);
        for (name, value) in record.fields() {
            extra.push(name.clone(), value.clone());
        }
        self.emit("row", extra);
    }

    fn check(&mut self, outcome: &CheckOutcome) {
        self.emit(
            "check",
            Record::new()
                .with("name", outcome.name.as_str())
                .with("passed", outcome.passed)
                .with("detail", outcome.detail.as_str()),
        );
    }

    fn work(&mut self, label: &str, meter: &TableMeter) {
        // Deterministic counters only — no elapsed/throughput, so the JSON
        // stream is bit-identical across thread counts.
        let mut extra = Record::new().with("label", label);
        for (name, value) in meter.work().record().fields() {
            extra.push(name.clone(), value.clone());
        }
        extra.push("runs", meter.runs());
        self.emit("work", extra);
    }

    fn finish(&mut self, failures: u64) {
        self.emit("finish", Record::new().with("checks_failed", failures));
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A Write handle into a shared buffer (sinks take Box<dyn Write>).
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn head() -> ExperimentHead<'static> {
        ExperimentHead {
            name: "exp_test",
            id: "EXP-T",
            title: "EXP-T — a test experiment",
            claim: "tables come out the right shape",
        }
    }

    fn drive(sink: &mut dyn Sink) {
        sink.begin(&head(), Scale::Quick, 0);
        let mut t = Table::new(["n", "mean"]);
        t.push_row(["64", "3.5"]);
        sink.table("main", &t);
        sink.row(
            "sweep",
            &Record::new()
                .with("n", 64u64)
                .with("mean", 3.5)
                .with("marker", "ROW_ONLY"),
        );
        sink.note("a verdict line");
        sink.check(&CheckOutcome {
            name: "passes".into(),
            passed: true,
            detail: "ok".into(),
        });
        sink.check(&CheckOutcome {
            name: "fails".into(),
            passed: false,
            detail: "broken".into(),
        });
        sink.finish(1);
    }

    fn capture(format: OutFormat) -> String {
        let shared = Shared::default();
        let mut sink = format.sink(Box::new(shared.clone()));
        drive(sink.as_mut());
        let bytes = shared.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn table_sink_matches_the_legacy_banner_and_layout() {
        let out = capture(OutFormat::Table);
        assert!(out.starts_with(
            "================================================================\nEXP-T — a test experiment\npaper claim: tables come out the right shape\nscale: Quick (set WAKEUP_SCALE=full for the big sweep)\n"
        ));
        assert!(out.contains("| n  | mean |"));
        assert!(out.contains("a verdict line"));
        // Machine rows are dropped; failing checks are loud, passing silent.
        assert!(!out.contains("ROW_ONLY"));
        assert!(out.contains("CHECK FAILED [fails]: broken"));
        assert!(!out.contains("passes"));
        assert!(out.contains("1 CHECK(S) FAILED"));
    }

    #[test]
    fn csv_sink_sections_streams_with_headers() {
        let out = capture(OutFormat::Csv);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "experiment,stream,n,mean,marker");
        assert_eq!(lines[1], "exp_test,sweep,64,3.5,ROW_ONLY");
        // The failed check opens a new section.
        assert_eq!(lines[2], "experiment,stream,name,passed,detail");
        assert_eq!(lines[3], "exp_test,check_failure,fails,false,broken");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn json_sink_emits_one_valid_object_per_line() {
        let out = capture(OutFormat::Json);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("{\"event\":\"begin\",\"experiment\":\"exp_test\""));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"row\",\"experiment\":\"exp_test\",\"stream\":\"sweep\",\"n\":64,\"mean\":3.5,\"marker\":\"ROW_ONLY\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"check\",") && l.contains("\"passed\":false")));
        assert_eq!(
            lines.last().unwrap(),
            &"{\"event\":\"finish\",\"experiment\":\"exp_test\",\"checks_failed\":1}"
        );
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        }
    }
}
