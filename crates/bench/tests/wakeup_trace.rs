//! End-to-end contract of the tracing toolchain: a traced `wakeup run`
//! (a) leaves the experiment's sink output bit-identical to an untraced
//! run, (b) writes a trace stream that is bit-identical across `--threads`
//! counts, and (c) produces an artifact `wakeup report` can fold back into
//! valid machine-readable output.

use mac_sim::tracer::TraceFilter;
use std::io::Write;
use std::sync::{Arc, Mutex};
use wakeup_analysis::ensemble::TraceSpec;
use wakeup_bench::experiment::run_experiment_traced;
use wakeup_bench::report;
use wakeup_bench::sink::OutFormat;
use wakeup_bench::{experiments, Scale};

/// A `Write` handle into a shared buffer (sinks consume `Box<dyn Write>`).
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Shared {
    fn take(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("UTF-8")
    }
}

/// Run one experiment traced; return (sink output, trace bytes, exec bytes).
fn capture_traced(name: &str, threads: usize, filter: TraceFilter) -> (String, String, String) {
    let exp = experiments::find(name).expect("experiment registered");
    let out = Shared::default();
    let trace = Shared::default();
    let exec = Shared::default();
    let spec = TraceSpec::new(filter, Arc::new(Mutex::new(trace.clone())))
        .with_exec_sink(Arc::new(Mutex::new(exec.clone())));
    let mut sink = OutFormat::Json.sink(Box::new(out.clone()));
    let failures = run_experiment_traced(
        &exp,
        Scale::Quick,
        0,
        Some(threads),
        Some(spec),
        sink.as_mut(),
    );
    assert_eq!(failures, 0, "{name} checks failed");
    drop(sink);
    (out.take(), trace.take(), exec.take())
}

#[test]
fn traced_run_keeps_sink_output_and_is_thread_invariant() {
    let exp = experiments::find("exp_scenario_a").unwrap();
    let untraced = {
        let out = Shared::default();
        let mut sink = OutFormat::Json.sink(Box::new(out.clone()));
        run_experiment_traced(&exp, Scale::Quick, 0, Some(2), None, sink.as_mut());
        drop(sink);
        out.take()
    };
    let (_out1, trace1, _) = capture_traced("exp_scenario_a", 1, TraceFilter::all());
    let (out2, trace2, exec2) = capture_traced("exp_scenario_a", 2, TraceFilter::all());
    // Tracing does not perturb the experiment's own output...
    assert_eq!(out2, untraced, "tracing changed the sink output");
    // ...and the trace stream is the determinism contract: bit-identical
    // across worker counts.
    assert!(!trace1.is_empty(), "empty trace");
    assert_eq!(trace1, trace2, "trace differs between --threads 1 and 2");
    for line in trace1.lines() {
        assert!(line.starts_with("{\"run\":"), "untagged trace line: {line}");
        wakeup_analysis::serial::parse_json_object(line)
            .unwrap_or_else(|e| panic!("bad trace line ({e}): {line}"));
    }
    // The exec sidecar is the wall-clock tier: one ensemble record plus one
    // line per worker for every ensemble the experiment ran.
    let ens = exec2
        .lines()
        .filter(|l| l.contains("\"record\":\"ensemble\""))
        .count();
    let wrk = exec2
        .lines()
        .filter(|l| l.contains("\"record\":\"worker\""))
        .count();
    assert!(ens > 0, "no ensemble exec records");
    assert_eq!(wrk, ens * 2, "expected 2 worker lines per ensemble");
    // Exec lines carry unique, dense ensemble ordinals (the label fix's
    // machine-readable counterpart).
    for (i, line) in exec2
        .lines()
        .filter(|l| l.contains("\"record\":\"ensemble\""))
        .enumerate()
    {
        assert!(
            line.contains(&format!("\"ensemble\":{i},")),
            "ordinal {i} missing in {line}"
        );
    }
}

#[test]
fn report_folds_a_real_trace_through_every_sink() {
    let (_, trace, _) = capture_traced("exp_scenario_a", 2, TraceFilter::all());
    let folded = report::fold_trace(std::io::Cursor::new(trace.as_bytes())).expect("fold");
    assert!(folded.lines > 0);
    assert!(folded.runs > 0);
    assert!(folded.total_slots > 0);
    assert_eq!(
        folded.kind_counts.get("run_end").copied().unwrap_or(0),
        folded.runs,
        "one run_end per run"
    );
    // Quick scale runs 10 seeds per ensemble; tags restart per ensemble.
    assert_eq!(folded.run_tags, 10);
    assert!(folded.runs > folded.run_tags, "many ensembles in the sweep");
    for format in [OutFormat::Table, OutFormat::Csv, OutFormat::Json] {
        let out = Shared::default();
        let mut sink = format.sink(Box::new(out.clone()));
        report::render_report(&folded, "test.trace.jsonl", None, sink.as_mut());
        drop(sink);
        let rendered = out.take();
        assert!(!rendered.is_empty(), "{format:?} report empty");
        if format == OutFormat::Json {
            for line in rendered.lines() {
                assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            }
            assert!(rendered.contains("\"stream\":\"summary\""));
            assert!(rendered.contains("\"stream\":\"slot_class\""));
        }
    }
}

#[test]
fn report_file_reads_trace_and_exec_sidecar_from_disk() {
    let (_, trace, exec) = capture_traced("exp_scenario_a", 2, TraceFilter::all());
    let dir = std::env::temp_dir().join(format!("wakeup-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tpath = dir.join("exp_scenario_a.trace.jsonl");
    std::fs::write(&tpath, &trace).unwrap();
    std::fs::write(dir.join("exp_scenario_a.exec.jsonl"), &exec).unwrap();
    let out = Shared::default();
    let mut sink = OutFormat::Table.sink(Box::new(out.clone()));
    report::report_file(&tpath, sink.as_mut()).expect("report_file");
    drop(sink);
    let rendered = out.take();
    assert!(rendered.contains("slot classes"), "{rendered}");
    assert!(rendered.contains("worker utilization"), "{rendered}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampling_reduces_and_deterministic_filter_restricts() {
    let (_, all_trace, _) = capture_traced("exp_scenario_a", 2, TraceFilter::all());
    let (_, sampled, _) = capture_traced("exp_scenario_a", 2, TraceFilter::all().sample_every(4));
    assert!(
        sampled.lines().count() < all_trace.lines().count(),
        "sampling did not reduce the stream"
    );
    let (_, det, _) = capture_traced("exp_scenario_a", 1, TraceFilter::deterministic());
    for line in det.lines() {
        let rec = wakeup_analysis::serial::parse_json_object(line).unwrap();
        let ev = match rec.get("ev") {
            Some(wakeup_analysis::Value::Str(s)) => s.clone(),
            _ => panic!("no ev in {line}"),
        };
        assert!(
            ["wake", "silence", "success", "collision", "run_end"].contains(&ev.as_str()),
            "non-deterministic kind {ev} in deterministic filter"
        );
    }
}
