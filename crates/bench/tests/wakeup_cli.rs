//! Golden-schema tests for the `wakeup` driver's machine-readable output.
//!
//! The contract under test: `wakeup run exp_scenario_a --scale quick --out
//! json` emits (a) syntactically valid JSON Lines, (b) stable field names,
//! and (c) **bit-identical bytes across `--threads` settings** — the
//! experiment layer's determinism guarantee, end to end through the sink.

use std::io::Write;
use std::sync::{Arc, Mutex};
use wakeup_bench::experiment::run_experiment;
use wakeup_bench::sink::OutFormat;
use wakeup_bench::{experiments, Scale};

/// A `Write` handle into a shared buffer (sinks consume `Box<dyn Write>`).
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one registry experiment through a sink of the given format and
/// return the emitted bytes.
fn capture(name: &str, format: OutFormat, threads: usize) -> String {
    let exp = experiments::find(name).expect("experiment registered");
    let shared = Shared::default();
    let mut sink = format.sink(Box::new(shared.clone()));
    let failures = run_experiment(&exp, Scale::Quick, 0, Some(threads), sink.as_mut());
    assert_eq!(failures, 0, "{name} checks failed");
    drop(sink);
    let bytes = shared.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("sink output is UTF-8")
}

// ---------------------------------------------------------------------
// A minimal JSON syntax checker (the container has no serde): validates
// one value and returns the rest of the input.
// ---------------------------------------------------------------------

fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<&str, String> {
    let s = skip_ws(s);
    let mut chars = s.chars();
    match chars.next() {
        Some('{') => parse_members(&s[1..], '}', true),
        Some('[') => parse_members(&s[1..], ']', false),
        Some('"') => parse_string(s),
        Some('t') => s.strip_prefix("true").ok_or("bad literal".to_string()),
        Some('f') => s.strip_prefix("false").ok_or("bad literal".to_string()),
        Some('n') => s.strip_prefix("null").ok_or("bad literal".to_string()),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .map_err(|e| format!("bad number {}: {e}", &s[..end]))?;
            Ok(&s[end..])
        }
        other => Err(format!("unexpected {other:?}")),
    }
}

fn parse_string(s: &str) -> Result<&str, String> {
    // s starts with '"'.
    let bytes = s.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok(&s[i + 1..]),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_members(mut s: &str, close: char, keyed: bool) -> Result<&str, String> {
    loop {
        s = skip_ws(s);
        if let Some(rest) = s.strip_prefix(close) {
            return Ok(rest);
        }
        if keyed {
            s = parse_string(skip_ws(s))?;
            s = skip_ws(s)
                .strip_prefix(':')
                .ok_or("missing ':'".to_string())?;
        }
        s = parse_value(s)?;
        s = skip_ws(s);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else if let Some(rest) = s.strip_prefix(close) {
            return Ok(rest);
        } else {
            return Err(format!("expected ',' or '{close}' at {s:.20}"));
        }
    }
}

fn assert_valid_json_object(line: &str) {
    assert!(line.starts_with('{'), "not an object: {line}");
    match parse_value(line) {
        Ok(rest) => assert!(skip_ws(rest).is_empty(), "trailing garbage in {line}"),
        Err(e) => panic!("invalid JSON ({e}): {line}"),
    }
}

/// Extract `"field":` names of a flat JSON object line, in order.
fn field_names(line: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let name = &after[..end];
        let tail = &after[end + 1..];
        if tail.starts_with(':') {
            names.push(name.to_string());
            rest = tail;
        } else {
            // It was a string *value*; skip past it.
            rest = tail;
        }
    }
    names
}

#[test]
fn scenario_a_json_is_bit_identical_across_thread_counts() {
    let one = capture("exp_scenario_a", OutFormat::Json, 1);
    let two = capture("exp_scenario_a", OutFormat::Json, 2);
    assert!(!one.is_empty());
    assert_eq!(one, two, "JSON output differs between --threads 1 and 2");
}

#[test]
fn scenario_a_json_has_the_golden_schema() {
    let out = capture("exp_scenario_a", OutFormat::Json, 2);
    let lines: Vec<&str> = out.lines().collect();
    for line in &lines {
        assert_valid_json_object(line);
    }
    // Envelope events.
    assert!(lines[0]
        .starts_with("{\"event\":\"begin\",\"experiment\":\"exp_scenario_a\",\"id\":\"EXP-A\""));
    assert!(lines.last().unwrap().contains("\"event\":\"finish\""));
    assert!(lines.last().unwrap().contains("\"checks_failed\":0"));

    // Every sweep row carries exactly the stable field names, in order.
    let golden: Vec<&str> = vec![
        "event",
        "experiment",
        "stream",
        "n",
        "k",
        "envelope",
        "runs",
        "solved",
        "censored",
        "mean",
        "ci95",
        "median",
        "p90",
        "p99",
        "max",
        "worst",
        "mean_transmissions",
        "mean_collisions",
        "max_per_station_tx",
        "slots",
        "polls",
        "skipped",
        "dense_steps",
        "word_slots",
        "mode_switches",
        "peak_units",
    ];
    let sweep_rows: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"stream\":\"sweep\""))
        .collect();
    // Quick scale: 3 n values × 7 k values.
    assert_eq!(sweep_rows.len(), 21, "unexpected sweep row count");
    for row in sweep_rows {
        assert_eq!(field_names(row), golden, "schema drift in {row}");
    }

    // The fit stream covers both metrics (the P² satellite).
    assert!(lines
        .iter()
        .any(|l| l.contains("\"stream\":\"fit\"") && l.contains("\"metric\":\"mean\"")));
    assert!(lines
        .iter()
        .any(|l| l.contains("\"stream\":\"fit\"") && l.contains("\"metric\":\"p90\"")));
    // Work totals are present and deterministic-only (no wall-clock).
    let work = lines
        .iter()
        .find(|l| l.contains("\"event\":\"work\""))
        .expect("work event");
    assert!(!work.contains("elapsed") && !work.contains("runs_per_sec"));
}

#[test]
fn csv_output_is_deterministic_and_sectioned() {
    let one = capture("exp_figures", OutFormat::Csv, 1);
    let two = capture("exp_figures", OutFormat::Csv, 2);
    assert_eq!(one, two);
    let lines: Vec<&str> = one.lines().collect();
    assert_eq!(lines[0], "experiment,stream,slot,station,row");
    assert_eq!(lines.len(), 4, "3 occupancy rows + header: {one}");
    for l in &lines[1..] {
        assert!(l.starts_with("exp_figures,occupancy,"), "{l}");
    }
}

#[test]
fn table_output_carries_the_banner_and_tables() {
    let out = capture("exp_lower_bound", OutFormat::Table, 2);
    assert!(out.starts_with(
        "================================================================\nEXP-LB — Theorem 2.1 lower bound (swap-chain adversary)\n"
    ));
    assert!(out.contains("| n   | k   | bound min{k,n-k+1} |"));
    assert!(out.contains("Corollary 2.1"));
}
