//! Ensemble-scheduling benchmark: static chunk-per-thread (the legacy
//! `run_ensemble_chunked`) vs the work-stealing runner (`run_ensemble`),
//! on the workload class that motivated the runner — many *short sparse
//! runs* (round-robin at n = 4096) whose cost varies strongly with the
//! seed, so a contiguous chunk of expensive runs lands on one thread while
//! the others idle.
//!
//! The skew is monotone in the run index (cost ~ k⁴-shaped ramp): the last
//! static chunk concentrates most of the total work, which stealing
//! redistributes. On ≥ 4 cores the stealing path is expected ≥ 2× faster;
//! on a single core both degenerate to the same sequential sweep. The
//! benchmark also asserts the two paths produce identical samples — the
//! determinism contract the runner is built around.

use criterion::{criterion_group, criterion_main, Criterion};
use mac_sim::Protocol;
use std::hint::black_box;
use wakeup_analysis::prelude::*;
use wakeup_core::prelude::*;

const N: u32 = 4096;
const RUNS: u64 = 256;

/// Contention ramp: cheap runs early, expensive runs late (k up to ~n/2),
/// so static contiguous chunks are maximally imbalanced.
fn k_of(seed: u64) -> usize {
    let x = seed as f64 / RUNS as f64;
    4 + (2040.0 * x * x * x * x) as usize
}

fn spec(threads: usize) -> EnsembleSpec {
    EnsembleSpec::new(N, RUNS).with_threads(threads)
}

fn protocol_for(_seed: u64) -> Box<dyn Protocol> {
    Box::new(RoundRobin::new(N))
}

fn pattern_for(seed: u64) -> mac_sim::WakePattern {
    wakeup_bench::worst_rr_pattern(N, k_of(seed), 0)
}

fn ensemble_scheduling(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("ensemble_scheduling");

    // Correctness pin before timing: both schedulers, any thread count,
    // same samples.
    let reference = run_ensemble_chunked(&spec(1), protocol_for, pattern_for);
    let stealing = run_ensemble(&spec(threads), protocol_for, pattern_for);
    assert_eq!(
        reference.samples, stealing.samples,
        "schedulers must produce identical ensembles"
    );

    group.bench_function(format!("chunked_t{threads}_rr_n4096"), |b| {
        b.iter(|| {
            black_box(run_ensemble_chunked(
                &spec(threads),
                protocol_for,
                pattern_for,
            ))
            .samples
            .len()
        })
    });
    group.bench_function(format!("stealing_t{threads}_rr_n4096"), |b| {
        b.iter(|| {
            black_box(run_ensemble(&spec(threads), protocol_for, pattern_for))
                .samples
                .len()
        })
    });
    group.finish();

    // A one-shot wall-clock comparison with the ratio spelled out (the
    // criterion lines above measure each path in isolation).
    use std::time::Instant;
    let t0 = Instant::now();
    let a = run_ensemble_chunked(&spec(threads), protocol_for, pattern_for);
    let chunked = t0.elapsed();
    let t0 = Instant::now();
    let b = run_ensemble(&spec(threads), protocol_for, pattern_for);
    let stealing_t = t0.elapsed();
    assert_eq!(a.samples, b.samples);
    println!(
        "ensemble_scheduling summary: {threads} threads | chunked {chunked:?} | \
         stealing {stealing_t:?} | speedup {:.2}x \
         (expect ≥ 2x on ≥ 4 cores; ≈ 1x single-core)",
        chunked.as_secs_f64() / stealing_t.as_secs_f64().max(1e-9)
    );
}

criterion_group!(benches, ensemble_scheduling);
criterion_main!(benches);
