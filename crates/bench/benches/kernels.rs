//! Criterion micro-benchmarks of the hot kernels behind every experiment:
//!
//! * `family_construction` — building selective families (random explicit,
//!   random oracle, Kautz–Singleton) at the sizes EXP-A/B consume;
//! * `matrix_oracle` — waking-matrix membership evaluation, the inner loop
//!   of Scenario C (EXP-C);
//! * `simulator_throughput` — slots/second of the channel engine (all
//!   experiments);
//! * `protocol_latency` — end-to-end wake-up for each algorithm at a fixed
//!   configuration (the per-row cost of TAB-SUMMARY);
//! * `engine_dense_vs_sparse` — the same deterministic protocol run under
//!   forced dense polling vs the sparse slot-skipping path, at n = 4096
//!   with sparse wake patterns (the headline speedup of the sparse engine);
//! * `hybrid_policy` — the adaptive dense/sparse policy on burst-shaped
//!   runs: the wakeup_n simultaneous burst must run at ≥ ~1× dense (the
//!   former 0.6× regression), with the gap-heavy rows keeping their full
//!   sparse speedups (ratios asserted outside `BENCH_QUICK`);
//! * `bitslab_burst` — the bit-parallel word kernel (`EngineMode::Bitslab`
//!   and the Auto engine's burst windows) vs scalar dense stepping on
//!   burst-shaped runs: ≥ 10× asserted on the block-burst rows outside
//!   `BENCH_QUICK` (the eval-bound and no-skip rows pin parity bounds),
//!   bit-identity pinned, and the summary written to `BENCH_kernels.json`
//!   when `BENCH_KERNELS_JSON` is set;
//! * `construction_cache` — a whole ensemble with and without the
//!   [`ConstructionCache`]: seed-independent schedules built once per
//!   ensemble instead of once per run;
//! * `mega_station` — the class-aggregated population engine on a block
//!   wake of half the universe at n = 2^24: the guard asserts a ≥ 100×
//!   memory reduction (stations represented per live simulation unit) for
//!   round-robin, with a bit-identity pin against the concrete engine at a
//!   size it can still afford;
//! * `trace_overhead` — the tracing subsystem's zero-cost contract: the
//!   `NoopTracer` path must stay within 5% of the plain `run` on the
//!   emission-dense round-robin block row, with a recording-tracer cost
//!   line for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mac_sim::prelude::*;
use selectors::prelude::*;
use std::hint::black_box;
use std::time::Instant;
use wakeup_analysis::prelude::*;
use wakeup_core::prelude::*;

/// Mean per-run wall-clock of `f` over enough iterations to be stable.
fn time_runs<F: FnMut() -> Outcome>(mut f: F) -> (f64, Outcome) {
    let out = f(); // warmup
    let iters: u32 = if std::env::var_os("BENCH_QUICK").is_some() {
        20
    } else {
        2000
    };
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    (t0.elapsed().as_secs_f64() / f64::from(iters), out)
}

/// Timing assertions are skipped in `BENCH_QUICK` smoke mode (single
/// iterations are too noisy); the deterministic counter pins always run.
fn assert_timing(cond: bool, msg: &str) {
    if std::env::var_os("BENCH_QUICK").is_none() {
        assert!(cond, "{msg}");
    } else if !cond {
        eprintln!("BENCH_QUICK: timing expectation not met (ignored): {msg}");
    }
}

fn family_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_construction");
    for &(n, k) in &[(1024u32, 8u32), (4096, 32)] {
        group.bench_with_input(
            BenchmarkId::new("random_explicit", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    black_box(
                        RandomFamilyBuilder::new(n, k)
                            .seed(1)
                            .build_explicit()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random_oracle", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| black_box(RandomFamilyBuilder::new(n, k).seed(1).build_oracle().len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kautz_singleton", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| black_box(KautzSingleton::new(n, k).len())),
        );
    }
    group.finish();
}

fn matrix_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_oracle");
    for &n in &[1024u32, 65536] {
        let matrix = WakingMatrix::new(MatrixParams::new(n));
        group.bench_with_input(BenchmarkId::new("member", n), &matrix, |b, m| {
            let mut j = 0u64;
            b.iter(|| {
                j = j.wrapping_add(0x9E37_79B9);
                black_box(m.member(
                    1 + (j % u64::from(m.rows())) as u32,
                    j,
                    (j % u64::from(n)) as u32,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("transmits", n), &matrix, |b, m| {
            let mut t = 0u64;
            b.iter(|| {
                t += 17;
                black_box(m.transmits((t % u64::from(n)) as u32, 0, t))
            })
        });
    }
    group.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    // A never-succeeding workload isolates the engine cost per slot.
    struct Listeners;
    struct L;
    impl Station for L {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, _t: Slot) -> Action {
            Action::Listen
        }
    }
    impl Protocol for Listeners {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(L)
        }
        fn name(&self) -> String {
            "listeners".into()
        }
    }
    for &k in &[4usize, 64] {
        group.bench_with_input(BenchmarkId::new("slots_10k", k), &k, |b, &k| {
            let n = 1024u32;
            let ids: Vec<StationId> = (0..k as u32).map(StationId).collect();
            let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
            let sim = Simulator::new(SimConfig::new(n).with_max_slots(10_000));
            b.iter(|| black_box(sim.run(&Listeners, &pattern, 0).unwrap().slots_simulated))
        });
    }
    group.finish();
}

fn protocol_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_latency");
    let n = 1024u32;
    let k = 8usize;
    let ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 100)).collect();
    let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
    let sim = Simulator::new(SimConfig::new(n));

    let protocols: Vec<(&str, Box<dyn Protocol>)> = vec![
        ("round_robin", Box::new(RoundRobin::new(n))),
        (
            "wakeup_with_s",
            Box::new(WakeupWithS::new(n, 0, FamilyProvider::default())),
        ),
        (
            "wakeup_with_k",
            Box::new(WakeupWithK::new(n, k as u32, FamilyProvider::default())),
        ),
        ("wakeup_n", Box::new(WakeupN::new(MatrixParams::new(n)))),
        ("rpd", Box::new(Rpd::new(n))),
    ];
    for (name, proto) in &protocols {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(sim.run(proto.as_ref(), &pattern, 1).unwrap().first_success))
        });
    }
    group.finish();
}

fn engine_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dense_vs_sparse");
    let n = 4096u32;
    let k = 8usize;

    // Adversarial-for-round-robin sparse pattern: the k stations owning the
    // last turns of the cycle wake together, so the dense engine grinds
    // through ~n silent slots polling k stations each, while the sparse
    // engine jumps straight to the first owned turn.
    let rr_ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    let rr_pattern = WakePattern::simultaneous(&rr_ids, 0).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("round_robin_n4096_k8", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(SimConfig::new(n).with_engine(mode));
                b.iter(|| {
                    black_box(
                        sim.run(&RoundRobin::new(n), &rr_pattern, 0)
                            .unwrap()
                            .first_success,
                    )
                })
            },
        );
    }

    // The complete Scenario B algorithm on a staggered sparse pattern.
    let ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 512 + 300)).collect();
    let pattern = WakePattern::staggered(&ids, 3, 97).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("wakeup_with_k_n4096_k8", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(SimConfig::new(n).with_engine(mode));
                let proto = WakeupWithK::new(n, k as u32, FamilyProvider::default());
                b.iter(|| black_box(sim.run(&proto, &pattern, 0).unwrap().first_success))
            },
        );
    }

    // Scenario C (waking matrix) on a simultaneous sparse burst — the
    // hardest shape for event-driven execution: success lands within a few
    // slots, so there is nothing to skip and the hint machinery is pure
    // overhead. Expect ≈ parity, not a win (see the staggered row for the
    // shape where the per-row PRF jumps pay off).
    let c_ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 500 + 17)).collect();
    let c_pattern = WakePattern::simultaneous(&c_ids, 11).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("wakeup_n_n4096_k8", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(SimConfig::new(n).with_engine(mode));
                let proto = WakeupN::new(MatrixParams::new(n));
                b.iter(|| black_box(sim.run(&proto, &c_pattern, 0).unwrap().first_success))
            },
        );
    }

    // Scenario C with staggered arrivals: silent stretches between wakes
    // are skipped via the per-row PRF jumps.
    let stag_pattern = WakePattern::staggered(&c_ids, 3, 997).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("wakeup_n_staggered_n4096_k8", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(SimConfig::new(n).with_engine(mode));
                let proto = WakeupN::new(MatrixParams::new(n));
                b.iter(|| black_box(sim.run(&proto, &stag_pattern, 0).unwrap().first_success))
            },
        );
    }

    // Full conflict resolution (Komlós–Greenberg) under AllResolved: the
    // feedback-driven workload that epoch-scoped (Until::NextSuccess)
    // hints moved off the forced-dense path.
    let kg_ids: Vec<StationId> = (0..16u32).map(|i| StationId(i * 60 + 7)).collect();
    let kg_pattern = WakePattern::simultaneous(&kg_ids, 9).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("full_resolution_n4096_k16", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(
                    SimConfig::new(n)
                        .with_max_slots(500_000)
                        .until_all_resolved()
                        .with_engine(mode),
                );
                let proto = FullResolution::new(n, 16, FamilyProvider::default());
                b.iter(|| {
                    black_box(
                        sim.run(&proto, &kg_pattern, 0)
                            .unwrap()
                            .all_resolved_at
                            .unwrap(),
                    )
                })
            },
        );
    }

    // Retiring round-robin at n = 2^16 under AllResolved: Θ(n) silent
    // slots between the k turns — the shape where success-scoped skipping
    // is transformative (dense is O(n·k) polls, sparse is O(k) events).
    let big_n = 65536u32;
    let rr_ids2: Vec<StationId> = (0..8u32).map(|i| StationId(i * 8000 + 11)).collect();
    let rr_pattern2 = WakePattern::simultaneous(&rr_ids2, 5).unwrap();
    for (label, mode) in [("dense", EngineMode::Dense), ("sparse", EngineMode::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("retiring_rr_n65536_k8", label),
            &mode,
            |b, &mode| {
                let sim = Simulator::new(
                    SimConfig::new(big_n)
                        .with_max_slots(500_000)
                        .until_all_resolved()
                        .with_engine(mode),
                );
                let proto = RetiringRoundRobin::new(big_n);
                b.iter(|| {
                    black_box(
                        sim.run(&proto, &rr_pattern2, 0)
                            .unwrap()
                            .all_resolved_at
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn hybrid_policy(_c: &mut Criterion) {
    let n = 4096u32;
    let k = 8usize;
    let ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 500 + 17)).collect();
    let auto_sim = Simulator::new(SimConfig::new(n));
    let dense_sim = Simulator::new(SimConfig::new(n).with_engine(EngineMode::Dense));

    // Row 1 — the former 0.6× regression: the wakeup_n simultaneous burst
    // succeeds a few slots after the window boundary, so there is nothing
    // to skip; the adaptive engine must detect the batch at wake time and
    // run it at dense speed.
    let burst = WakePattern::simultaneous(&ids, 11).unwrap();
    let proto = WakeupN::new(MatrixParams::new(n));
    let (auto_t, auto_out) = time_runs(|| auto_sim.run(&proto, &burst, 0).unwrap());
    let (dense_t, dense_out) = time_runs(|| dense_sim.run(&proto, &burst, 0).unwrap());
    assert_eq!(auto_out.first_success, dense_out.first_success);
    assert_eq!(auto_out.transmissions, dense_out.transmissions);
    assert!(auto_out.mode_switches > 0, "burst not detected at wake");
    assert!(
        auto_out.dense_steps + auto_out.word_slots > 0,
        "burst slots not dense-stepped"
    );
    let ratio = dense_t / auto_t.max(1e-12);
    println!(
        "hybrid_policy/wakeup_n_burst_n4096_k8      auto {:.2}us dense {:.2}us  ratio {ratio:.2}x (target >= ~1x, was ~0.6x)",
        auto_t * 1e6,
        dense_t * 1e6,
    );
    // Floor 0.75: the row is ~1us, so run-to-run jitter spans ~0.85-1.25x;
    // the floor rejects the structural 0.6x regression, not the noise.
    assert_timing(
        ratio >= 0.75,
        &format!("hybrid burst ratio {ratio:.2}x below ~1x of dense"),
    );

    // Row 2 — gap-heavy guard: the adaptive policy must not cost the
    // round-robin block pattern its sparse speedup.
    let rr_ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    let rr_pattern = WakePattern::simultaneous(&rr_ids, 0).unwrap();
    let rr = RoundRobin::new(n);
    let (rr_auto_t, rr_auto) = time_runs(|| auto_sim.run(&rr, &rr_pattern, 0).unwrap());
    let (rr_dense_t, _) = time_runs(|| dense_sim.run(&rr, &rr_pattern, 0).unwrap());
    assert_eq!(rr_auto.polls, 1, "gap-heavy RR run left the sparse path");
    assert_eq!(rr_auto.dense_steps, 0);
    let rr_ratio = rr_dense_t / rr_auto_t.max(1e-12);
    println!(
        "hybrid_policy/round_robin_n4096_k8         auto {:.2}us dense {:.2}us  ratio {rr_ratio:.0}x (gap-heavy, expect >> 50x)",
        rr_auto_t * 1e6,
        rr_dense_t * 1e6,
    );
    assert_timing(
        rr_ratio >= 50.0,
        &format!("gap-heavy RR speedup collapsed to {rr_ratio:.0}x"),
    );

    // Row 3 — gap-heavy guard at event granularity: staggered Scenario C
    // keeps its sparse win (per-row PRF jumps over the inter-wake gaps).
    let stag = WakePattern::staggered(&ids, 3, 997).unwrap();
    let (st_auto_t, st_auto) = time_runs(|| auto_sim.run(&proto, &stag, 0).unwrap());
    let (st_dense_t, _) = time_runs(|| dense_sim.run(&proto, &stag, 0).unwrap());
    assert!(st_auto.skipped_slots > 0, "staggered run did not skip");
    let st_ratio = st_dense_t / st_auto_t.max(1e-12);
    println!(
        "hybrid_policy/wakeup_n_staggered_n4096_k8  auto {:.2}us dense {:.2}us  ratio {st_ratio:.2}x (expect >= ~1.4x)",
        st_auto_t * 1e6,
        st_dense_t * 1e6,
    );
    assert_timing(
        st_ratio >= 1.0,
        &format!("staggered Scenario C lost its sparse win ({st_ratio:.2}x)"),
    );

    // Row 4 — the Komlós–Greenberg resolver must stay on the pure sparse
    // path (the success-reset keeps contention stretches from flipping the
    // policy; wall-clock there is sparse-favourable already).
    let kg_ids: Vec<StationId> = (0..16u32).map(|i| StationId(i * 60 + 7)).collect();
    let kg_pattern = WakePattern::simultaneous(&kg_ids, 9).unwrap();
    let kg = FullResolution::new(n, 16, FamilyProvider::default());
    let mk_kg = |mode: EngineMode| {
        Simulator::new(
            SimConfig::new(n)
                .with_max_slots(500_000)
                .until_all_resolved()
                .with_engine(mode),
        )
    };
    let kg_auto_sim = mk_kg(EngineMode::Auto);
    let kg_dense_sim = mk_kg(EngineMode::Dense);
    let (kg_auto_t, kg_auto) = time_runs(|| kg_auto_sim.run(&kg, &kg_pattern, 3).unwrap());
    let (kg_dense_t, kg_dense) = time_runs(|| kg_dense_sim.run(&kg, &kg_pattern, 3).unwrap());
    assert_eq!(kg_auto.all_resolved_at, kg_dense.all_resolved_at);
    assert!(
        kg_auto.polls * 10 < kg_dense.polls,
        "KG resolver fell off the sparse path ({} vs {} polls)",
        kg_auto.polls,
        kg_dense.polls
    );
    let kg_ratio = kg_dense_t / kg_auto_t.max(1e-12);
    println!(
        "hybrid_policy/full_resolution_n4096_k16    auto {:.2}us dense {:.2}us  ratio {kg_ratio:.2}x (expect >= ~1x)",
        kg_auto_t * 1e6,
        kg_dense_t * 1e6,
    );
    assert_timing(
        kg_ratio >= 0.9,
        &format!("KG resolver regressed to {kg_ratio:.2}x of dense"),
    );
}

fn bitslab_burst(_c: &mut Criterion) {
    // Guard rows — the bit-parallel word kernel on burst-shaped runs:
    // `EngineMode::Bitslab` resolves up-to-64-slot tiles by popcount where
    // the scalar dense engine polls every awake station per slot. The
    // block-burst rows must show a ≥ 10× speedup over scalar dense
    // stepping, the eval-bound and no-skip rows pin parity bounds
    // (asserted outside BENCH_QUICK), all with bit-identical outcomes; set
    // BENCH_KERNELS_JSON=<path> to also write the per-PR summary artifact.
    let n = 4096u32;
    let mut rows: Vec<(&'static str, f64, f64, f64)> = Vec::new();

    let row = |name: &'static str,
               cfg: SimConfig,
               proto: &dyn Protocol,
               pattern: &WakePattern,
               floor: f64,
               rows: &mut Vec<(&'static str, f64, f64, f64)>| {
        let scalar_sim = Simulator::new(cfg.clone().with_engine(EngineMode::Dense));
        let slab_sim = Simulator::new(cfg.with_engine(EngineMode::Bitslab));
        let (scalar_t, scalar) = time_runs(|| scalar_sim.run(proto, pattern, 0).unwrap());
        let (slab_t, slab) = time_runs(|| slab_sim.run(proto, pattern, 0).unwrap());
        // Bit-identity pins (transcripts and channel-tier trace bytes are
        // pinned by tests/bitslab_equiv.rs; the counters here keep the
        // perf guard self-contained).
        assert_eq!(slab.first_success, scalar.first_success, "{name}");
        assert_eq!(slab.transmissions, scalar.transmissions, "{name}");
        assert_eq!(slab.collisions, scalar.collisions, "{name}");
        assert_eq!(slab.slots_simulated, scalar.slots_simulated, "{name}");
        assert_eq!(slab.all_resolved_at, scalar.all_resolved_at, "{name}");
        assert!(slab.word_slots > 0, "{name}: kernel never engaged");
        assert_eq!(scalar.word_slots, 0, "{name}: scalar ran the kernel");
        let ratio = scalar_t / slab_t.max(1e-12);
        println!(
            "bitslab_burst/{name}  scalar {:.2}us bitslab {:.2}us  ratio {ratio:.1}x (floor {floor}x)",
            scalar_t * 1e6,
            slab_t * 1e6,
        );
        assert_timing(
            ratio >= floor,
            &format!("bitslab {name} ratio {ratio:.1}x below the {floor}x floor"),
        );
        rows.push((name, scalar_t * 1e6, slab_t * 1e6, ratio));
    };

    // Row 1 — the worst-case round-robin block: the k last-turn owners wake
    // together, so the channel is a ~n-slot burst of evaluated silence
    // before the first success. Scalar dense pays k virtual polls plus the
    // per-slot channel machinery every slot; the kernel fills k closed-form
    // bit columns per tile and resolves the silence by popcount.
    let k = 32u32;
    let rr_ids: Vec<StationId> = (n - k..n).map(StationId).collect();
    let rr_pattern = WakePattern::simultaneous(&rr_ids, 0).unwrap();
    row(
        "round_robin_block_n4096_k32",
        SimConfig::new(n),
        &RoundRobin::new(n),
        &rr_pattern,
        10.0,
        &mut rows,
    );

    // Row 2 — mid-burst retirement: retiring round-robin under AllResolved
    // on the same block. Every success invalidates the planned words of the
    // retiring station, so tiles re-plan k times mid-burst — through the
    // kernel's *generic* fill (the protocol has no fill_tx_word), proving
    // the hint-assembled path carries the 10× too.
    let ret_ids: Vec<StationId> = (n - k..n).map(StationId).collect();
    let ret_pattern = WakePattern::simultaneous(&ret_ids, 5).unwrap();
    row(
        "retiring_rr_block_n4096_k32",
        SimConfig::new(n)
            .with_max_slots(500_000)
            .until_all_resolved(),
        &RetiringRoundRobin::new(n),
        &ret_pattern,
        10.0,
        &mut rows,
    );

    // Row 3 — a long wakeup_n contention burst (k = 64 colliding through
    // ~143 slots): eval-bound on both paths (the PRF coin per (station,
    // slot) dominates), so the kernel's win is the hoisted mixing prefix
    // and the skipped per-slot channel machinery — parity-or-better, not
    // 10×.
    let wn = WakeupN::new(MatrixParams::new(n));
    let long_ids: Vec<StationId> = (0..64u32).map(|i| StationId(i * 63 + 17)).collect();
    let long_pattern = WakePattern::simultaneous(&long_ids, 5).unwrap();
    row(
        "wakeup_n_long_burst_n4096_k64",
        SimConfig::new(n),
        &wn,
        &long_pattern,
        1.0,
        &mut rows,
    );

    // Row 4 — the adversarial no-skip shape: the wakeup_n burst that
    // succeeds 4 slots in. No kernel can win here (a tile fill always
    // plans more slots than the run has left); the tile-width ramp bounds
    // the forced-kernel loss, and the floor pins that bound (measured
    // 0.6-0.8x on the reference box; 0.25x before the ramp, which the 0.4
    // floor still rejects). The Auto engine avoids the loss entirely via
    // the scalar burst warmup — see the hybrid_policy rows.
    let c_ids: Vec<StationId> = (0..8u32).map(|i| StationId(i * 500 + 17)).collect();
    let c_pattern = WakePattern::simultaneous(&c_ids, 11).unwrap();
    row(
        "wakeup_n_short_burst_n4096_k8",
        SimConfig::new(n),
        &wn,
        &c_pattern,
        0.4,
        &mut rows,
    );

    // The Auto engine's burst windows run the same kernel once a window
    // survives its scalar warmup: on the long contention burst the word
    // kernel — not scalar stepping — must carry the window past slot 16,
    // and the run must beat scalar dense end to end.
    let auto_sim = Simulator::new(SimConfig::new(n));
    let dense_sim = Simulator::new(SimConfig::new(n).with_engine(EngineMode::Dense));
    let (auto_t, auto_out) = time_runs(|| auto_sim.run(&wn, &long_pattern, 0).unwrap());
    let (dense_t, dense_out) = time_runs(|| dense_sim.run(&wn, &long_pattern, 0).unwrap());
    assert_eq!(auto_out.first_success, dense_out.first_success);
    assert!(
        auto_out.word_slots > 0,
        "auto burst window did not use the word kernel"
    );
    assert!(
        auto_out.dense_steps > 0,
        "auto burst window skipped its scalar warmup"
    );
    let auto_ratio = dense_t / auto_t.max(1e-12);
    println!(
        "bitslab_burst/auto_wakeup_n_long_burst_n4096_k64  dense {:.2}us auto {:.2}us  ratio {auto_ratio:.1}x (floor 1.2x)",
        dense_t * 1e6,
        auto_t * 1e6,
    );
    assert_timing(
        auto_ratio >= 1.2,
        &format!("auto burst windows only {auto_ratio:.1}x of scalar dense"),
    );
    rows.push((
        "auto_wakeup_n_long_burst_n4096_k64",
        dense_t * 1e6,
        auto_t * 1e6,
        auto_ratio,
    ));

    // The per-PR perf artifact (BENCH_kernels.json, committed at the repo
    // root): one row per guard above, microseconds per run.
    if let Ok(path) = std::env::var("BENCH_KERNELS_JSON") {
        let mut json = String::from(
            "{\n  \"bench\": \"kernels/bitslab_burst\",\n  \"unit\": \"us_per_run\",\n  \"rows\": [\n",
        );
        for (i, (name, scalar_us, slab_us, ratio)) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"row\": \"{name}\", \"scalar_dense_us\": {scalar_us:.2}, \
                 \"kernel_us\": {slab_us:.2}, \"speedup\": {ratio:.2}}}{sep}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write BENCH_KERNELS_JSON");
        println!("bitslab_burst: wrote {path}");
    }
}

fn construction_cache(c: &mut Criterion) {
    // A whole ensemble of wakeup_with_s runs: the doubling schedule up to
    // F_{log n} costs ~650 µs to size and build at n = 4096 — far more
    // than simulating one sparse run — and is seed-independent, so the
    // cache builds it once per ensemble instead of once per run.
    let n = 4096u32;
    let runs = 64u64;
    let provider = FamilyProvider::default();
    let spec = EnsembleSpec::new(n, runs);
    let pattern_for = |seed: u64| wakeup_bench::burst_pattern(n, 8, 0, seed);

    // Correctness pin: cached and uncached ensembles are bit-identical.
    let plain = run_ensemble(
        &spec,
        |_| Box::new(WakeupWithS::new(n, 0, provider)),
        pattern_for,
    );
    let cache = ConstructionCache::new();
    let cached = run_ensemble_cached(
        &spec,
        &cache,
        |cache, _| Box::new(WakeupWithS::cached(n, 0, &provider, cache)),
        pattern_for,
    );
    assert_eq!(plain.samples, cached.samples);
    assert_eq!(plain.work, cached.work);

    let mut group = c.benchmark_group("construction_cache");
    group.bench_function("uncached_wakeup_with_s_n4096_r64", |b| {
        b.iter(|| {
            run_ensemble_stream(
                &spec,
                |_| Box::new(WakeupWithS::new(n, 0, provider)),
                pattern_for,
            )
            .runs
        })
    });
    group.bench_function("cached_wakeup_with_s_n4096_r64", |b| {
        b.iter(|| {
            // The cache lives exactly as long as the ensemble — its
            // construction and first-build cost are inside the measurement.
            let cache = ConstructionCache::new();
            run_ensemble_stream_cached(
                &spec,
                &cache,
                |cache, _| Box::new(WakeupWithS::cached(n, 0, &provider, cache)),
                pattern_for,
            )
            .runs
        })
    });
    group.finish();

    // One-shot summary with the ratio spelled out.
    let t0 = Instant::now();
    black_box(run_ensemble_stream(
        &spec,
        |_| Box::new(WakeupWithS::new(n, 0, provider)),
        pattern_for,
    ));
    let uncached_t = t0.elapsed();
    let t0 = Instant::now();
    let cache = ConstructionCache::new();
    black_box(run_ensemble_stream_cached(
        &spec,
        &cache,
        |cache, _| Box::new(WakeupWithS::cached(n, 0, &provider, cache)),
        pattern_for,
    ));
    let cached_t = t0.elapsed();
    let ratio = uncached_t.as_secs_f64() / cached_t.as_secs_f64().max(1e-9);
    println!(
        "construction_cache summary: uncached {uncached_t:?} | cached {cached_t:?} | speedup {ratio:.1}x"
    );
    assert_timing(
        ratio >= 2.0,
        &format!("construction cache speedup only {ratio:.1}x (expected >= 2x)"),
    );
}

fn mega_station(_c: &mut Criterion) {
    // Guard row — the mega-station memory reduction. A block wake of half
    // the universe is one equivalence class for round-robin: at n = 2^24
    // the class engine must represent the 2^23 stations with at least 100×
    // fewer live units (it holds exactly one). Deterministic counter pin,
    // so it always runs (no BENCH_QUICK exemption).
    let n = 1u32 << 24;
    let k = n / 2;
    let pattern = WakePattern::range(0, k, u64::from(k)).unwrap();
    let classed_sim = Simulator::new(
        SimConfig::new(n)
            .with_classes()
            .without_per_station_detail(),
    );
    let rr = RoundRobin::new(n);
    let t0 = Instant::now();
    let mega = classed_sim.run(&rr, &pattern, 0).unwrap();
    let mega_t = t0.elapsed();
    assert!(mega.solved(), "mega block run must solve");
    let reduction = f64::from(k) / mega.peak_units.max(1) as f64;
    println!(
        "mega_station/round_robin_n2^24_k2^23       {} slots, {} unit(s), {reduction:.0}x stations/unit in {mega_t:?}",
        mega.slots_simulated, mega.peak_units,
    );
    assert!(
        reduction >= 100.0,
        "mega-station memory reduction collapsed to {reduction:.0}x (expected >= 100x)"
    );

    // Bit-identity pin at a size the concrete engine can still afford: the
    // same block shape at n = 2^16 must produce identical observables, with
    // the concrete engine holding one unit per station.
    let small_n = 1u32 << 16;
    let small_k = small_n / 2;
    let small = WakePattern::range(0, small_k, u64::from(small_k)).unwrap();
    let cfg = SimConfig::new(small_n).with_transcript();
    let small_rr = RoundRobin::new(small_n);
    let concrete = Simulator::new(cfg.clone())
        .run(&small_rr, &small, 0)
        .unwrap();
    let classed = Simulator::new(cfg.with_classes())
        .run(&small_rr, &small, 0)
        .unwrap();
    assert_eq!(classed.first_success, concrete.first_success);
    assert_eq!(classed.transcript, concrete.transcript);
    assert_eq!(classed.transmissions, concrete.transmissions);
    assert_eq!(concrete.peak_units, u64::from(small_k));
    assert_eq!(classed.peak_units, 1);

    // Wake-time economy: the classed mega run must beat the concrete run
    // at 1/256 the universe on wall clock — admitting 2^23 stations as one
    // RLE class is cheaper than boxing 2^15 of them.
    let (classed_t, _) = time_runs(|| classed_sim.run(&rr, &pattern, 0).unwrap());
    let concrete_small_sim = Simulator::new(SimConfig::new(small_n));
    let (concrete_t, _) = time_runs(|| concrete_small_sim.run(&small_rr, &small, 0).unwrap());
    println!(
        "mega_station/classed_2^24_vs_concrete_2^16 classed {:.2}us concrete {:.2}us",
        classed_t * 1e6,
        concrete_t * 1e6,
    );
    assert_timing(
        classed_t < concrete_t,
        &format!(
            "classed mega run ({:.2}us) slower than concrete at 1/256 scale ({:.2}us)",
            classed_t * 1e6,
            concrete_t * 1e6
        ),
    );
}

fn trace_overhead(_c: &mut Criterion) {
    // Guard row — tracing must be free when nobody listens. The explicit
    // `run_traced(..., &mut NoopTracer)` dynamic-dispatch path is held to
    // ≤ 5% over the plain `run` on the gap-heavy round-robin block row
    // (the most emission-dense shape per unit work: every slot-class event
    // fires, nothing amortizes them).
    let n = 4096u32;
    let k = 8usize;
    let rr_ids: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
    let pattern = WakePattern::simultaneous(&rr_ids, 0).unwrap();
    let rr = RoundRobin::new(n);
    let sim = Simulator::new(SimConfig::new(n));
    let (plain_t, plain) = time_runs(|| sim.run(&rr, &pattern, 0).unwrap());
    let (noop_t, noop) = time_runs(|| sim.run_traced(&rr, &pattern, 0, &mut NoopTracer).unwrap());
    assert_eq!(plain.first_success, noop.first_success);
    assert_eq!(plain.transmissions, noop.transmissions);
    // Guarded at 5%: the row is sub-microsecond, so a couple of percent is
    // timer/scheduler jitter, not dispatch cost (measured 1.00-1.02x).
    let ratio = noop_t / plain_t.max(1e-12);
    println!(
        "trace_overhead/round_robin_n4096_k8        plain {:.2}us noop-traced {:.2}us  ratio {ratio:.3}x (target <= 1.05x)",
        plain_t * 1e6,
        noop_t * 1e6,
    );
    assert_timing(
        ratio <= 1.05,
        &format!("NoopTracer overhead {ratio:.3}x exceeds the 5% jitter budget"),
    );

    // A recording tracer on the same row, for the README's cost table
    // (informational — recording legitimately costs; no assertion).
    let (rec_t, _) = time_runs(|| {
        let mut rec = RecordingTracer::with_filter(TraceFilter::all());
        sim.run_traced(&rr, &pattern, 0, &mut rec).unwrap()
    });
    println!(
        "trace_overhead/recording_all_events        {:.2}us ({:.2}x of plain)",
        rec_t * 1e6,
        rec_t / plain_t.max(1e-12),
    );
}

fn adversary_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_kernels");
    // The Theorem 2.1 swap chain against round-robin (EXP-LB's kernel).
    for &(n, k) in &[(64u32, 8u32), (256, 32)] {
        group.bench_with_input(
            BenchmarkId::new("swap_chain_rr", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let adv = SwapChainAdversary::new(n, k);
                let sched = selectors::schedule::RoundRobinSchedule::new(n);
                b.iter(|| black_box(adv.run(&sched).forced_rounds))
            },
        );
    }
    // The spoiler local search against wakeup(n) (EXP-ABL-ADV's kernel).
    group.bench_function("spoiler_wakeup_n_n128_k6", |b| {
        let n = 128u32;
        let sim = Simulator::new(SimConfig::new(n));
        let protocol = WakeupN::new(MatrixParams::new(n));
        let ids: Vec<StationId> = (0..6).map(|i| StationId(i * 20)).collect();
        let start = WakePattern::simultaneous(&ids, 0).unwrap();
        let spoiler = SpoilerSearch::new(8, 100_000);
        b.iter(|| {
            black_box(
                spoiler
                    .search(&sim, &protocol, start.clone(), 1)
                    .unwrap()
                    .moves,
            )
        })
    });
    group.finish();
}

fn verification_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification_kernels");
    // Exhaustive selectivity verification (EXP-SEL ground truth).
    group.bench_function("exhaustive_n14_k3", |b| {
        let fam = RandomFamilyBuilder::new(14, 3).seed(7).build_explicit();
        b.iter(|| black_box(verify::selective_exhaustive(&fam).is_ok()))
    });
    // Monte-Carlo falsification at scale.
    group.bench_function("monte_carlo_n1024_k16_200trials", |b| {
        let fam = RandomFamilyBuilder::new(1024, 16).seed(7).build_explicit();
        b.iter(|| black_box(verify::selective_monte_carlo(&fam, 200, 3).is_ok()))
    });
    // Bounded waking-matrix certification (EXP-CERT's kernel).
    group.bench_function("certify_n6_k2_w3", |b| {
        let matrix = WakingMatrix::new(MatrixParams::new(6));
        let cfg = CertifyConfig {
            k_max: 2,
            window: 3,
            horizon_scale: 2,
        };
        b.iter(|| black_box(wakeup_core::certify::certify(&matrix, cfg).is_ok()))
    });
    group.finish();
}

criterion_group!(
    benches,
    family_construction,
    matrix_oracle,
    simulator_throughput,
    protocol_latency,
    engine_dense_vs_sparse,
    hybrid_policy,
    bitslab_burst,
    construction_cache,
    mega_station,
    trace_overhead,
    adversary_kernels,
    verification_kernels
);
criterion_main!(benches);
