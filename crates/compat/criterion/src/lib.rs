//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple adaptive wall-clock timer instead of criterion's full
//! statistical machinery.
//!
//! Each benchmark is warmed up once, then run in batches sized so the
//! measurement takes roughly [`MEASURE_TARGET`]; the mean per-iteration time
//! is printed in a criterion-like one-line format. Set the environment
//! variable `BENCH_QUICK=1` to run every benchmark exactly once (smoke mode).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark measurement.
pub const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Cap on the measured iterations of one benchmark.
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark driver handed to registered benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An identifier `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { last_mean: None }
    }

    /// Run `f` repeatedly and record its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if std::env::var_os("BENCH_QUICK").is_some() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.last_mean = Some(start.elapsed());
            return;
        }
        // Warm-up and calibration: time a single iteration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (MEASURE_TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        self.last_mean = Some(total / iters as u32);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("{label:<55} time: [{mean:?}]"),
        None => println!("{label:<55} (no measurement)"),
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), |b| f(b));
    }
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// End the group (formatting no-op).
    pub fn finish(self) {}
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.last_mean.is_some());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(7u32)));
        group.finish();
        c.bench_function("top", |b| b.iter(|| std::hint::black_box(1u8)));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "n4096").to_string(), "f/n4096");
    }
}
