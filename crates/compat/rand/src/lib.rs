//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to a crate
//! registry, so the few pieces of the `rand` 0.8 API that the simulator uses
//! are reimplemented here: [`RngCore`], [`Rng`] (with `gen`, `gen_bool`,
//! `gen_range`), [`SeedableRng::seed_from_u64`] and the slice helpers in
//! [`seq`]. The statistical requirements of the workspace are mild (seeded,
//! reproducible simulation draws); the implementations below are standard
//! textbook samplers over a caller-provided `u64` stream.
//!
//! Semantics note: streams are *not* bit-compatible with crates.io `rand`;
//! everything in this repository only relies on determinism under a fixed
//! seed, never on matching upstream streams.

#![forbid(unsafe_code)]

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an `RngCore` (the `Standard`
/// distribution of real `rand`, collapsed into one trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by 128-bit widening multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        f64::draw(self) < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffling operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffle the first `amount` elements into place; returns
        /// `(shuffled_prefix, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let remaining = self.len() - i;
                let j = i + uniform_below(rng, remaining as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so draws are well spread.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..2000 {
            let a: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&a));
            let b: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&b));
            let c: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&c));
            let d: usize = rng.gen_range(0..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_prefix_is_distinct() {
        let mut rng = Counter(4);
        let mut v: Vec<u32> = (0..30).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(prefix.len(), 10);
        assert_eq!(rest.len(), 20);
        let mut all: Vec<u32> = prefix.to_vec();
        all.extend_from_slice(rest);
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }
}
