//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API that this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`Just`], `any::<bool>()`, the `collection::vec` and
//! `collection::btree_set` strategies, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a seed derived from the test name, so every
//!   run of a given test explores the same inputs (fully reproducible);
//! * there is no shrinking — a failing case panics with the ordinary
//!   assertion message (the deterministic seed makes reruns exact);
//! * `prop_assert*` are plain assertions rather than early returns.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic case generator.
// ---------------------------------------------------------------------------

/// The per-test deterministic random source driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from the test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name bytes.
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------------

/// Size specifications accepted by collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{BTreeSet, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate sets whose elements come from `element` and whose size is
    /// drawn from `size` (best effort: duplicates are retried a bounded
    /// number of times, like real proptest's rejection sampling).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 + 32 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration and macros.
// ---------------------------------------------------------------------------

/// Choosing among explicit values (subset of `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding one of a fixed list of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly select one of `items` per generated case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests: each named function runs `config.cases` times with
/// fresh inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::collection::{btree_set, vec};
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = Strategy::generate(&(5u32..10), &mut rng);
            assert!((5..10).contains(&x));
            let y = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..200 {
            let v = Strategy::generate(&vec(0u64..100, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            let s = Strategy::generate(&btree_set(0u32..1000, 2..=5usize), &mut rng);
            assert!((2..=5).contains(&s.len()));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let strat = (1usize..4).prop_flat_map(|len| vec(0u32..10, len));
        let mut rng = TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_runs_and_asserts(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn macro_with_config(x in 0u64..5) {
            prop_assume!(x > 0);
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
