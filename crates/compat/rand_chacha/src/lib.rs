//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8 keystream
//! generator implementing the local `rand` traits.
//!
//! The keystream is a faithful ChaCha permutation with 8 double-rounds
//! (Bernstein's design), keyed from a 64-bit seed expanded through
//! SplitMix64. Streams are deterministic under a fixed seed but are **not**
//! bit-compatible with crates.io `rand_chacha` (nothing in this workspace
//! depends on upstream streams).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds over the local `rand` traits.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[inline]
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// The ChaCha "expand 32-byte k" constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter (words 12–13).
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        // Expand the seed into the 256-bit key via SplitMix64.
        for i in 0..4 {
            let w = split_mix64(seed.wrapping_add(i as u64));
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word();
        let hi = self.next_word();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        // 1024 draws × 64 bits: expect ≈ 32768 ones.
        assert!((30000..=35000).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x: u64 = rng.gen_range(0..100);
        assert!(x < 100);
        let _: bool = rng.gen();
    }

    #[test]
    fn chacha_permutation_known_shape() {
        // The all-zero input block must not map to itself (sanity that the
        // rounds actually mix).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = rng.next_u64();
        assert_ne!(first, 0);
    }
}
