//! Summary statistics over latency samples.

/// Summary statistics of a sample of non-negative measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize `values`. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count >= 2 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Summary {
            count,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
        })
    }

    /// Summarize integer samples (convenience for slot counts).
    pub fn of_u64(values: &[u64]) -> Option<Summary> {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96·sd/√count`).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.sd / (self.count as f64).sqrt()
    }

    /// Compact one-line rendering used in experiment output.
    pub fn render(&self) -> String {
        format!(
            "mean {:.1} ±{:.1} | median {:.1} | p90 {:.1} | max {:.0} (N={})",
            self.mean,
            self.ci95(),
            self.median,
            self.p90,
            self.max,
            self.count
        )
    }
}

/// Percentile by linear interpolation on a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_u64(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample sd of 1..5 = sqrt(2.5).
        assert!((s.sd - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.9), 9.0);
        let s = Summary::of(&[
            0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
        ])
        .unwrap();
        assert_eq!(s.p90, 90.0);
        assert!((s.p99 - 99.0).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn of_u64_matches_of() {
        let a = Summary::of_u64(&[1, 2, 3]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 5.0, 9.0, 2.0]).unwrap();
        let values: Vec<f64> = (0..400).map(|i| (i % 9) as f64 + 1.0).collect();
        let large = Summary::of(&values).unwrap();
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn render_mentions_all_fields() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let r = s.render();
        assert!(r.contains("mean") && r.contains("median") && r.contains("N=2"));
    }
}
