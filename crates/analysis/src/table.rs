//! Markdown / CSV table rendering for experiment output.

use std::fmt::Write as _;

/// A simple rectangular table with headers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured Markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let pad = w - cell.chars().count();
                let _ = write!(out, " {}{} |", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines — the shared [`csv_quote`](crate::serial::csv_quote)
    /// rule).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| crate::serial::csv_quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Write both renderings to stdout (the experiment binaries' default).
    pub fn print(&self) {
        // lint: allow(sink-discipline) — Table::print IS the explicit render-to-stdout entry the CLI layer calls
        print!("{}", self.to_markdown());
    }

    /// Save the CSV rendering to `path`.
    pub fn save_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(["n", "k", "latency"]);
        t.push_row(["64", "4", "31"]);
        t.push_row(["1024", "16", "220"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| n"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("1024"));
        // All lines have equal width (aligned columns).
        let widths: std::collections::HashSet<usize> =
            lines.iter().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "unaligned markdown:\n{md}");
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["with\"quote", "multi\nline"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.contains("\"multi\nline\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "x\n");
        assert_eq!(t.to_markdown().lines().count(), 2);
    }

    #[test]
    fn save_csv_roundtrip() {
        let mut t = Table::new(["a"]);
        t.push_row(["1"]);
        let dir = std::env::temp_dir().join("wakeup_analysis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        std::fs::remove_file(&path).ok();
    }
}
