//! # wakeup-analysis — measurement harness for the reproduction experiments
//!
//! Tools to turn simulator runs into the tables of `EXPERIMENTS.md`:
//!
//! * [`ensemble`] — a multi-seed experiment runner pairing a protocol
//!   factory with a wake-pattern generator, executed on the
//!   [`wakeup_runner`] work-stealing pool with deterministic (seed-ordered)
//!   streaming aggregation;
//! * [`stats`] — summary statistics (mean/sd/median/quantiles/max, normal
//!   95% confidence intervals) over latency samples;
//! * [`fit`] — least-squares fits of measured latency against the paper's
//!   model shapes (`k·log(n/k)+1`, `k·log n·log log n`, `k·log² n`,
//!   `log n`, `log k`, `n−k+1`) with `R²`, used to check *shape* agreement
//!   rather than absolute constants — against the mean or the P² p90 curve
//!   ([`fit::Metric`]);
//! * [`table`] — Markdown and CSV rendering of experiment tables;
//! * [`serial`] — dependency-free machine-readable records
//!   ([`serial::Value`], [`serial::Record`]) with JSON / CSV renderings,
//!   the payload type of the experiment sinks
//!   ([`EnsembleSummary::record`], [`WorkStats::record`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod fit;
pub mod serial;
pub mod stats;
pub mod table;

pub use ensemble::{
    run_ensemble, run_ensemble_cached, run_ensemble_chunked, run_ensemble_stream,
    run_ensemble_stream_cached, EnsembleResult, EnsembleSpec, EnsembleSummary, TraceSpec,
    WorkStats,
};
pub use fit::{fit_model, fit_model_by, rank_models_by, FitResult, Metric, Model, SweepPoint};
pub use serial::{Record, Value};
pub use stats::Summary;
pub use table::Table;

/// Convenient glob import.
pub mod prelude {
    pub use crate::ensemble::{
        run_ensemble, run_ensemble_cached, run_ensemble_chunked, run_ensemble_stream,
        run_ensemble_stream_cached, EnsembleResult, EnsembleSpec, EnsembleSummary, TraceSpec,
        WorkStats,
    };
    pub use crate::fit::{
        fit_model, fit_model_by, rank_models_by, FitResult, Metric, Model, SweepPoint,
    };
    pub use crate::serial::{Record, Value};
    pub use crate::stats::Summary;
    pub use crate::table::Table;
}
