//! Multi-seed, multi-threaded experiment ensembles.
//!
//! An ensemble pairs a *protocol factory* with a *pattern generator*, both
//! keyed by a run index, executes `runs` independent simulations across
//! worker threads (`std::thread::scope` — no extra dependencies), and
//! aggregates latency and energy.
//!
//! Factories are indexed rather than shared so that deterministic protocols
//! can vary their combinatorial seed per run (a fixed deterministic protocol
//! on a fixed pattern would measure the same run `R` times).

use mac_sim::metrics::{EnergyStats, LatencySample};
use mac_sim::{EngineMode, FeedbackModel, Protocol, SimConfig, Simulator, WakePattern};
use wakeup_core as _; // semantic dependency: ensembles drive core protocols

/// Parameters of an ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleSpec {
    /// Universe size.
    pub n: u32,
    /// Number of independent runs.
    pub runs: u64,
    /// Slot cap per run (`None`: the simulator default for `n`).
    pub max_slots: Option<u64>,
    /// Channel feedback model.
    pub feedback: FeedbackModel,
    /// Base seed; run `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads (default: available parallelism).
    pub threads: usize,
    /// Engine path ([`EngineMode::Auto`] skips silent slots when the
    /// protocol allows; [`EngineMode::Dense`] forces per-slot polling, e.g.
    /// for speedup measurements).
    pub engine: EngineMode,
}

impl EnsembleSpec {
    /// A spec with `runs` runs on `n` stations and sensible defaults.
    pub fn new(n: u32, runs: u64) -> Self {
        EnsembleSpec {
            n,
            runs,
            max_slots: None,
            feedback: FeedbackModel::NoCollisionDetection,
            base_seed: 0,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            engine: EngineMode::Auto,
        }
    }

    /// Override the per-run slot cap.
    pub fn with_max_slots(mut self, cap: u64) -> Self {
        self.max_slots = Some(cap);
        self
    }

    /// Override the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Override the feedback model.
    pub fn with_feedback(mut self, fb: FeedbackModel) -> Self {
        self.feedback = fb;
        self
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the engine path.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.n)
            .with_feedback(self.feedback)
            .with_engine(self.engine);
        if let Some(cap) = self.max_slots {
            cfg = cfg.with_max_slots(cap);
        }
        cfg
    }
}

/// Aggregated engine-work counters over an ensemble — the measurement
/// behind the dense-vs-sparse speedup claims. Slots tell how much simulated
/// time was covered; polls tell how much work the engine actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Total slots covered (`Outcome::slots_simulated` summed over runs).
    pub slots: u64,
    /// Total `Station::act` calls (`Outcome::polls` summed over runs).
    pub polls: u64,
    /// Total slots skipped in bulk by the sparse engine
    /// (`Outcome::skipped_slots` summed over runs).
    pub skipped: u64,
}

impl WorkStats {
    /// Fold one outcome into the counters.
    pub fn absorb(&mut self, out: &mac_sim::Outcome) {
        self.slots += out.slots_simulated;
        self.polls += out.polls;
        self.skipped += out.skipped_slots;
    }

    /// Polls per covered slot — `≈ k` on the dense path, `≪ 1` when the
    /// sparse engine is skipping well.
    pub fn polls_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.polls as f64 / self.slots as f64
        }
    }

    /// Fraction of covered slots that were skipped in bulk.
    pub fn skip_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.skipped as f64 / self.slots as f64
        }
    }
}

/// Aggregated results of an ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleResult {
    /// One latency sample per run, in run order.
    pub samples: Vec<LatencySample>,
    /// Energy (transmission) statistics over all runs.
    pub energy: EnergyStats,
    /// Engine-work counters (slots vs polls vs skipped) over all runs.
    pub work: WorkStats,
}

impl EnsembleResult {
    /// Latencies of the solved runs.
    pub fn solved_latencies(&self) -> Vec<u64> {
        self.samples.iter().filter_map(|s| s.solved()).collect()
    }

    /// Number of censored (cap-hit) runs.
    pub fn censored(&self) -> usize {
        self.samples.len() - self.solved_latencies().len()
    }

    /// Worst observed latency, counting censored runs pessimistically.
    pub fn worst(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.pessimistic())
            .max()
            .unwrap_or(0)
    }

    /// Summary statistics of the solved latencies.
    pub fn summary(&self) -> Option<crate::stats::Summary> {
        crate::stats::Summary::of_u64(&self.solved_latencies())
    }
}

/// Run an ensemble: run `i ∈ [0, spec.runs)` simulates
/// `protocol_for(base_seed + i)` against `pattern_for(base_seed + i)`.
///
/// Panics if any run fails validation (a bug in the generator, not a
/// measurement outcome).
pub fn run_ensemble<P, G>(spec: &EnsembleSpec, protocol_for: P, pattern_for: G) -> EnsembleResult
where
    P: Fn(u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    let cfg = spec.sim_config();
    let runs: Vec<u64> = (0..spec.runs).map(|i| spec.base_seed + i).collect();
    let threads = spec.threads.min(runs.len().max(1));
    let chunk = runs.len().div_ceil(threads);
    let mut results: Vec<Option<(LatencySample, mac_sim::Outcome)>> = vec![None; runs.len()];

    std::thread::scope(|scope| {
        for (chunk_idx, (seeds, out_chunk)) in runs
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let cfg = cfg.clone();
            let protocol_for = &protocol_for;
            let pattern_for = &pattern_for;
            let _ = chunk_idx;
            scope.spawn(move || {
                let sim = Simulator::new(cfg);
                for (seed, slot) in seeds.iter().zip(out_chunk.iter_mut()) {
                    let protocol = protocol_for(*seed);
                    let pattern = pattern_for(*seed);
                    let outcome = sim
                        .run(protocol.as_ref(), &pattern, *seed)
                        .expect("ensemble run failed validation");
                    *slot = Some((LatencySample::from_outcome(&outcome), outcome));
                }
            });
        }
    });

    let mut samples = Vec::with_capacity(runs.len());
    let mut energy = EnergyStats::new();
    let mut work = WorkStats::default();
    for r in results.into_iter() {
        let (sample, outcome) = r.expect("worker thread left a hole");
        samples.push(sample);
        energy.absorb(&outcome);
        work.absorb(&outcome);
    }
    EnsembleResult {
        samples,
        energy,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::pattern::IdChoice;
    use mac_sim::StationId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wakeup_core::prelude::*;

    fn k_pattern(n: u32, k: usize, seed: u64) -> WakePattern {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids = IdChoice::Random.pick(n, k, &mut rng);
        WakePattern::uniform_window(&ids, 0, 16, &mut rng).unwrap()
    }

    #[test]
    fn ensemble_runs_and_aggregates() {
        let n = 64u32;
        let spec = EnsembleSpec::new(n, 16).with_threads(4);
        let res = run_ensemble(
            &spec,
            |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
            |seed| k_pattern(n, 4, seed),
        );
        assert_eq!(res.samples.len(), 16);
        assert_eq!(res.censored(), 0, "wakeup(n) should solve all runs");
        let summary = res.summary().unwrap();
        assert_eq!(summary.count, 16);
        assert!(summary.max >= summary.median);
        assert!(res.energy.runs == 16);
        assert!(res.energy.total_transmissions > 0);
    }

    #[test]
    fn work_stats_track_sparse_savings() {
        // Round-robin gives O(1) hints, so the sparse engine polls far less
        // than once per slot, while a dense run polls k times per slot.
        use mac_sim::EngineMode;
        let n = 256u32;
        let spec = EnsembleSpec::new(n, 8).with_threads(2);
        let sparse = run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 6, seed),
        );
        let dense = run_ensemble(
            &spec.clone().with_engine(EngineMode::Dense),
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 6, seed),
        );
        assert_eq!(sparse.samples, dense.samples, "outcomes must be identical");
        assert_eq!(
            sparse.work.slots, dense.work.slots,
            "paths must cover the same slots"
        );
        assert!(sparse.work.skipped > 0);
        assert_eq!(dense.work.skipped, 0);
        assert!(
            sparse.work.polls * 10 < dense.work.polls,
            "sparse polls {} not ≪ dense polls {}",
            sparse.work.polls,
            dense.work.polls
        );
        assert!(sparse.work.polls_per_slot() < 1.0);
        assert!(sparse.work.skip_fraction() > 0.5);
    }

    #[test]
    fn ensemble_is_deterministic_given_base_seed() {
        let n = 32u32;
        let spec = EnsembleSpec::new(n, 8).with_base_seed(99).with_threads(2);
        let run = || {
            run_ensemble(
                &spec,
                |seed| {
                    Box::new(WakeupWithK::new(
                        n,
                        4,
                        FamilyProvider::random_with_seed(seed),
                    ))
                },
                |seed| k_pattern(n, 4, seed),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_base_seeds_differ() {
        let n = 32u32;
        let mk = |base: u64| {
            run_ensemble(
                &EnsembleSpec::new(n, 8).with_base_seed(base),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 3, seed),
            )
        };
        let a = mk(0);
        let b = mk(1_000_000);
        // Extremely likely to differ somewhere.
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn censored_runs_are_counted() {
        // A protocol that never transmits gets censored on every run.
        struct Silent;
        struct SilentStation;
        impl mac_sim::Station for SilentStation {
            fn wake(&mut self, _s: mac_sim::Slot) {}
            fn act(&mut self, _t: mac_sim::Slot) -> mac_sim::Action {
                mac_sim::Action::Listen
            }
        }
        impl mac_sim::Protocol for Silent {
            fn station(&self, _id: StationId, _seed: u64) -> Box<dyn mac_sim::Station> {
                Box::new(SilentStation)
            }
            fn name(&self) -> String {
                "silent".into()
            }
        }
        let spec = EnsembleSpec::new(8, 4).with_max_slots(50);
        let res = run_ensemble(&spec, |_| Box::new(Silent), |seed| k_pattern(8, 2, seed));
        assert_eq!(res.censored(), 4);
        assert!(res.summary().is_none());
        assert_eq!(res.worst(), 50);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let n = 32u32;
        let mk = |threads: usize| {
            run_ensemble(
                &EnsembleSpec::new(n, 10).with_threads(threads),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 3, seed),
            )
        };
        assert_eq!(mk(1).samples, mk(8).samples);
    }
}
