//! Multi-seed, multi-threaded experiment ensembles.
//!
//! An ensemble pairs a *protocol factory* with a *pattern generator*, both
//! keyed by a run seed, and executes `runs` independent simulations. Since
//! the sparse engine made single runs cheap, scheduling is the bottleneck,
//! so execution rides on [`wakeup_runner`]'s work-stealing pool: short runs
//! are batched per worker (batch size auto-calibrated), idle workers steal,
//! and per-run results are folded **in seed order** on the caller's thread —
//! so every aggregate is bit-identical across thread counts.
//!
//! Two aggregation styles:
//!
//! * [`run_ensemble`] — materializes one [`LatencySample`] per run
//!   ([`EnsembleResult`]), for experiments that post-process samples;
//! * [`run_ensemble_stream`] — streaming accumulators only
//!   ([`EnsembleSummary`]: Welford stats, P² quantile sketches, energy and
//!   work counters), so million-run sweeps never hold per-run results —
//!   transient memory is the reorder buffer, O(threads·batch) digests.
//!
//! [`run_ensemble_chunked`] preserves the pre-runner chunk-per-thread
//! scheduling as a reference: tests pin the runner's output to it
//! bit-for-bit and the `runner_throughput` bench measures the speedup
//! against it.
//!
//! Factories are indexed rather than shared so that deterministic protocols
//! can vary their combinatorial seed per run (a fixed deterministic protocol
//! on a fixed pattern would measure the same run `R` times).

use mac_sim::metrics::{EnergyStats, LatencySample, OutcomeDigest};
use mac_sim::tracer::{RecordingTracer, TraceFilter};
use mac_sim::{
    ChannelModel, ChurnScript, EngineMode, FaultCounts, FeedbackModel, PolicyParams,
    PopulationMode, Protocol, SimConfig, Simulator, WakePattern,
};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wakeup_core::ConstructionCache;
use wakeup_runner::collect::from_fn;
use wakeup_runner::{OnlineStats, P2Quantile, Progress, RunStats, Runner};

/// Structured-trace capture for an ensemble: which events to keep and
/// where the JSONL lines go.
///
/// Each run records its admitted events into a private in-memory buffer on
/// the worker that executes it; the serialized lines (each prefixed with
/// the run index, `{"run":3,"ev":…}` — the same schema as
/// [`StreamTracer`](mac_sim::tracer::StreamTracer)) are then written to
/// `sink` by the seed-ordered reducer on the calling thread. The resulting
/// byte stream is therefore **bit-identical across thread counts**:
/// scheduling decides only who records, never the order lines land.
///
/// Per-kind sampling (see [`TraceFilter::sample_every`]) restarts at every
/// run, so the stream is the concatenation of the runs' individual
/// streams regardless of batching.
#[derive(Clone)]
pub struct TraceSpec {
    /// Event admission mask and per-kind sampling stride.
    pub filter: TraceFilter,
    /// Shared line sink (a file, a `Vec<u8>`, …). Locked only by the
    /// reducer, once per batch.
    pub sink: Arc<Mutex<dyn Write + Send>>,
    /// Optional sidecar for **non-deterministic** execution records (one
    /// `{"record":"ensemble",…}` line per ensemble plus one
    /// `{"record":"worker",…}` line per worker: wall-clock phase timers,
    /// steals, queue high-waters). Segregated from `sink` so the trace
    /// stream itself stays diffable across machines and thread counts.
    pub exec: Option<Arc<Mutex<dyn Write + Send>>>,
    /// Ensemble ordinal shared across clones — tags exec records when one
    /// sidecar collects several ensembles (a whole experiment sweep).
    seq: Arc<std::sync::atomic::AtomicU64>,
}

impl TraceSpec {
    /// Trace into an existing shared sink.
    pub fn new(filter: TraceFilter, sink: Arc<Mutex<dyn Write + Send>>) -> Self {
        TraceSpec {
            filter,
            sink,
            exec: None,
            seq: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Trace into a newly-wrapped writer.
    pub fn to_writer<W: Write + Send + 'static>(filter: TraceFilter, out: W) -> Self {
        Self::new(filter, Arc::new(Mutex::new(out)))
    }

    /// Also write per-ensemble execution records (wall-clock tier) to a
    /// separate sidecar sink.
    pub fn with_exec_sink(mut self, exec: Arc<Mutex<dyn Write + Send>>) -> Self {
        self.exec = Some(exec);
        self
    }
}

impl fmt::Debug for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSpec")
            .field("filter", &self.filter)
            .field("sink", &"<dyn Write>")
            .field("exec", &self.exec.as_ref().map(|_| "<dyn Write>"))
            .finish()
    }
}

/// Parameters of an ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleSpec {
    /// Universe size.
    pub n: u32,
    /// Number of independent runs.
    pub runs: u64,
    /// Slot cap per run (`None`: the simulator default for `n`).
    pub max_slots: Option<u64>,
    /// Channel feedback model.
    pub feedback: FeedbackModel,
    /// Channel fault model (default [`ChannelModel::ideal`] — no faults,
    /// bit-identical to a spec built before fault injection existed).
    pub channel: ChannelModel,
    /// Station churn script (default [`ChurnScript::none`]).
    pub churn: ChurnScript,
    /// Base seed; run `i` uses seed `base_seed.wrapping_add(i)` (wrapping,
    /// so a base seed near `u64::MAX` is valid and cannot overflow).
    pub base_seed: u64,
    /// Worker threads (default: available parallelism). Zero is treated as
    /// one — the run path clamps, not just [`with_threads`](Self::with_threads).
    pub threads: usize,
    /// Engine path ([`EngineMode::Auto`] skips silent slots when the
    /// protocol allows; [`EngineMode::Dense`] forces per-slot polling, e.g.
    /// for speedup measurements).
    pub engine: EngineMode,
    /// Station representation ([`PopulationMode::Concrete`] boxes one
    /// station per id; [`PopulationMode::Classes`] aggregates wake batches
    /// into equivalence classes — memory O(classes), the mega-n path).
    pub population: PopulationMode,
    /// Materialize per-station transmission counts (`Outcome::per_station_tx`).
    /// Off for mega-n sweeps where an O(n) vector per run defeats the
    /// class engine's O(classes) memory.
    pub per_station_detail: bool,
    /// Live progress reporting for long sweeps (`None`: silent).
    pub progress: Option<Progress>,
    /// Structured-trace capture (`None`: untraced — the zero-cost
    /// [`NoopTracer`](mac_sim::tracer::NoopTracer) path). Honored by
    /// [`run_ensemble`] and [`run_ensemble_stream`]; the chunked reference
    /// scheduler ignores it.
    pub trace: Option<TraceSpec>,
    /// Self-calibrate the adaptive engine constants
    /// ([`PolicyParams::calibrated`]) against one sample protocol instance
    /// before the sweep, instead of the hand-tuned defaults. Off by default:
    /// calibration times real code, so the *work counters* of a calibrated
    /// sweep are machine-dependent (outcomes never are).
    pub calibrate: bool,
}

impl EnsembleSpec {
    /// A spec with `runs` runs on `n` stations and sensible defaults.
    pub fn new(n: u32, runs: u64) -> Self {
        EnsembleSpec {
            n,
            runs,
            max_slots: None,
            feedback: FeedbackModel::NoCollisionDetection,
            channel: ChannelModel::ideal(),
            churn: ChurnScript::none(),
            base_seed: 0,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            engine: EngineMode::Auto,
            population: PopulationMode::default(),
            per_station_detail: true,
            progress: None,
            trace: None,
            calibrate: false,
        }
    }

    /// Override the per-run slot cap.
    pub fn with_max_slots(mut self, cap: u64) -> Self {
        self.max_slots = Some(cap);
        self
    }

    /// Override the base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Override the feedback model.
    pub fn with_feedback(mut self, fb: FeedbackModel) -> Self {
        self.feedback = fb;
        self
    }

    /// Inject channel faults (erasure / false collision / capture).
    pub fn with_channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Inject station churn (crashes and re-wakes).
    pub fn with_churn(mut self, churn: ChurnScript) -> Self {
        self.churn = churn;
        self
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the engine path.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Override the station representation.
    pub fn with_population(mut self, population: PopulationMode) -> Self {
        self.population = population;
        self
    }

    /// Aggregate wake batches into equivalence classes
    /// ([`PopulationMode::Classes`]).
    pub fn with_classes(mut self) -> Self {
        self.population = PopulationMode::Classes;
        self
    }

    /// Skip per-station transmission counts — required for mega-n class
    /// sweeps to keep per-run memory O(classes).
    pub fn without_per_station_detail(mut self) -> Self {
        self.per_station_detail = false;
        self
    }

    /// Report progress (runs/s, steals) to stderr roughly every `every`.
    pub fn with_progress(mut self, every: Duration, label: impl Into<String>) -> Self {
        self.progress = Some(Progress::new(every, label));
        self
    }

    /// Attach a fully-built [`Progress`] spec — the way to keep a custom
    /// [`ProgressSink`](wakeup_runner::ProgressSink) routing (plain
    /// [`with_progress`](Self::with_progress) reports to stderr).
    pub fn with_progress_spec(mut self, progress: Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Capture structured trace events into `trace.sink` (see
    /// [`TraceSpec`] for the determinism contract).
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Self-calibrate the adaptive engine constants against the protocol
    /// (see [`EnsembleSpec::calibrate`]).
    pub fn with_calibration(mut self) -> Self {
        self.calibrate = true;
        self
    }

    /// The seed of run `i` (wrapping — see [`base_seed`](Self::base_seed)).
    pub fn seed_of(&self, i: u64) -> u64 {
        self.base_seed.wrapping_add(i)
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.n)
            .with_feedback(self.feedback)
            .with_engine(self.engine)
            .with_population(self.population)
            .with_channel(self.channel)
            .with_churn(self.churn.clone());
        if let Some(cap) = self.max_slots {
            cfg = cfg.with_max_slots(cap);
        }
        if !self.per_station_detail {
            cfg = cfg.without_per_station_detail();
        }
        cfg
    }

    /// The simulator for this spec. With [`calibrate`](Self::calibrate)
    /// set, the adaptive policy constants are measured once against the
    /// run-0 protocol instance and shared by every run of the ensemble.
    fn simulator<P: Fn(u64) -> Box<dyn Protocol>>(&self, protocol_for: &P) -> Simulator {
        let mut cfg = self.sim_config();
        if self.calibrate {
            let sample = protocol_for(self.seed_of(0));
            cfg = cfg.with_policy(PolicyParams::calibrated(sample.as_ref(), self.n));
        }
        Simulator::new(cfg)
    }

    fn runner(&self) -> Runner {
        let mut runner = Runner::new().with_threads(self.threads.max(1));
        if let Some(p) = &self.progress {
            runner = runner.with_progress(p.clone());
        }
        runner
    }
}

/// Aggregated engine-work counters over an ensemble — the measurement
/// behind the dense-vs-sparse speedup claims. Slots tell how much simulated
/// time was covered; polls tell how much work the engine actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Total slots covered (`Outcome::slots_simulated` summed over runs).
    pub slots: u64,
    /// Total `Station::act` calls (`Outcome::polls` summed over runs).
    pub polls: u64,
    /// Total slots skipped in bulk by the sparse engine
    /// (`Outcome::skipped_slots` summed over runs).
    pub skipped: u64,
    /// Total slots stepped densely — every awake station polled —
    /// (`Outcome::dense_steps` summed over runs): the adaptive engine's
    /// burst windows plus any dense-locked stretches.
    pub dense_steps: u64,
    /// Total slots resolved by the bit-parallel word kernel
    /// (`Outcome::word_slots` summed over runs): dense/burst tiles of up to
    /// 64 slots settled by popcount instead of per-station polling.
    pub word_slots: u64,
    /// Total sparse↔dense transitions of the adaptive engine policy
    /// (`Outcome::mode_switches` summed over runs).
    pub mode_switches: u64,
    /// Maximum simultaneous simulation units of any single run
    /// (`Outcome::peak_units` maxed over runs) — the memory proxy of the
    /// class-aggregated engine: `k` under concrete populations, the class
    /// count under [`PopulationMode::Classes`].
    pub peak_units: u64,
}

impl WorkStats {
    /// Fold one outcome into the counters.
    pub fn absorb(&mut self, out: &mac_sim::Outcome) {
        self.slots += out.slots_simulated;
        self.polls += out.polls;
        self.skipped += out.skipped_slots;
        self.dense_steps += out.dense_steps;
        self.word_slots += out.word_slots;
        self.mode_switches += out.mode_switches;
        self.peak_units = self.peak_units.max(out.peak_units);
    }

    /// Fold one outcome digest into the counters.
    pub fn absorb_digest(&mut self, d: &OutcomeDigest) {
        self.slots += d.slots;
        self.polls += d.polls;
        self.skipped += d.skipped;
        self.dense_steps += d.dense_steps;
        self.word_slots += d.word_slots;
        self.mode_switches += d.mode_switches;
        self.peak_units = self.peak_units.max(d.peak_units);
    }

    /// Merge another accumulator (e.g. per-ensemble stats into a per-table
    /// total). All fields are associative (sums and a max), so partial
    /// accumulators merge in any grouping without changing the result.
    pub fn merge(&mut self, other: &WorkStats) {
        self.slots += other.slots;
        self.polls += other.polls;
        self.skipped += other.skipped;
        self.dense_steps += other.dense_steps;
        self.word_slots += other.word_slots;
        self.mode_switches += other.mode_switches;
        self.peak_units = self.peak_units.max(other.peak_units);
    }

    /// Polls per covered slot — `≈ k` on the dense path, `≪ 1` when the
    /// sparse engine is skipping well.
    pub fn polls_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.polls as f64 / self.slots as f64
        }
    }

    /// Fraction of covered slots that were skipped in bulk.
    pub fn skip_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.skipped as f64 / self.slots as f64
        }
    }

    /// Compact one-line rendering for per-table footers.
    pub fn render(&self) -> String {
        format!(
            "slots {} | polls {} ({:.4} polls/slot) | skipped {} ({:.1}% skip) | dense-stepped {} | word-kernel {} ({} switches)",
            self.slots,
            self.polls,
            self.polls_per_slot(),
            self.skipped,
            100.0 * self.skip_fraction(),
            self.dense_steps,
            self.word_slots,
            self.mode_switches,
        )
    }

    /// The counters as a machine-readable [`Record`](crate::serial::Record)
    /// with stable field names (`slots`, `polls`, `skipped`, `dense_steps`,
    /// `word_slots`, `mode_switches`, `peak_units`). Deterministic: all fold
    /// in seed order.
    pub fn record(&self) -> crate::serial::Record {
        crate::serial::Record::new()
            .with("slots", self.slots)
            .with("polls", self.polls)
            .with("skipped", self.skipped)
            .with("dense_steps", self.dense_steps)
            .with("word_slots", self.word_slots)
            .with("mode_switches", self.mode_switches)
            .with("peak_units", self.peak_units)
    }
}

/// Aggregated results of an ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleResult {
    /// One latency sample per run, in run order.
    pub samples: Vec<LatencySample>,
    /// Energy (transmission) statistics over all runs.
    pub energy: EnergyStats,
    /// Engine-work counters (slots vs polls vs skipped) over all runs.
    pub work: WorkStats,
}

impl EnsembleResult {
    /// Latencies of the solved runs.
    pub fn solved_latencies(&self) -> Vec<u64> {
        self.samples.iter().filter_map(|s| s.solved()).collect()
    }

    /// Number of censored (cap-hit) runs.
    pub fn censored(&self) -> usize {
        self.samples.len() - self.solved_latencies().len()
    }

    /// Worst observed latency, counting censored runs pessimistically.
    pub fn worst(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.pessimistic())
            .max()
            .unwrap_or(0)
    }

    /// Summary statistics of the solved latencies.
    pub fn summary(&self) -> Option<crate::stats::Summary> {
        crate::stats::Summary::of_u64(&self.solved_latencies())
    }
}

/// Streaming aggregate of an ensemble: everything the experiment tables
/// report, with no per-run sample vector — the only per-ensemble memory
/// is the runner's O(threads·batch) reorder buffer.
///
/// Latency statistics cover **solved** runs (matching
/// [`EnsembleResult::summary`]); [`worst`](Self::worst) additionally counts
/// censored runs pessimistically. Median/p90/p99 come from P² sketches:
/// exact below five solved runs, a tightly-tracking estimate above.
#[derive(Clone, Debug)]
pub struct EnsembleSummary {
    /// Number of runs executed.
    pub runs: u64,
    /// Number of runs that solved wake-up within the cap.
    pub solved: u64,
    /// Streaming statistics (mean/sd/min/max/CI) of the solved latencies.
    pub latency: OnlineStats,
    /// P² sketch of the solved-latency median.
    pub sketch_p50: P2Quantile,
    /// P² sketch of the solved-latency 90th percentile.
    pub sketch_p90: P2Quantile,
    /// P² sketch of the solved-latency 99th percentile.
    pub sketch_p99: P2Quantile,
    /// Worst latency including censored runs (their censoring bound).
    pub worst: u64,
    /// Energy (transmission) statistics over all runs.
    pub energy: EnergyStats,
    /// Engine-work counters over all runs.
    pub work: WorkStats,
    /// Channel-fault and churn event totals over all runs (all zero for
    /// an ideal channel without churn).
    pub faults: FaultCounts,
    /// Execution statistics of the runner (throughput, steals, batches).
    pub exec: RunStats,
}

impl EnsembleSummary {
    fn empty() -> Self {
        EnsembleSummary {
            runs: 0,
            solved: 0,
            latency: OnlineStats::new(),
            sketch_p50: P2Quantile::new(0.5),
            sketch_p90: P2Quantile::new(0.9),
            sketch_p99: P2Quantile::new(0.99),
            worst: 0,
            energy: EnergyStats::new(),
            work: WorkStats::default(),
            faults: FaultCounts::default(),
            exec: RunStats::default(),
        }
    }

    /// Fold one worker pre-folded batch partial, in seed order. Integer
    /// aggregates merge associatively; the solved latencies replay here one
    /// by one, so the floating-point accumulators see exactly the sequence
    /// a sequential run would feed them — bit-identical across thread
    /// counts and batch boundaries.
    fn absorb_partial(&mut self, p: StreamPartial) {
        self.runs += p.runs;
        self.solved += p.solved;
        self.worst = self.worst.max(p.worst);
        self.energy.merge(&p.energy);
        self.work.merge(&p.work);
        self.faults.merge(&p.faults);
        for l in p.solved_latencies {
            let l = l as f64;
            self.latency.push(l);
            self.sketch_p50.push(l);
            self.sketch_p90.push(l);
            self.sketch_p99.push(l);
        }
    }

    /// Number of censored (cap-hit) runs.
    pub fn censored(&self) -> u64 {
        self.runs - self.solved
    }

    /// Mean solved latency (0 when nothing solved).
    pub fn mean(&self) -> f64 {
        self.latency.mean()
    }

    /// Maximum solved latency (0 when nothing solved).
    pub fn max(&self) -> f64 {
        self.latency.max()
    }

    /// Half-width of the 95% CI of the mean.
    pub fn ci95(&self) -> f64 {
        self.latency.ci95()
    }

    /// Median solved latency (P² estimate; 0 when nothing solved).
    pub fn median(&self) -> f64 {
        self.sketch_p50.value().unwrap_or(0.0)
    }

    /// 90th-percentile solved latency (P² estimate; 0 when nothing solved).
    pub fn p90(&self) -> f64 {
        self.sketch_p90.value().unwrap_or(0.0)
    }

    /// 99th-percentile solved latency (P² estimate; 0 when nothing solved).
    pub fn p99(&self) -> f64 {
        self.sketch_p99.value().unwrap_or(0.0)
    }

    /// The summary as a machine-readable
    /// [`Record`](crate::serial::Record) with stable field names — the
    /// per-point payload of the experiment sinks' sweep rows.
    ///
    /// Only **deterministic** aggregates are included (everything folds in
    /// seed order, so each field is bit-identical across thread counts); the
    /// wall-clock execution stats in [`exec`](Self::exec) are deliberately
    /// left out so machine output can be diffed across runs and machines.
    ///
    /// When **no** run solved, the solved-latency statistics are emitted as
    /// `NaN` (JSON `null`, CSV `NaN`) rather than their 0.0 accessor
    /// defaults — a fully-censored cell must not read as zero latency.
    /// `worst` stays numeric: it counts censored runs pessimistically.
    pub fn record(&self) -> crate::serial::Record {
        let lat = |v: f64| if self.solved > 0 { v } else { f64::NAN };
        crate::serial::Record::new()
            .with("runs", self.runs)
            .with("solved", self.solved)
            .with("censored", self.censored())
            .with("mean", lat(self.mean()))
            .with("ci95", lat(self.ci95()))
            .with("median", lat(self.median()))
            .with("p90", lat(self.p90()))
            .with("p99", lat(self.p99()))
            .with("max", lat(self.max()))
            .with("worst", self.worst)
            .with("mean_transmissions", self.energy.mean_transmissions())
            .with("mean_collisions", self.energy.mean_collisions())
            .with("max_per_station_tx", self.energy.max_per_station)
            .with("slots", self.work.slots)
            .with("polls", self.work.polls)
            .with("skipped", self.work.skipped)
            .with("dense_steps", self.work.dense_steps)
            .with("word_slots", self.work.word_slots)
            .with("mode_switches", self.work.mode_switches)
            .with("peak_units", self.work.peak_units)
    }
}

/// Execute one run, serializing its trace (if any) into run-tagged JSONL
/// bytes on the worker. Serialization is the parallel part; only the final
/// ordered append to the shared sink is left to the reducer.
fn run_one(
    sim: &Simulator,
    trace: Option<&TraceSpec>,
    i: u64,
    seed: u64,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
) -> (OutcomeDigest, Vec<u8>) {
    let Some(ts) = trace else {
        let outcome = sim
            .run(protocol, pattern, seed)
            .expect("ensemble run failed validation");
        return (OutcomeDigest::of(&outcome), Vec::new());
    };
    let mut rec = RecordingTracer::with_filter(ts.filter);
    let outcome = sim
        .run_traced(protocol, pattern, seed, &mut rec)
        .expect("ensemble run failed validation");
    let mut buf = Vec::new();
    for ev in rec.events() {
        writeln!(buf, "{{\"run\":{i},{}}}", ev.json_fields())
            .expect("writing to a Vec cannot fail");
    }
    (OutcomeDigest::of(&outcome), buf)
}

/// Append one run's serialized trace lines to the shared sink. Called only
/// from the seed-ordered reducer, so lines land in run order.
fn flush_trace(trace: Option<&TraceSpec>, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    if let Some(ts) = trace {
        ts.sink
            .lock()
            .expect("trace sink poisoned")
            .write_all(bytes)
            .expect("trace sink write failed");
    }
}

/// Write one ensemble's execution records (the non-deterministic tier:
/// wall-clock phase timers, per-worker counters) to the trace sidecar, if
/// one is configured. One flat JSON object per line, parseable by
/// [`parse_json_object`](crate::serial::parse_json_object).
fn flush_exec(spec: &EnsembleSpec, stats: &RunStats) {
    let Some(ts) = &spec.trace else { return };
    let Some(exec) = &ts.exec else { return };
    let seq = ts.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let label = spec
        .progress
        .as_ref()
        .map(|p| p.label.as_str())
        .unwrap_or("");
    let mut buf = Vec::new();
    let head = crate::serial::Record::new()
        .with("record", "ensemble")
        .with("ensemble", seq)
        .with("label", label)
        .with("n", spec.n)
        .with("runs", stats.runs)
        .with("threads", stats.threads as u64)
        .with("batch", stats.batch)
        .with("batches", stats.batches)
        .with("steals", stats.steals)
        .with("calibration_runs", stats.calibration_runs)
        .with("reorder_peak", stats.reorder_peak)
        .with("elapsed_us", stats.elapsed.as_micros() as u64)
        .with(
            "construction_us",
            stats.phases.construction.as_micros() as u64,
        )
        .with("simulation_us", stats.phases.simulation.as_micros() as u64)
        .with("reduction_us", stats.phases.reduction.as_micros() as u64);
    writeln!(buf, "{}", head.to_json()).expect("writing to a Vec cannot fail");
    for (i, w) in stats.workers.iter().enumerate() {
        let row = crate::serial::Record::new()
            .with("record", "worker")
            .with("ensemble", seq)
            .with("worker", i as u64)
            .with("runs", w.runs)
            .with("steals", w.steals)
            .with("fail_scans", w.fail_scans)
            .with("queue_depth_hw", w.queue_depth_hw);
        writeln!(buf, "{}", row.to_json()).expect("writing to a Vec cannot fail");
    }
    exec.lock()
        .expect("exec sidecar poisoned")
        .write_all(&buf)
        .expect("exec sidecar write failed");
}

/// Execute the ensemble's runs on the work-stealing pool, folding digests
/// into `fold` in seed order.
fn execute<P, G, F>(spec: &EnsembleSpec, protocol_for: P, pattern_for: G, mut fold: F) -> RunStats
where
    P: Fn(u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
    F: FnMut(u64, OutcomeDigest),
{
    let sim = spec.simulator(&protocol_for);
    let trace = spec.trace.as_ref();
    let stats = spec.runner().run(
        spec.runs,
        |i| {
            let seed = spec.seed_of(i);
            let protocol = protocol_for(seed);
            let pattern = pattern_for(seed);
            run_one(&sim, trace, i, seed, protocol.as_ref(), &pattern)
        },
        from_fn(|i, (d, bytes): (OutcomeDigest, Vec<u8>)| {
            flush_trace(trace, &bytes);
            fold(i, d);
        }),
    );
    flush_exec(spec, &stats);
    stats
}

/// Run an ensemble: run `i ∈ [0, spec.runs)` simulates
/// `protocol_for(seed)` against `pattern_for(seed)` where
/// `seed = spec.base_seed.wrapping_add(i)`, materializing one latency
/// sample per run.
///
/// Panics if any run fails validation (a bug in the generator, not a
/// measurement outcome).
pub fn run_ensemble<P, G>(spec: &EnsembleSpec, protocol_for: P, pattern_for: G) -> EnsembleResult
where
    P: Fn(u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    let mut samples = Vec::with_capacity(usize::try_from(spec.runs).unwrap_or(0));
    let mut energy = EnergyStats::new();
    let mut work = WorkStats::default();
    execute(spec, protocol_for, pattern_for, |_, d| {
        samples.push(d.sample);
        energy.absorb_digest(&d);
        work.absorb_digest(&d);
    });
    EnsembleResult {
        samples,
        energy,
        work,
    }
}

/// Worker-side pre-fold of one batch of digests (the payload of
/// [`Runner::run_folded`]): everything that merges associatively — integer
/// sums, counts, maxima — is reduced on the worker, and only the solved
/// latencies (needed verbatim by the order-sensitive floating-point
/// accumulators) ride along, in seed order. A shipped batch therefore
/// weighs O(1) + one `u64` per solved run instead of one full
/// [`OutcomeDigest`] per run.
#[derive(Debug, Default)]
struct StreamPartial {
    runs: u64,
    solved: u64,
    worst: u64,
    energy: EnergyStats,
    work: WorkStats,
    faults: FaultCounts,
    solved_latencies: Vec<u64>,
    /// Run-tagged trace lines of this batch, in seed order (empty when the
    /// ensemble is untraced).
    trace: Vec<u8>,
}

impl StreamPartial {
    fn absorb(&mut self, d: &OutcomeDigest, trace: &[u8]) {
        self.runs += 1;
        if let Some(l) = d.sample.solved() {
            self.solved += 1;
            self.solved_latencies.push(l);
        }
        self.worst = self.worst.max(d.sample.pessimistic());
        self.energy.absorb_digest(d);
        self.work.absorb_digest(d);
        self.faults.merge(&d.faults);
        self.trace.extend_from_slice(trace);
    }
}

/// Run an ensemble with streaming aggregation only: no per-run results
/// are materialized, suitable
/// for million-run sweeps. Same execution and seed derivation as
/// [`run_ensemble`], but reduction is **pipelined**: each worker pre-folds
/// its batch into a partial fold ([`Runner::run_folded`]), and this
/// thread merges the partials in seed order — associatively for the integer
/// counters, by in-order replay for the floating-point latency statistics.
/// Aggregates are bit-identical across thread counts and batch boundaries.
pub fn run_ensemble_stream<P, G>(
    spec: &EnsembleSpec,
    protocol_for: P,
    pattern_for: G,
) -> EnsembleSummary
where
    P: Fn(u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    let mut summary = EnsembleSummary::empty();
    // `summary` is only borrowed inside the fold, so aggregate into a local
    // and move the stats in afterwards.
    let exec = {
        let s = &mut summary;
        let sim = spec.simulator(&protocol_for);
        let trace = spec.trace.as_ref();
        spec.runner().run_folded(
            spec.runs,
            |i| {
                let seed = spec.seed_of(i);
                let protocol = protocol_for(seed);
                let pattern = pattern_for(seed);
                run_one(&sim, trace, i, seed, protocol.as_ref(), &pattern)
            },
            StreamPartial::default,
            |p, _i, (d, bytes): (OutcomeDigest, Vec<u8>)| p.absorb(&d, &bytes),
            from_fn(|_start, p: StreamPartial| {
                flush_trace(trace, &p.trace);
                s.absorb_partial(p);
            }),
        )
    };
    flush_exec(spec, &exec);
    summary.exec = exec;
    summary
}

/// [`run_ensemble`] with an ensemble-wide [`ConstructionCache`]: the
/// factory receives the cache next to the run seed, so seed-independent
/// structure (selective families, doubling schedules and their per-station
/// position indices, waking matrices) is built **once per ensemble** and
/// shared read-only across runs and work-stealing workers, while per-run
/// state stays in the stations. Outcomes are bit-identical to the uncached
/// path — the cache holds only immutable structure.
pub fn run_ensemble_cached<P, G>(
    spec: &EnsembleSpec,
    cache: &ConstructionCache,
    protocol_for: P,
    pattern_for: G,
) -> EnsembleResult
where
    P: Fn(&ConstructionCache, u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    run_ensemble(spec, |seed| protocol_for(cache, seed), pattern_for)
}

/// [`run_ensemble_stream`] with an ensemble-wide [`ConstructionCache`] —
/// see [`run_ensemble_cached`] for the sharing contract.
pub fn run_ensemble_stream_cached<P, G>(
    spec: &EnsembleSpec,
    cache: &ConstructionCache,
    protocol_for: P,
    pattern_for: G,
) -> EnsembleSummary
where
    P: Fn(&ConstructionCache, u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    run_ensemble_stream(spec, |seed| protocol_for(cache, seed), pattern_for)
}

/// The pre-runner scheduling: split the seed range into one static
/// contiguous chunk per thread (`std::thread::scope`, no stealing, full
/// result materialization). Kept as the baseline the work-stealing runner
/// is benchmarked against (`benches/runner.rs`) and as an independent
/// reference implementation for determinism tests. Produces exactly the
/// same [`EnsembleResult`] as [`run_ensemble`].
pub fn run_ensemble_chunked<P, G>(
    spec: &EnsembleSpec,
    protocol_for: P,
    pattern_for: G,
) -> EnsembleResult
where
    P: Fn(u64) -> Box<dyn Protocol> + Sync,
    G: Fn(u64) -> WakePattern + Sync,
{
    let cfg = spec.sim_config();
    let runs: Vec<u64> = (0..spec.runs).map(|i| spec.seed_of(i)).collect();
    let threads = spec.threads.max(1).min(runs.len().max(1));
    let chunk = runs.len().div_ceil(threads);
    let mut results: Vec<Option<(LatencySample, mac_sim::Outcome)>> = vec![None; runs.len()];

    std::thread::scope(|scope| {
        for (seeds, out_chunk) in runs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let cfg = cfg.clone();
            let protocol_for = &protocol_for;
            let pattern_for = &pattern_for;
            scope.spawn(move || {
                let sim = Simulator::new(cfg);
                for (seed, slot) in seeds.iter().zip(out_chunk.iter_mut()) {
                    let protocol = protocol_for(*seed);
                    let pattern = pattern_for(*seed);
                    let outcome = sim
                        .run(protocol.as_ref(), &pattern, *seed)
                        .expect("ensemble run failed validation");
                    *slot = Some((LatencySample::from_outcome(&outcome), outcome));
                }
            });
        }
    });

    let mut samples = Vec::with_capacity(runs.len());
    let mut energy = EnergyStats::new();
    let mut work = WorkStats::default();
    for r in results.into_iter() {
        let (sample, outcome) = r.expect("worker thread left a hole");
        samples.push(sample);
        energy.absorb(&outcome);
        work.absorb(&outcome);
    }
    EnsembleResult {
        samples,
        energy,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::pattern::IdChoice;
    use mac_sim::StationId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wakeup_core::prelude::*;

    fn k_pattern(n: u32, k: usize, seed: u64) -> WakePattern {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids = IdChoice::Random.pick(n, k, &mut rng);
        WakePattern::uniform_window(&ids, 0, 16, &mut rng).unwrap()
    }

    #[test]
    fn ensemble_runs_and_aggregates() {
        let n = 64u32;
        let spec = EnsembleSpec::new(n, 16).with_threads(4);
        let res = run_ensemble(
            &spec,
            |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
            |seed| k_pattern(n, 4, seed),
        );
        assert_eq!(res.samples.len(), 16);
        assert_eq!(res.censored(), 0, "wakeup(n) should solve all runs");
        let summary = res.summary().unwrap();
        assert_eq!(summary.count, 16);
        assert!(summary.max >= summary.median);
        assert!(res.energy.runs == 16);
        assert!(res.energy.total_transmissions > 0);
    }

    #[test]
    fn class_population_ensemble_matches_concrete() {
        // Ensemble plumbing for the class engine: same samples/energy, and
        // peak_units drops to the class count (one unit per wake batch here)
        // while the concrete path carries one unit per station.
        let n = 128u32;
        let spec = EnsembleSpec::new(n, 12).with_threads(3);
        let pattern = |seed: u64| WakePattern::range(0, n / 2, seed % 8).unwrap();
        let concrete = run_ensemble(&spec, |_| Box::new(RoundRobin::new(n)), pattern);
        let classed = run_ensemble(
            &spec.clone().with_classes(),
            |_| Box::new(RoundRobin::new(n)),
            pattern,
        );
        assert_eq!(concrete.samples, classed.samples);
        assert_eq!(concrete.energy, classed.energy);
        assert_eq!(concrete.work.slots, classed.work.slots);
        assert_eq!(concrete.work.peak_units, u64::from(n) / 2);
        assert_eq!(classed.work.peak_units, 1);
        // And without per-station detail the aggregates still match, except
        // the per-station maximum that detail-off deliberately drops.
        let lean = run_ensemble(
            &spec.clone().with_classes().without_per_station_detail(),
            |_| Box::new(RoundRobin::new(n)),
            pattern,
        );
        assert_eq!(lean.samples, classed.samples);
        assert_eq!(
            lean.energy.total_transmissions,
            classed.energy.total_transmissions
        );
        assert_eq!(lean.energy.max_per_station, 0);
    }

    #[test]
    fn work_stats_track_sparse_savings() {
        // Round-robin gives O(1) hints, so the sparse engine polls far less
        // than once per slot, while a dense run polls k times per slot.
        use mac_sim::EngineMode;
        let n = 256u32;
        let spec = EnsembleSpec::new(n, 8).with_threads(2);
        let sparse = run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 6, seed),
        );
        let dense = run_ensemble(
            &spec.clone().with_engine(EngineMode::Dense),
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 6, seed),
        );
        assert_eq!(sparse.samples, dense.samples, "outcomes must be identical");
        assert_eq!(
            sparse.work.slots, dense.work.slots,
            "paths must cover the same slots"
        );
        assert!(sparse.work.skipped > 0);
        assert_eq!(dense.work.skipped, 0);
        assert!(
            sparse.work.polls * 10 < dense.work.polls,
            "sparse polls {} not ≪ dense polls {}",
            sparse.work.polls,
            dense.work.polls
        );
        assert!(sparse.work.polls_per_slot() < 1.0);
        assert!(sparse.work.skip_fraction() > 0.5);
    }

    #[test]
    fn ensemble_is_deterministic_given_base_seed() {
        let n = 32u32;
        let spec = EnsembleSpec::new(n, 8).with_base_seed(99).with_threads(2);
        let run = || {
            run_ensemble(
                &spec,
                |seed| {
                    Box::new(WakeupWithK::new(
                        n,
                        4,
                        FamilyProvider::random_with_seed(seed),
                    ))
                },
                |seed| k_pattern(n, 4, seed),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_base_seeds_differ() {
        let n = 32u32;
        let mk = |base: u64| {
            run_ensemble(
                &EnsembleSpec::new(n, 8).with_base_seed(base),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 3, seed),
            )
        };
        let a = mk(0);
        let b = mk(1_000_000);
        // Extremely likely to differ somewhere.
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn censored_runs_are_counted() {
        // A protocol that never transmits gets censored on every run.
        struct Silent;
        struct SilentStation;
        impl mac_sim::Station for SilentStation {
            fn wake(&mut self, _s: mac_sim::Slot) {}
            fn act(&mut self, _t: mac_sim::Slot) -> mac_sim::Action {
                mac_sim::Action::Listen
            }
        }
        impl mac_sim::Protocol for Silent {
            fn station(&self, _id: StationId, _seed: u64) -> Box<dyn mac_sim::Station> {
                Box::new(SilentStation)
            }
            fn name(&self) -> String {
                "silent".into()
            }
        }
        let spec = EnsembleSpec::new(8, 4).with_max_slots(50);
        let res = run_ensemble(&spec, |_| Box::new(Silent), |seed| k_pattern(8, 2, seed));
        assert_eq!(res.censored(), 4);
        assert!(res.summary().is_none());
        assert_eq!(res.worst(), 50);
        // Streaming view agrees on censoring and the pessimistic worst.
        let s = run_ensemble_stream(&spec, |_| Box::new(Silent), |seed| k_pattern(8, 2, seed));
        assert_eq!(s.censored(), 4);
        assert_eq!(s.solved, 0);
        assert_eq!(s.worst, 50);
        assert_eq!(s.mean(), 0.0);
        // Machine rows must not read the censored-everything case as zero
        // latency: the record renders the solved-latency stats as null.
        let json = s.record().to_json();
        assert!(json.contains("\"mean\":null"), "{json}");
        assert!(json.contains("\"p90\":null"), "{json}");
        assert!(json.contains("\"worst\":50"), "{json}");
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let n = 32u32;
        let mk = |threads: usize| {
            run_ensemble(
                &EnsembleSpec::new(n, 10).with_threads(threads),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 3, seed),
            )
        };
        assert_eq!(mk(1).samples, mk(8).samples);
    }

    #[test]
    fn runner_matches_chunked_reference_bit_for_bit() {
        // The work-stealing path must reproduce the legacy chunked
        // scheduler exactly — samples, energy and work counters — for any
        // thread count.
        let n = 64u32;
        let mk_spec = |threads: usize| {
            EnsembleSpec::new(n, 24)
                .with_base_seed(42)
                .with_threads(threads)
        };
        let reference = run_ensemble_chunked(
            &mk_spec(1),
            |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
            |seed| k_pattern(n, 4, seed),
        );
        for threads in [1usize, 2, 8] {
            let stealing = run_ensemble(
                &mk_spec(threads),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 4, seed),
            );
            assert_eq!(stealing.samples, reference.samples, "threads={threads}");
            assert_eq!(stealing.energy, reference.energy, "threads={threads}");
            assert_eq!(stealing.work, reference.work, "threads={threads}");
        }
    }

    #[test]
    fn stream_summary_matches_materialized_summary() {
        let n = 64u32;
        let spec = EnsembleSpec::new(n, 32).with_base_seed(7).with_threads(4);
        let full = run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 5, seed),
        );
        let stream = run_ensemble_stream(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 5, seed),
        );
        let summary = full.summary().unwrap();
        assert_eq!(stream.runs, 32);
        assert_eq!(stream.solved as usize, summary.count);
        assert!((stream.mean() - summary.mean).abs() < 1e-9);
        assert_eq!(stream.max(), summary.max);
        assert!((stream.ci95() - summary.ci95()).abs() < 1e-9);
        assert_eq!(stream.worst, full.worst());
        assert_eq!(stream.energy, full.energy);
        assert_eq!(stream.work, full.work);
        // P² percentiles track the exact ones on a 32-run ensemble.
        let spread = (summary.max - summary.min).max(1.0);
        assert!((stream.median() - summary.median).abs() <= 0.1 * spread);
        assert!((stream.p90() - summary.p90).abs() <= 0.15 * spread);
    }

    #[test]
    fn stream_is_bit_identical_across_thread_counts() {
        let n = 64u32;
        let mk = |threads: usize| {
            run_ensemble_stream(
                &EnsembleSpec::new(n, 20).with_threads(threads),
                |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
                |seed| k_pattern(n, 4, seed),
            )
        };
        let a = mk(1);
        for threads in [2usize, 8] {
            let b = mk(threads);
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
            assert_eq!(a.ci95().to_bits(), b.ci95().to_bits());
            assert_eq!(a.median().to_bits(), b.median().to_bits());
            assert_eq!(a.p90().to_bits(), b.p90().to_bits());
            assert_eq!(a.work, b.work);
        }
    }

    #[test]
    fn zero_threads_spec_runs_instead_of_panicking() {
        // Regression: a directly-constructed spec with threads: 0 used to
        // divide by zero in the chunk computation.
        let n = 16u32;
        let spec = EnsembleSpec {
            threads: 0,
            ..EnsembleSpec::new(n, 4)
        };
        let res = run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 2, seed),
        );
        assert_eq!(res.samples.len(), 4);
        let chunked = run_ensemble_chunked(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 2, seed),
        );
        assert_eq!(chunked.samples, res.samples);
    }

    #[test]
    fn base_seed_near_max_wraps_instead_of_overflowing() {
        // Regression: `base_seed + i` overflowed (panic in debug) for base
        // seeds near u64::MAX; seeds now wrap.
        let n = 16u32;
        let spec = EnsembleSpec::new(n, 8).with_base_seed(u64::MAX - 2);
        assert_eq!(spec.seed_of(2), u64::MAX);
        assert_eq!(spec.seed_of(3), 0);
        assert_eq!(spec.seed_of(5), 2);
        let res = run_ensemble(
            &spec,
            |seed| Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
            |seed| k_pattern(n, 3, seed),
        );
        assert_eq!(res.samples.len(), 8);
    }

    #[test]
    fn cached_ensemble_matches_uncached_bit_for_bit() {
        // The construction cache may only change *where* structure is
        // built, never what the runs observe: samples, energy and work
        // counters must be identical, across thread counts.
        let n = 64u32;
        let provider = FamilyProvider::random_with_seed(5);
        let mk_spec = |threads| {
            EnsembleSpec::new(n, 16)
                .with_base_seed(3)
                .with_threads(threads)
        };
        let plain = run_ensemble(
            &mk_spec(1),
            |_| Box::new(WakeupWithK::new(n, 6, provider)),
            |seed| k_pattern(n, 6, seed),
        );
        for threads in [1usize, 4] {
            let cache = wakeup_core::ConstructionCache::new();
            let cached = run_ensemble_cached(
                &mk_spec(threads),
                &cache,
                |c, _| Box::new(WakeupWithK::cached(n, 6, &provider, c)),
                |seed| k_pattern(n, 6, seed),
            );
            assert_eq!(plain.samples, cached.samples, "threads={threads}");
            assert_eq!(plain.energy, cached.energy, "threads={threads}");
            assert_eq!(plain.work, cached.work, "threads={threads}");
            assert!(!cache.is_empty(), "cache was never populated");
        }
    }

    /// A trace spec writing into a shared byte buffer, plus the handle to
    /// read the bytes back after the ensemble completes.
    fn vec_trace(filter: mac_sim::tracer::TraceFilter) -> (TraceSpec, Arc<Mutex<Vec<u8>>>) {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let sink: Arc<Mutex<dyn Write + Send>> = buf.clone();
        (TraceSpec::new(filter, sink), buf)
    }

    #[test]
    fn ensemble_trace_bytes_bit_identical_across_thread_counts() {
        use mac_sim::tracer::TraceFilter;
        let n = 64u32;
        let mk = |threads: usize, stream: bool| {
            let (trace, buf) = vec_trace(TraceFilter::all());
            let spec = EnsembleSpec::new(n, 24)
                .with_base_seed(11)
                .with_threads(threads)
                .with_trace(trace);
            if stream {
                run_ensemble_stream(
                    &spec,
                    |_| Box::new(RoundRobin::new(n)),
                    |seed| k_pattern(n, 4, seed),
                );
            } else {
                run_ensemble(
                    &spec,
                    |_| Box::new(RoundRobin::new(n)),
                    |seed| k_pattern(n, 4, seed),
                );
            }
            let bytes = buf.lock().unwrap().clone();
            bytes
        };
        let reference = mk(1, true);
        assert!(!reference.is_empty(), "traced ensemble produced no lines");
        let text = String::from_utf8(reference.clone()).unwrap();
        assert!(text.lines().count() > 24, "expected events for every run");
        assert!(text.lines().all(|l| l.starts_with("{\"run\":")), "{text}");
        assert!(text.contains("\"run\":23,"), "last run missing from trace");
        for threads in [2usize, 4] {
            assert_eq!(mk(threads, true), reference, "stream, threads={threads}");
        }
        // The materializing path serializes the identical byte stream.
        for threads in [1usize, 4] {
            assert_eq!(
                mk(threads, false),
                reference,
                "materialized, threads={threads}"
            );
        }
    }

    #[test]
    fn ensemble_trace_deterministic_tier_identical_across_engines() {
        use mac_sim::tracer::TraceFilter;
        let n = 64u32;
        let mk = |engine: EngineMode, population: PopulationMode| {
            let (trace, buf) = vec_trace(TraceFilter::deterministic());
            let spec = EnsembleSpec::new(n, 12)
                .with_threads(3)
                .with_engine(engine)
                .with_population(population)
                .with_trace(trace);
            run_ensemble_stream(
                &spec,
                |_| Box::new(RoundRobin::new(n)),
                |seed| k_pattern(n, 5, seed),
            );
            let bytes = buf.lock().unwrap().clone();
            bytes
        };
        let dense = mk(EngineMode::Dense, PopulationMode::Concrete);
        assert!(!dense.is_empty());
        assert_eq!(mk(EngineMode::Auto, PopulationMode::Concrete), dense);
        assert_eq!(mk(EngineMode::Auto, PopulationMode::Classes), dense);
    }

    #[test]
    fn exec_sidecar_records_ensemble_and_worker_lines() {
        use mac_sim::tracer::TraceFilter;
        let n = 64u32;
        let (trace, _events) = vec_trace(TraceFilter::deterministic());
        let exec_buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let exec_sink: Arc<Mutex<dyn Write + Send>> = exec_buf.clone();
        let trace = trace.with_exec_sink(exec_sink);
        let spec = EnsembleSpec::new(n, 64)
            .with_threads(3)
            .with_trace(trace.clone());
        run_ensemble_stream(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 4, seed),
        );
        // Second ensemble on the same sidecar gets the next ordinal.
        run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 4, seed),
        );
        let text = String::from_utf8(exec_buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let heads: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains("\"record\":\"ensemble\""))
            .collect();
        assert_eq!(heads.len(), 2, "{text}");
        assert!(heads[0].contains("\"ensemble\":0,"));
        assert!(heads[1].contains("\"ensemble\":1,"));
        assert!(heads[0].contains("\"threads\":3"));
        let workers = lines
            .iter()
            .filter(|l| l.contains("\"record\":\"worker\""))
            .count();
        assert_eq!(workers, 6, "3 workers per ensemble: {text}");
        // Every line parses back as a flat record.
        for l in &lines {
            crate::serial::parse_json_object(l).unwrap();
        }
    }

    #[test]
    fn tracing_does_not_perturb_ensemble_aggregates() {
        use mac_sim::tracer::TraceFilter;
        let n = 64u32;
        let spec = EnsembleSpec::new(n, 16).with_base_seed(5).with_threads(4);
        let plain = run_ensemble_stream(
            &spec,
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 4, seed),
        );
        let (trace, _buf) = vec_trace(TraceFilter::all());
        let traced = run_ensemble_stream(
            &spec.clone().with_trace(trace),
            |_| Box::new(RoundRobin::new(n)),
            |seed| k_pattern(n, 4, seed),
        );
        assert_eq!(plain.runs, traced.runs);
        assert_eq!(plain.solved, traced.solved);
        assert_eq!(plain.mean().to_bits(), traced.mean().to_bits());
        assert_eq!(plain.work, traced.work);
        assert_eq!(plain.energy, traced.energy);
    }

    #[test]
    fn runs_zero_yields_empty_result() {
        let spec = EnsembleSpec::new(16, 0);
        let res = run_ensemble(
            &spec,
            |_| Box::new(RoundRobin::new(16)),
            |seed| k_pattern(16, 2, seed),
        );
        assert!(res.samples.is_empty());
        assert!(res.summary().is_none());
        let s = run_ensemble_stream(
            &spec,
            |_| Box::new(RoundRobin::new(16)),
            |seed| k_pattern(16, 2, seed),
        );
        assert_eq!(s.runs, 0);
        // Empty-summary accessors must not divide by zero.
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.p90(), 0.0);
        assert_eq!(s.censored(), 0);
    }
}
