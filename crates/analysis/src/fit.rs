//! Least-squares fits of measured latency against the paper's model shapes.
//!
//! Absolute constants are implementation artifacts; what the reproduction
//! must get right is the *shape* — who grows like what. [`fit_model`] fits
//! `y ≈ a·f(n,k) + b` for a model function `f` by simple linear regression
//! and reports `R²`; experiments fit every candidate shape and report which
//! explains the data best.

/// The model shapes from the paper's bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// `k·log₂(n/k) + 1` — the optimal deterministic bound (Scenarios A/B).
    KLogNOverK,
    /// `k·log₂ n·log₂ log₂ n` — the Scenario C upper bound.
    KLogNLogLogN,
    /// `k·log₂² n` — the locally-synchronized baseline bound (ref. 9).
    KLog2N,
    /// `log₂ n` — RPD expected time.
    LogN,
    /// `log₂ k` — RPD-k expected time / Kushilevitz–Mansour lower bound.
    LogK,
    /// `n − k + 1` — round-robin / the large-`k` lower bound.
    NMinusKPlus1,
    /// `k` — linear-in-contention reference.
    K,
    /// `n` — linear-in-universe reference.
    N,
}

impl Model {
    /// Evaluate the model function at `(n, k)`.
    pub fn eval(&self, n: f64, k: f64) -> f64 {
        let log2 = |x: f64| x.max(2.0).log2();
        match self {
            Model::KLogNOverK => k * log2(n / k.max(1.0)).max(1.0) + 1.0,
            Model::KLogNLogLogN => k * log2(n) * log2(log2(n)).max(1.0),
            Model::KLog2N => k * log2(n) * log2(n),
            Model::LogN => log2(n),
            Model::LogK => log2(k),
            Model::NMinusKPlus1 => n - k + 1.0,
            Model::K => k,
            Model::N => n,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Model::KLogNOverK => "k·log(n/k)+1",
            Model::KLogNLogLogN => "k·log n·log log n",
            Model::KLog2N => "k·log² n",
            Model::LogN => "log n",
            Model::LogK => "log k",
            Model::NMinusKPlus1 => "n−k+1",
            Model::K => "k",
            Model::N => "n",
        }
    }

    /// All models, for "which shape explains this best" sweeps.
    pub fn all() -> &'static [Model] {
        &[
            Model::KLogNOverK,
            Model::KLogNLogLogN,
            Model::KLog2N,
            Model::LogN,
            Model::LogK,
            Model::NMinusKPlus1,
            Model::K,
            Model::N,
        ]
    }
}

/// The result of fitting `y ≈ a·f(n,k) + b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitResult {
    /// The fitted model.
    pub model: Model,
    /// Slope `a`.
    pub a: f64,
    /// Intercept `b`.
    pub b: f64,
    /// Coefficient of determination `R² ∈ (-∞, 1]`.
    pub r2: f64,
}

impl FitResult {
    /// Compact rendering for experiment output.
    pub fn render(&self) -> String {
        format!(
            "y ≈ {:.3}·[{}] + {:.1}   (R² = {:.4})",
            self.a,
            self.model.name(),
            self.b,
            self.r2
        )
    }
}

/// Fit `y ≈ a·model(n,k) + b` by ordinary least squares over the points
/// `(n, k, y)`. Returns `None` for fewer than 2 points or a degenerate
/// (constant) model column.
pub fn fit_model(model: Model, points: &[(f64, f64, f64)]) -> Option<FitResult> {
    if points.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|&(n, k, _)| model.eval(n, k)).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, _, y)| y).collect();
    let m = xs.len() as f64;
    let x_mean = xs.iter().sum::<f64>() / m;
    let y_mean = ys.iter().sum::<f64>() / m;
    let sxx: f64 = xs.iter().map(|x| (x - x_mean).powi(2)).sum();
    if sxx < 1e-12 {
        return None; // model column is constant over these points
    }
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - x_mean) * (y - y_mean))
        .sum();
    let a = sxy / sxx;
    let b = y_mean - a * x_mean;
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (a * x + b)).powi(2))
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - y_mean).powi(2)).sum();
    let r2 = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(FitResult { model, a, b, r2 })
}

/// Fit all candidate models and return them sorted by descending `R²`.
pub fn rank_models(points: &[(f64, f64, f64)]) -> Vec<FitResult> {
    let mut fits: Vec<FitResult> = Model::all()
        .iter()
        .filter_map(|&m| fit_model(m, points))
        .collect();
    fits.sort_by(|a, b| b.r2.partial_cmp(&a.r2).expect("NaN R²"));
    fits
}

/// Which latency statistic of a sweep point a fit targets.
///
/// The paper's bounds are worst-case, so the mean is the weakest evidence a
/// sweep can offer; the streaming ensembles also carry P² tail sketches, and
/// fitting the p90 curve checks that the *tail* grows with the claimed
/// shape too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Mean solved latency.
    Mean,
    /// P² estimate of the 90th-percentile solved latency.
    P90,
}

impl Metric {
    /// Human-readable name (for fit headings).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Mean => "mean",
            Metric::P90 => "p90",
        }
    }
}

/// One sweep observation: the `(n, k)` grid point plus the latency
/// statistics the experiments fit. Built from a streaming
/// [`EnsembleSummary`](crate::ensemble::EnsembleSummary) via
/// [`SweepPoint::of`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Universe size.
    pub n: f64,
    /// Contention (awake stations).
    pub k: f64,
    /// Mean solved latency.
    pub mean: f64,
    /// P² 90th-percentile solved latency.
    pub p90: f64,
}

impl SweepPoint {
    /// Extract the fitted statistics of one ensemble at grid point `(n, k)`.
    pub fn of(n: u32, k: u32, summary: &crate::ensemble::EnsembleSummary) -> Self {
        SweepPoint {
            n: f64::from(n),
            k: f64::from(k),
            mean: summary.mean(),
            p90: summary.p90(),
        }
    }

    /// Project onto the `(n, k, y)` triple the fitters consume, with `y`
    /// the chosen statistic — the single place the `Metric` dispatch lives.
    pub fn project(&self, metric: Metric) -> (f64, f64, f64) {
        let y = match metric {
            Metric::Mean => self.mean,
            Metric::P90 => self.p90,
        };
        (self.n, self.k, y)
    }
}

/// Project a sweep onto the chosen statistic's `(n, k, y)` triples.
pub fn project_points(metric: Metric, points: &[SweepPoint]) -> Vec<(f64, f64, f64)> {
    points.iter().map(|p| p.project(metric)).collect()
}

/// Fit one model against the chosen statistic of the sweep points.
pub fn fit_model_by(model: Model, metric: Metric, points: &[SweepPoint]) -> Option<FitResult> {
    fit_model(model, &project_points(metric, points))
}

/// Rank all candidate models against the chosen statistic (descending `R²`).
pub fn rank_models_by(metric: Metric, points: &[SweepPoint]) -> Vec<FitResult> {
    rank_models(&project_points(metric, points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_eval_values() {
        assert_eq!(Model::K.eval(100.0, 5.0), 5.0);
        assert_eq!(Model::N.eval(100.0, 5.0), 100.0);
        assert_eq!(Model::NMinusKPlus1.eval(100.0, 5.0), 96.0);
        assert!((Model::LogN.eval(1024.0, 5.0) - 10.0).abs() < 1e-12);
        assert!((Model::LogK.eval(1024.0, 16.0) - 4.0).abs() < 1e-12);
        // k·log(n/k)+1 at n=1024, k=16: 16·6+1 = 97.
        assert!((Model::KLogNOverK.eval(1024.0, 16.0) - 97.0).abs() < 1e-12);
        // k·log n·log log n at n=1024, k=2: 2·10·log2(10) ≈ 66.4.
        let v = Model::KLogNLogLogN.eval(1024.0, 2.0);
        assert!((v - 2.0 * 10.0 * 10f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn perfect_linear_data_fits_exactly() {
        // y = 3·k + 2 exactly.
        let points: Vec<(f64, f64, f64)> = (1..20)
            .map(|k| (1024.0, k as f64, 3.0 * k as f64 + 2.0))
            .collect();
        let fit = fit_model(Model::K, &points).unwrap();
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.b - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn right_model_wins_the_ranking() {
        // Synthesize y = 2·k·log(n/k)+1 data over a (n,k) grid and check the
        // matching model ranks first.
        let mut points = Vec::new();
        for n in [256.0, 1024.0, 4096.0] {
            for k in [2.0, 4.0, 8.0, 16.0, 32.0] {
                points.push((n, k, 2.0 * Model::KLogNOverK.eval(n, k)));
            }
        }
        let ranked = rank_models(&points);
        assert_eq!(ranked[0].model, Model::KLogNOverK, "{ranked:?}");
        assert!(ranked[0].r2 > 0.999);
    }

    #[test]
    fn scenario_c_shape_distinguishable_from_log2() {
        // k·log n·log log n grows measurably slower than k·log² n across a
        // wide n sweep with fixed k; the correct model must win.
        let mut points = Vec::new();
        for exp in 6..=20 {
            let n = f64::from(1u32 << exp);
            points.push((n, 4.0, 1.5 * Model::KLogNLogLogN.eval(n, 4.0)));
        }
        let ranked = rank_models(&points);
        assert_eq!(ranked[0].model, Model::KLogNLogLogN);
        let log2_fit = ranked.iter().find(|f| f.model == Model::KLog2N).unwrap();
        assert!(ranked[0].r2 > log2_fit.r2);
    }

    #[test]
    fn too_few_points_or_degenerate_column() {
        assert!(fit_model(Model::K, &[(10.0, 1.0, 5.0)]).is_none());
        // Constant k ⇒ Model::K column is constant ⇒ no fit.
        let points = [(10.0, 3.0, 5.0), (20.0, 3.0, 9.0)];
        assert!(fit_model(Model::K, &points).is_none());
        // But Model::N still fits.
        assert!(fit_model(Model::N, &points).is_some());
    }

    #[test]
    fn noisy_data_gets_reasonable_r2() {
        // y = 5·log n with ±2% deterministic "noise".
        let points: Vec<(f64, f64, f64)> = (6..=16)
            .map(|e| {
                let n = f64::from(1u32 << e);
                let noise = 1.0 + 0.02 * if e % 2 == 0 { 1.0 } else { -1.0 };
                (n, 2.0, 5.0 * n.log2() * noise)
            })
            .collect();
        let fit = fit_model(Model::LogN, &points).unwrap();
        assert!(fit.r2 > 0.99, "R² = {}", fit.r2);
        assert!((fit.a - 5.0).abs() < 0.5);
    }

    #[test]
    fn p90_metric_fits_the_tail_curve() {
        // Mean grows like k, p90 like k·log(n/k)+1: the two metrics must
        // rank different models first on the same sweep points.
        let mut points = Vec::new();
        for n in [256u32, 1024, 4096] {
            for k in [2u32, 4, 8, 16] {
                let (nf, kf) = (f64::from(n), f64::from(k));
                points.push(SweepPoint {
                    n: nf,
                    k: kf,
                    mean: 3.0 * kf,
                    p90: 2.0 * Model::KLogNOverK.eval(nf, kf),
                });
            }
        }
        let by_mean = rank_models_by(Metric::Mean, &points);
        let by_p90 = rank_models_by(Metric::P90, &points);
        assert_eq!(by_mean[0].model, Model::K);
        assert_eq!(by_p90[0].model, Model::KLogNOverK);
        let f = fit_model_by(Model::KLogNOverK, Metric::P90, &points).unwrap();
        assert!((f.a - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_point_reads_summary_statistics() {
        use crate::ensemble::EnsembleSpec;
        let spec = EnsembleSpec::new(16, 6).with_threads(2);
        let s = crate::ensemble::run_ensemble_stream(
            &spec,
            |_| Box::new(wakeup_core::prelude::RoundRobin::new(16)),
            |seed| {
                use mac_sim::pattern::IdChoice;
                use rand::SeedableRng;
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let ids = IdChoice::Random.pick(16, 3, &mut rng);
                mac_sim::WakePattern::uniform_window(&ids, 0, 8, &mut rng).unwrap()
            },
        );
        let p = SweepPoint::of(16, 3, &s);
        assert_eq!(p.n, 16.0);
        assert_eq!(p.k, 3.0);
        assert_eq!(p.mean, s.mean());
        assert_eq!(p.p90, s.p90());
    }

    #[test]
    fn render_contains_model_name() {
        let fit = FitResult {
            model: Model::LogN,
            a: 1.0,
            b: 0.0,
            r2: 0.5,
        };
        assert!(fit.render().contains("log n"));
    }
}
