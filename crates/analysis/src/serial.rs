//! Dependency-free machine-readable records (JSON / CSV cells).
//!
//! The experiment sinks need structured output, but the workspace builds
//! with no registry access, so there is no `serde`. This module hand-rolls
//! the small subset actually needed — flat records of named scalar values —
//! in the same spirit as `crates/compat`: a [`Value`] enum with exact JSON
//! and CSV renderings, and an ordered [`Record`] of `(name, Value)` pairs.
//!
//! Determinism matters more than generality here: floats render through
//! Rust's shortest-round-trip `Display`, so a bit-identical `f64` always
//! renders to the identical byte string — the property behind the
//! "`--out json` is bit-identical across thread counts" guarantee.

use std::fmt::Write as _;

/// A scalar cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (JSON: `null` when non-finite).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Quote a CSV cell RFC-4180-style: wrap in double quotes (doubling inner
/// quotes) only when the content contains a comma, quote or newline. The
/// single quoting rule shared by [`Value::to_csv`] and
/// [`Table::to_csv`](crate::table::Table::to_csv).
pub fn csv_quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Escape a string for a JSON string literal (content only, no quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Value {
    /// Render as a JSON value.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if !v.is_finite() => "null".into(),
            // Display for finite f64 is shortest-round-trip decimal — valid
            // JSON (never exponent-formatted) and bit-faithful.
            Value::F64(v) => v.to_string(),
            Value::Str(s) => format!("\"{}\"", json_escape(s)),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Render as a CSV cell (RFC-4180 quoting where needed).
    pub fn to_csv(&self) -> String {
        let plain = match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if !v.is_finite() => "NaN".into(),
            Value::F64(v) => v.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        };
        csv_quote(&plain)
    }
}

/// An ordered, flat record of named values — one machine-readable row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Append a field, builder-style.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(name, value);
        self
    }

    /// Append every field of `other`, builder-style (row = key columns +
    /// a summary's record).
    pub fn with_all(mut self, other: Record) -> Self {
        self.fields.extend(other.fields);
        self
    }

    /// Append a field.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((name.into(), value.into()));
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// The field names in insertion order (the CSV header / JSON schema).
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Render as a JSON object (insertion order preserved).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(n, v)| format!("\"{}\":{}", json_escape(n), v.to_json()))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Render the values as one CSV data line (no newline).
    pub fn to_csv_line(&self) -> String {
        let cells: Vec<String> = self.fields.iter().map(|(_, v)| v.to_csv()).collect();
        cells.join(",")
    }

    /// Render the names as one CSV header line (no newline).
    pub fn csv_header(&self) -> String {
        let cells: Vec<String> = self
            .fields
            .iter()
            .map(|(n, _)| Value::Str(n.clone()).to_csv())
            .collect();
        cells.join(",")
    }
}

/// Parse one flat JSON object (a JSON-Lines row as emitted by
/// [`Record::to_json`]) back into a [`Record`] — the read half behind the
/// `wakeup diff` artifact comparator. Exactly the subset the sinks write is
/// accepted: an object of string keys mapping to numbers, strings, booleans
/// or `null` (`null` parses to [`Value::F64`]`(NAN)`, mirroring the
/// non-finite-float rendering). Nested objects/arrays are rejected.
pub fn parse_json_object(s: &str) -> Result<Record, String> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let record = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(record)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn object(&mut self) -> Result<Record, String> {
        self.expect(b'{')?;
        let mut record = Record::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(record);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            record.push(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(record);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&c| c as char)
                    ))
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::F64(f64::NAN)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unsupported JSON value at byte {} ({:?})",
                self.pos,
                other.map(|&c| c as char)
            )),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("malformed number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by guard");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_values_render_exactly() {
        assert_eq!(Value::U64(42).to_json(), "42");
        assert_eq!(Value::I64(-7).to_json(), "-7");
        assert_eq!(Value::F64(3.5).to_json(), "3.5");
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Str("a\"b\n".into()).to_json(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn float_rendering_is_bit_faithful() {
        // Shortest-round-trip: distinct bit patterns render distinctly, and
        // the rendering survives a parse round-trip.
        for v in [0.1f64, 1.0 / 3.0, 123456.789, 1e-9, 2f64.powi(60)] {
            let s = Value::F64(v).to_json();
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{s}");
            assert!(!s.contains('e') && !s.contains('E'), "exponent in {s}");
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = Record::new()
            .with("n", 1024u64)
            .with("mean", 3.25)
            .with("label", "worst, case");
        assert_eq!(r.names(), vec!["n", "mean", "label"]);
        assert_eq!(
            r.to_json(),
            "{\"n\":1024,\"mean\":3.25,\"label\":\"worst, case\"}"
        );
        assert_eq!(r.csv_header(), "n,mean,label");
        assert_eq!(r.to_csv_line(), "1024,3.25,\"worst, case\"");
        assert_eq!(r.get("mean"), Some(&Value::F64(3.25)));
        assert_eq!(r.get("absent"), None);
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("tab\tok"), "tab\\tok");
    }

    #[test]
    fn parse_roundtrips_rendered_records() {
        let r = Record::new()
            .with("n", 1024u64)
            .with("delta", -3i64)
            .with("mean", 3.25)
            .with("nanish", f64::NAN)
            .with("label", "worst, \"case\"\n")
            .with("ok", true);
        let parsed = parse_json_object(&r.to_json()).unwrap();
        assert_eq!(parsed.get("n"), Some(&Value::U64(1024)));
        assert_eq!(parsed.get("delta"), Some(&Value::I64(-3)));
        assert_eq!(parsed.get("mean"), Some(&Value::F64(3.25)));
        assert!(matches!(parsed.get("nanish"), Some(Value::F64(v)) if v.is_nan()));
        assert_eq!(
            parsed.get("label"),
            Some(&Value::Str("worst, \"case\"\n".into()))
        );
        assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(parsed.names(), r.names());
        // Shortest-round-trip float rendering survives the full cycle.
        let f = Record::new().with("x", 1.0 / 3.0);
        let back = parse_json_object(&f.to_json()).unwrap();
        let Some(&Value::F64(x)) = back.get("x") else {
            panic!("x not parsed as float");
        };
        assert_eq!(x.to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_json_object("").is_err());
        assert!(parse_json_object("[1,2]").is_err());
        assert!(parse_json_object("{\"a\":1").is_err());
        assert!(parse_json_object("{\"a\":{}}").is_err());
        assert!(parse_json_object("{\"a\":1} trailing").is_err());
        assert!(parse_json_object("{\"a\":tru}").is_err());
        // Empty object and whitespace are fine.
        assert_eq!(parse_json_object(" {} ").unwrap().fields().len(), 0);
        // Exponent-formatted floats (foreign writers) still parse.
        assert_eq!(
            parse_json_object("{\"x\":1e-3}").unwrap().get("x"),
            Some(&Value::F64(0.001))
        );
    }
}
