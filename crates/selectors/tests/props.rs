//! Property-based tests of the combinatorial layer.

use proptest::collection::btree_set;
use proptest::prelude::*;
use selectors::bitset::BitSet;
use selectors::family::SelectiveFamily;
use selectors::kautz_singleton::KautzSingleton;
use selectors::math::{ceil_log2, choose, floor_log2, for_each_subset, is_prime, next_prime};
use selectors::random::RandomFamilyBuilder;
use selectors::schedule::{
    ConcatSchedule, FamilySchedule, RoundRobinSchedule, Schedule, ScheduleExt,
};
use selectors::verify;
use std::collections::BTreeSet;

proptest! {
    // ------------------------------------------------------------------
    // BitSet behaves like a set of u32 (model-based testing).
    // ------------------------------------------------------------------
    #[test]
    fn bitset_matches_btreeset_model(
        universe in 1u32..300,
        ops in proptest::collection::vec((0u32..300, any::<bool>()), 0..60),
    ) {
        let mut bs = BitSet::new(universe);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for (x, insert) in ops {
            let x = x % universe;
            if insert {
                bs.insert(x);
                model.insert(x);
            } else {
                bs.remove(x);
                model.remove(&x);
            }
        }
        prop_assert_eq!(bs.len() as usize, model.len());
        prop_assert_eq!(bs.to_vec(), model.iter().copied().collect::<Vec<_>>());
        for x in 0..universe {
            prop_assert_eq!(bs.contains(x), model.contains(&x));
        }
    }

    #[test]
    fn bitset_intersection_agrees_with_model(
        universe in 1u32..200,
        a in btree_set(0u32..200, 0..30),
        b in btree_set(0u32..200, 0..30),
    ) {
        let a: BTreeSet<u32> = a.into_iter().filter(|&x| x < universe).collect();
        let b: BTreeSet<u32> = b.into_iter().filter(|&x| x < universe).collect();
        let ba = BitSet::from_iter_members(universe, a.iter().copied());
        let bb = BitSet::from_iter_members(universe, b.iter().copied());
        let expected = a.intersection(&b).count() as u32;
        prop_assert_eq!(ba.intersection_size(&bb), expected);
        let b_sorted: Vec<u32> = b.iter().copied().collect();
        prop_assert_eq!(ba.intersection_size_with_slice(&b_sorted), expected);
    }

    // ------------------------------------------------------------------
    // math helpers.
    // ------------------------------------------------------------------
    #[test]
    fn log2_bounds(x in 1u64..u64::MAX / 2) {
        let c = ceil_log2(x);
        let f = floor_log2(x);
        prop_assert!(f <= c);
        prop_assert!(c - f <= 1 || x == 1);
        // 2^f ≤ x ≤ 2^c (when representable).
        if f < 63 {
            prop_assert!(1u64 << f <= x);
        }
        if c < 64 {
            prop_assert!(x <= 1u64.checked_shl(c).unwrap_or(u64::MAX));
        }
    }

    #[test]
    fn next_prime_is_prime_and_minimal(x in 0u64..10_000) {
        let p = next_prime(x);
        prop_assert!(is_prime(p));
        prop_assert!(p >= x.max(2));
        for q in x.max(2)..p {
            prop_assert!(!is_prime(q), "skipped prime {q} < {p}");
        }
    }

    #[test]
    fn subset_enumeration_count_matches_binomial(n in 1u32..15, k in 0u32..15) {
        let visited = for_each_subset(n, k, |_| true);
        prop_assert_eq!(u128::from(visited), choose(u64::from(n), u64::from(k)));
    }

    // ------------------------------------------------------------------
    // Schedule algebra laws.
    // ------------------------------------------------------------------
    #[test]
    fn concat_length_is_additive_and_projects(
        n in 2u32..40,
        lens in proptest::collection::vec(1usize..6, 1..4),
        seed in 0u64..100,
    ) {
        // Build arbitrary explicit families via the random builder.
        let parts: Vec<FamilySchedule> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let fam = RandomFamilyBuilder::new(n, 2.min(n))
                    .seed(seed + i as u64)
                    .length(l)
                    .build_explicit();
                FamilySchedule::new(fam)
            })
            .collect();
        let total: u64 = parts.iter().map(|p| p.len().unwrap()).sum();
        let originals = parts.clone();
        let concat = ConcatSchedule::new(parts);
        prop_assert_eq!(concat.len(), Some(total));
        // Every position projects onto the right part.
        let mut offset = 0u64;
        for part in &originals {
            for j in 0..part.len().unwrap() {
                for u in 0..n {
                    prop_assert_eq!(
                        concat.transmits(u, offset + j),
                        part.transmits(u, j)
                    );
                }
            }
            offset += part.len().unwrap();
        }
        // Past the end: silent.
        prop_assert!(!concat.transmits(0, total + 3));
    }

    #[test]
    fn cycle_is_periodic(n in 2u32..30, len in 1usize..8, seed in 0u64..50) {
        let fam = RandomFamilyBuilder::new(n, 2.min(n))
            .seed(seed)
            .length(len)
            .build_explicit();
        let sched = FamilySchedule::new(fam).cycle();
        let z = sched.period();
        for j in 0..3 * z {
            for u in 0..n {
                prop_assert_eq!(sched.transmits(u, j), sched.transmits(u, j + z));
            }
        }
    }

    #[test]
    fn interleave_projects_even_odd(n in 2u32..30, seed in 0u64..50) {
        let a = RoundRobinSchedule::new(n);
        let fam = RandomFamilyBuilder::new(n, 2.min(n))
            .seed(seed)
            .length(5)
            .build_explicit();
        let b = FamilySchedule::new(fam).cycle();
        let il = a.interleave(b.clone());
        for r in 0..40u64 {
            for u in 0..n {
                prop_assert_eq!(il.transmits(u, 2 * r), a.transmits(u, r));
                prop_assert_eq!(il.transmits(u, 2 * r + 1), b.transmits(u, r));
            }
        }
    }

    // ------------------------------------------------------------------
    // Constructions are (strongly) selective on arbitrary small targets.
    // ------------------------------------------------------------------
    #[test]
    fn random_family_selects_arbitrary_targets(
        x in btree_set(0u32..20, 1..=4usize),
        seed in 0u64..20,
    ) {
        let (n, k) = (20u32, 4u32);
        let fam = RandomFamilyBuilder::new(n, k).seed(seed).build_explicit();
        let target: Vec<u32> = x.into_iter().collect();
        // Targets of size 2..=4 are in the (n,4) range; size-1 targets are
        // covered by the (n,2) range — check the applicable property.
        if target.len() >= 2 {
            prop_assert!(
                verify::selects(&fam, &target),
                "unselected target {target:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn kautz_singleton_strongly_selects_arbitrary_targets(
        x in btree_set(0u32..60, 1..=4usize),
    ) {
        let ks = KautzSingleton::new(60, 4);
        let fam = ks.materialize();
        let target: Vec<u32> = x.into_iter().collect();
        prop_assert!(
            verify::strongly_selects(&fam, &target),
            "KS failed to strongly select {target:?}"
        );
    }

    #[test]
    fn ks_eval_agrees_between_oracle_and_materialized(
        n in 5u32..80,
        k in 2u32..6,
        j in 0usize..200,
    ) {
        prop_assume!(k <= n);
        let ks = KautzSingleton::new(n, k);
        let j = j % ks.len();
        let fam = ks.materialize();
        for u in 0..n {
            prop_assert_eq!(ks.transmits(u, j), fam.transmits(u, j));
        }
    }

    // ------------------------------------------------------------------
    // Verification is sound: a reported counterexample really fails.
    // ------------------------------------------------------------------
    #[test]
    fn counterexamples_are_genuine(
        n in 4u32..12,
        k in 2u32..5,
        truncate_to in 0usize..3,
        seed in 0u64..30,
    ) {
        prop_assume!(k <= n);
        // Deliberately truncate a family to (likely) break selectivity.
        let fam = RandomFamilyBuilder::new(n, k).seed(seed).build_explicit();
        let truncated = SelectiveFamily::new(
            n,
            k,
            fam.sets().iter().take(truncate_to).cloned().collect(),
        );
        if let Err(ce) = verify::selective_exhaustive(&truncated) {
            prop_assert!(!verify::selects(&truncated, &ce.x));
            let range = verify::selective_size_range(n, k);
            prop_assert!(range.contains(&(ce.x.len() as u32)));
        }
    }
}
