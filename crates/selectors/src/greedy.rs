//! Exact greedy construction of `(n,k)`-selective families for small `n`.
//!
//! The classical set-cover view: each target set `X` (with `k/2 ≤ |X| ≤ k`)
//! is a *requirement*; a candidate transmission set `F` *satisfies* `X` when
//! `|X ∩ F| = 1`. Greedily picking the candidate that satisfies the most
//! unsatisfied requirements yields a family of size
//! `O(opt · log(#requirements))` — and, crucially for tests, one that is
//! **provably selective by construction** (the loop runs until every
//! requirement is satisfied, or reports failure if the candidate pool is
//! inadequate).
//!
//! Exponential in `n`; the intended regime is `n ≲ 20`, where it provides
//! ground truth against which the probabilistic and code-based constructions
//! are compared.

use crate::bitset::BitSet;
use crate::family::SelectiveFamily;
use crate::math::for_each_subset;
use crate::prf::coin;
use crate::verify::selective_size_range;

/// Greedy set-cover builder for small-universe selective families.
#[derive(Clone, Debug)]
pub struct GreedyBuilder {
    n: u32,
    k: u32,
    extra_random_candidates: usize,
    seed: u64,
}

/// Failure: the candidate pool could not satisfy every requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyFailure {
    /// Number of requirements that remained unsatisfied.
    pub unsatisfied: usize,
}

impl GreedyBuilder {
    /// A builder for an exact `(n,k)`-selective family. Panics if `n > 26`
    /// (the requirement enumeration would be infeasible).
    pub fn new(n: u32, k: u32) -> Self {
        assert!(
            (1..=26).contains(&n),
            "GreedyBuilder is for n ≤ 26, got {n}"
        );
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        GreedyBuilder {
            n,
            k,
            extra_random_candidates: 4 * (n as usize) * (k as usize).max(4),
            seed: 0x6772_6565_6479,
        }
    }

    /// Number of random candidate sets added to the pool (besides all
    /// singletons and, for `n ≤ 14`, *all* subsets).
    pub fn extra_random_candidates(mut self, count: usize) -> Self {
        self.extra_random_candidates = count;
        self
    }

    /// Seed for the random part of the candidate pool.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn candidate_pool(&self) -> Vec<BitSet> {
        let n = self.n;
        let mut pool = Vec::new();
        if n <= 14 {
            // All non-empty subsets: the pool is complete, greedy cannot fail.
            for mask in 1u32..(1u32 << n) {
                pool.push(BitSet::from_iter_members(
                    n,
                    (0..n).filter(|&u| (mask >> u) & 1 == 1),
                ));
            }
        } else {
            // Singletons + full set + random sets at dyadic densities.
            for u in 0..n {
                pool.push(BitSet::from_iter_members(n, [u]));
            }
            pool.push(BitSet::full(n));
            let densities = (0..=crate::math::ceil_log2(u64::from(self.k).max(2)))
                .map(|i| 1.0 / f64::from(1u32 << i))
                .collect::<Vec<_>>();
            let mut c = 0u64;
            'outer: loop {
                for &p in &densities {
                    if pool.len() > self.extra_random_candidates + n as usize {
                        break 'outer;
                    }
                    pool.push(BitSet::from_iter_members(
                        n,
                        (0..n).filter(|&u| coin(self.seed, c, u64::from(u), 0, p)),
                    ));
                    c += 1;
                }
            }
        }
        pool
    }

    /// Run the greedy cover. On success the family is selective *by
    /// construction* (every requirement was explicitly satisfied).
    pub fn build(&self) -> Result<SelectiveFamily, GreedyFailure> {
        // Enumerate requirements.
        let mut requirements: Vec<Vec<u32>> = Vec::new();
        for size in selective_size_range(self.n, self.k) {
            for_each_subset(self.n, size, |x| {
                requirements.push(x.to_vec());
                true
            });
        }

        let pool = self.candidate_pool();
        let mut satisfied = vec![false; requirements.len()];
        let mut remaining = requirements.len();
        let mut picked: Vec<BitSet> = Vec::new();

        while remaining > 0 {
            // Pick the candidate satisfying the most unsatisfied requirements.
            let mut best: Option<(usize, usize)> = None; // (pool idx, gain)
            for (ci, cand) in pool.iter().enumerate() {
                let gain = requirements
                    .iter()
                    .zip(&satisfied)
                    .filter(|&(x, &s)| !s && cand.intersection_size_with_slice(x) == 1)
                    .count();
                if gain > 0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                    best = Some((ci, gain));
                }
            }
            let Some((ci, _)) = best else {
                return Err(GreedyFailure {
                    unsatisfied: remaining,
                });
            };
            let cand = pool[ci].clone();
            for (x, s) in requirements.iter().zip(satisfied.iter_mut()) {
                if !*s && cand.intersection_size_with_slice(x) == 1 {
                    *s = true;
                    remaining -= 1;
                }
            }
            picked.push(cand);
        }

        Ok(SelectiveFamily::new(self.n, self.k, picked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn greedy_families_are_selective_small() {
        for (n, k) in [(6u32, 2u32), (8, 2), (8, 4), (10, 3), (12, 4)] {
            let fam = GreedyBuilder::new(n, k).build().unwrap();
            assert!(
                verify::selective_exhaustive(&fam).is_ok(),
                "greedy failed for (n={n}, k={k})"
            );
        }
    }

    #[test]
    fn greedy_with_full_pool_cannot_fail() {
        // n ≤ 14 uses the complete subset pool: singletons alone satisfy
        // every requirement, so build must succeed.
        for n in [4u32, 7, 10] {
            for k in [1u32, 2, n / 2, n] {
                if k == 0 {
                    continue;
                }
                assert!(GreedyBuilder::new(n, k).build().is_ok(), "(n={n}, k={k})");
            }
        }
    }

    #[test]
    fn greedy_is_shorter_than_singleton_family() {
        // Greedy should beat the trivial n-singleton schedule for k ≪ n.
        let n = 12;
        let fam = GreedyBuilder::new(n, 2).build().unwrap();
        assert!(
            fam.len() < n as usize,
            "greedy produced {} sets, singletons give {n}",
            fam.len()
        );
    }

    #[test]
    fn greedy_on_larger_universe_uses_random_pool() {
        let fam = GreedyBuilder::new(18, 3).seed(11).build().unwrap();
        assert!(verify::selective_exhaustive(&fam).is_ok());
    }

    #[test]
    fn k1_trivial() {
        let fam = GreedyBuilder::new(5, 1).build().unwrap();
        assert!(verify::selective_exhaustive(&fam).is_ok());
        // One set suffices (any set hitting each singleton once — greedy
        // picks the full set or similar); at most n sets conceivable.
        assert!(fam.len() <= 5);
    }
}
