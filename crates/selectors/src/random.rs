//! The Komlós–Greenberg probabilistic construction of `(n,k)`-selective
//! families of size `O(k + k·log(n/k))`.
//!
//! ## Construction and constants
//!
//! Each transmission set includes each station independently with
//! probability `p = 1/k`. For a target set `X` with `k/2 ≤ |X| = x ≤ k`, one
//! random set `F` hits `X` exactly once with probability
//!
//! ```text
//! q(x) = x·p·(1-p)^{x-1} ≥ (1/2)·(1 - 1/k)^{k-1} ≥ 1/(2e)
//! ```
//!
//! so a family of `m` sets fails on `X` with probability at most
//! `(1 - 1/(2e))^m ≤ exp(-m/(2e))`. The number of target sets is at most
//! `Σ_{x=⌈k/2⌉}^{k} C(n,x)`, whose logarithm we compute exactly with
//! [`ln_choose`](crate::math::ln_choose()). Solving the union bound for failure
//! probability `δ` gives
//!
//! ```text
//! m = ⌈2e·(ln Σ C(n,x) + ln(1/δ))⌉ = O(k·log(n/k) + k + log(1/δ)),
//! ```
//!
//! matching the Komlós–Greenberg `O(k + k log(n/k))` bound with explicit
//! constants. This is the same existence argument as the paper's §3 citation
//! of \[25\]; see `DESIGN.md` §4 for why a seeded sample of the ensemble is the
//! faithful executable form of an existential combinatorial object.
//!
//! Two representations are built from the same coins:
//!
//! * [`RandomFamilyBuilder::build_explicit`] materializes the sets as
//!   bitsets (`O(m·n)` bits) — verifiable, cache-friendly for small `n`;
//! * [`RandomFamilyBuilder::build_oracle`] returns an [`OracleFamily`] that
//!   evaluates membership on demand via the PRF (`O(1)` memory) — identical
//!   membership answers, usable at any scale.

use crate::bitset::BitSet;
use crate::family::SelectiveFamily;
use crate::math::ln_choose;
use crate::prf::coin;
use crate::verify::selective_size_range;

/// Builder for randomized `(n,k)`-selective families.
#[derive(Clone, Debug)]
pub struct RandomFamilyBuilder {
    n: u32,
    k: u32,
    seed: u64,
    delta: f64,
    length_override: Option<usize>,
}

impl RandomFamilyBuilder {
    /// A builder for an `(n,k)`-selective family (`1 ≤ k ≤ n`).
    pub fn new(n: u32, k: u32) -> Self {
        assert!(n >= 1, "n must be ≥ 1");
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        RandomFamilyBuilder {
            n,
            k,
            seed: 0,
            delta: 1e-9,
            length_override: None,
        }
    }

    /// Set the PRF seed (default 0). Different seeds give independent
    /// samples of the ensemble.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the union-bound failure probability `δ` (default `1e-9`).
    pub fn failure_probability(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        self.delta = delta;
        self
    }

    /// Override the computed family length (used by ablation experiments to
    /// probe the size/selectivity trade-off).
    pub fn length(mut self, m: usize) -> Self {
        self.length_override = Some(m);
        self
    }

    /// The length `m` the union bound prescribes for this `(n, k, δ)`.
    pub fn prescribed_length(&self) -> usize {
        if let Some(m) = self.length_override {
            return m;
        }
        if self.k == 1 {
            // The trivial (n,1)-selective family is the single full set.
            return 1;
        }
        // ln of the number of target sets, computed exactly.
        let mut ln_targets = 0.0f64;
        let range = selective_size_range(self.n, self.k);
        let mut acc = 0.0f64; // log-sum-exp accumulation
        let mut max_ln = f64::NEG_INFINITY;
        let lns: Vec<f64> = range
            .map(|x| ln_choose(u64::from(self.n), u64::from(x)))
            .collect();
        for &l in &lns {
            max_ln = max_ln.max(l);
        }
        if max_ln > f64::NEG_INFINITY {
            for &l in &lns {
                acc += (l - max_ln).exp();
            }
            ln_targets = max_ln + acc.ln();
        }
        let two_e = 2.0 * std::f64::consts::E;
        let m = two_e * (ln_targets + (1.0 / self.delta).ln());
        (m.ceil() as usize).max(1)
    }

    /// Membership probability `p = 1/k` of the construction.
    #[inline]
    pub fn density(&self) -> f64 {
        1.0 / f64::from(self.k)
    }

    /// Build the explicit (materialized) family.
    pub fn build_explicit(&self) -> SelectiveFamily {
        let m = self.prescribed_length();
        if self.k == 1 {
            return SelectiveFamily::new(self.n, 1, vec![BitSet::full(self.n)]);
        }
        let p = self.density();
        let sets = (0..m)
            .map(|j| {
                BitSet::from_iter_members(
                    self.n,
                    (0..self.n).filter(|&u| coin(self.seed, j as u64, u64::from(u), 0, p)),
                )
            })
            .collect();
        SelectiveFamily::new(self.n, self.k, sets)
    }

    /// Build the oracle (on-demand) family. Membership answers are
    /// bit-identical to [`build_explicit`](Self::build_explicit).
    pub fn build_oracle(&self) -> OracleFamily {
        OracleFamily {
            n: self.n,
            k: self.k,
            seed: self.seed,
            len: self.prescribed_length(),
            p: self.density(),
        }
    }
}

/// An `(n,k)`-selective family represented as a PRF oracle: membership is
/// computed on demand, nothing is materialized.
#[derive(Clone, Copy, Debug)]
pub struct OracleFamily {
    n: u32,
    k: u32,
    seed: u64,
    len: usize,
    p: f64,
}

impl OracleFamily {
    /// Universe size `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Target contention bound `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Family length `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the family is empty (never: the builder emits `m ≥ 1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does station `id` belong to transmission set `j`?
    #[inline]
    pub fn transmits(&self, id: u32, j: usize) -> bool {
        debug_assert!(j < self.len);
        if self.k == 1 {
            return true; // the single full set
        }
        id < self.n && coin(self.seed, j as u64, u64::from(id), 0, self.p)
    }

    /// Materialize into an explicit family (for verification).
    pub fn materialize(&self) -> SelectiveFamily {
        let sets = (0..self.len)
            .map(|j| {
                BitSet::from_iter_members(self.n, (0..self.n).filter(|&u| self.transmits(u, j)))
            })
            .collect();
        SelectiveFamily::new(self.n, self.k, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn k1_family_is_the_full_set() {
        let fam = RandomFamilyBuilder::new(10, 1).build_explicit();
        assert_eq!(fam.len(), 1);
        assert_eq!(fam.set(0).len(), 10);
        assert!(verify::selective_exhaustive(&fam).is_ok());
    }

    #[test]
    fn prescribed_length_scales_like_k_log_n_over_k() {
        // m(n, k) should grow roughly linearly in k·ln(n/k)+k.
        let m1 = RandomFamilyBuilder::new(1 << 10, 4).prescribed_length() as f64;
        let m2 = RandomFamilyBuilder::new(1 << 10, 16).prescribed_length() as f64;
        let model = |n: f64, k: f64| k * (n / k).ln() + k;
        let ratio_measured = m2 / m1;
        let ratio_model = model(1024.0, 16.0) / model(1024.0, 4.0);
        assert!(
            (ratio_measured / ratio_model - 1.0).abs() < 0.35,
            "measured growth {ratio_measured:.2} vs model {ratio_model:.2}"
        );
    }

    #[test]
    fn small_families_verify_exhaustively() {
        for (n, k) in [(10u32, 2u32), (12, 3), (14, 4), (16, 2)] {
            let fam = RandomFamilyBuilder::new(n, k).seed(7).build_explicit();
            let rep = verify::selective_exhaustive(&fam);
            assert!(rep.is_ok(), "(n={n}, k={k}): {rep:?}");
        }
    }

    #[test]
    fn medium_families_survive_monte_carlo() {
        let fam = RandomFamilyBuilder::new(256, 16).seed(3).build_explicit();
        assert!(verify::selective_monte_carlo(&fam, 3_000, 11).is_ok());
    }

    #[test]
    fn oracle_matches_explicit_bit_for_bit() {
        let b = RandomFamilyBuilder::new(64, 8).seed(99);
        let explicit = b.build_explicit();
        let oracle = b.build_oracle();
        assert_eq!(explicit.len(), oracle.len());
        for j in 0..oracle.len() {
            for u in 0..64u32 {
                assert_eq!(
                    explicit.transmits(u, j),
                    oracle.transmits(u, j),
                    "mismatch at set {j}, station {u}"
                );
            }
        }
    }

    #[test]
    fn oracle_materialize_roundtrip() {
        let b = RandomFamilyBuilder::new(32, 4).seed(5);
        assert_eq!(b.build_explicit(), b.build_oracle().materialize());
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomFamilyBuilder::new(64, 8).seed(1).build_explicit();
        let b = RandomFamilyBuilder::new(64, 8).seed(2).build_explicit();
        assert_ne!(a, b);
    }

    #[test]
    fn length_override_is_respected() {
        let fam = RandomFamilyBuilder::new(64, 8).length(5).build_explicit();
        assert_eq!(fam.len(), 5);
    }

    #[test]
    fn set_density_is_about_one_over_k() {
        let (n, k) = (512u32, 8u32);
        let fam = RandomFamilyBuilder::new(n, k).seed(13).build_explicit();
        let mean_size: f64 =
            fam.sets().iter().map(|s| f64::from(s.len())).sum::<f64>() / fam.len() as f64;
        let expected = f64::from(n) / f64::from(k);
        assert!(
            (mean_size - expected).abs() < expected * 0.2,
            "mean set size {mean_size:.1} vs expected {expected:.1}"
        );
    }
}
