//! Verification of (strong) selectivity.
//!
//! *Exhaustive* checks enumerate every target set `X` in the defining size
//! range — exponential, but feasible for the small universes used as ground
//! truth in tests (`n ≲ 24`). *Monte-Carlo* checks sample `X` uniformly from
//! the size range and are used to falsify large constructions (a falsifier,
//! not a certifier: passing means "no counterexample found").

use crate::family::SelectiveFamily;
use crate::math::for_each_subset;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A witness that a family is **not** selective: a target set `X` in the
/// size range for which no family set intersects `X` in exactly one element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterExample {
    /// The unselected target set (sorted station IDs).
    pub x: Vec<u32>,
}

/// The outcome of a verification pass.
pub type VerifyResult = Result<VerifyReport, CounterExample>;

/// Statistics of a successful verification pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Number of target sets checked.
    pub targets_checked: u64,
}

/// The size range `⌈k/2⌉ ..= min(k, n)` of the selectivity definition.
///
/// For `k = 1` the range degenerates to `1..=1` (the singleton sets), which
/// the trivial family `{[n]}` selects.
pub fn selective_size_range(n: u32, k: u32) -> std::ops::RangeInclusive<u32> {
    let hi = k.min(n).max(1);
    let lo = k.div_ceil(2).max(1);
    lo..=hi
}

/// Does some set of `family` intersect `x` in exactly one element?
#[inline]
pub fn selects(family: &SelectiveFamily, x: &[u32]) -> bool {
    family
        .sets()
        .iter()
        .any(|f| f.intersection_size_with_slice(x) == 1)
}

/// For every `x ∈ X`, does some set isolate exactly `x` within `X`?
pub fn strongly_selects(family: &SelectiveFamily, x: &[u32]) -> bool {
    x.iter().all(|&target| {
        family
            .sets()
            .iter()
            .any(|f| f.unique_intersection(x) == Some(target) && f.contains(target))
    })
}

/// Exhaustively verify `(n,k)`-selectivity: every `X` with
/// `k/2 ≤ |X| ≤ k` must be selected. Exponential in `n`; intended for
/// `n ≲ 24`.
pub fn selective_exhaustive(family: &SelectiveFamily) -> VerifyResult {
    let (n, k) = (family.n(), family.k());
    let mut checked = 0u64;
    for size in selective_size_range(n, k) {
        let mut counterexample = None;
        let visited = for_each_subset(n, size, |x| {
            if selects(family, x) {
                true
            } else {
                counterexample = Some(CounterExample { x: x.to_vec() });
                false
            }
        });
        checked += visited;
        if let Some(ce) = counterexample {
            return Err(ce);
        }
    }
    Ok(VerifyReport {
        targets_checked: checked,
    })
}

/// Exhaustively verify **strong** `(n,k)`-selectivity.
///
/// Strong selectivity is downward monotone in `|X|` (a set isolating `x`
/// within `X` also isolates it within any `X' ⊆ X` containing `x`), so only
/// targets of size exactly `min(k, n)` need checking.
pub fn strongly_selective_exhaustive(family: &SelectiveFamily) -> VerifyResult {
    let (n, k) = (family.n(), family.k());
    let size = k.min(n);
    let mut counterexample = None;
    let checked = for_each_subset(n, size, |x| {
        if strongly_selects(family, x) {
            true
        } else {
            counterexample = Some(CounterExample { x: x.to_vec() });
            false
        }
    });
    match counterexample {
        Some(ce) => Err(ce),
        None => Ok(VerifyReport {
            targets_checked: checked,
        }),
    }
}

/// Sample a uniform random subset of `{0,…,n-1}` of the given size.
fn random_subset<R: Rng>(n: u32, size: u32, rng: &mut R) -> Vec<u32> {
    // Partial Fisher-Yates on an index vector; fine for verification sizes.
    let mut all: Vec<u32> = (0..n).collect();
    let (shuffled, _) = all.partial_shuffle(rng, size as usize);
    let mut x = shuffled.to_vec();
    x.sort_unstable();
    x
}

/// Monte-Carlo falsification of `(n,k)`-selectivity: sample `trials` target
/// sets with sizes uniform in the defining range.
pub fn selective_monte_carlo(family: &SelectiveFamily, trials: u64, seed: u64) -> VerifyResult {
    let (n, k) = (family.n(), family.k());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let range = selective_size_range(n, k);
    let (lo, hi) = (*range.start(), *range.end());
    if lo > hi {
        // Degenerate range (k/2 > n): no target sets exist, vacuously true.
        return Ok(VerifyReport { targets_checked: 0 });
    }
    for _ in 0..trials {
        let size = rng.gen_range(lo..=hi);
        let x = random_subset(n, size, &mut rng);
        if !selects(family, &x) {
            return Err(CounterExample { x });
        }
    }
    Ok(VerifyReport {
        targets_checked: trials,
    })
}

/// Monte-Carlo falsification of strong `(n,k)`-selectivity.
pub fn strongly_selective_monte_carlo(
    family: &SelectiveFamily,
    trials: u64,
    seed: u64,
) -> VerifyResult {
    let (n, k) = (family.n(), family.k());
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5357_524F_4E47_214B);
    let size = k.min(n);
    for _ in 0..trials {
        let x = random_subset(n, size, &mut rng);
        if !strongly_selects(family, &x) {
            return Err(CounterExample { x });
        }
    }
    Ok(VerifyReport {
        targets_checked: trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;

    fn fam(n: u32, k: u32, sets: &[&[u32]]) -> SelectiveFamily {
        SelectiveFamily::new(
            n,
            k,
            sets.iter()
                .map(|s| BitSet::from_iter_members(n, s.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn size_range_follows_definition() {
        assert_eq!(selective_size_range(10, 2), 1..=2);
        assert_eq!(selective_size_range(10, 4), 2..=4);
        assert_eq!(selective_size_range(10, 5), 3..=5);
        assert_eq!(selective_size_range(10, 1), 1..=1);
        // k/2 > n: the range is empty (start exceeds end).
        let degenerate = selective_size_range(3, 8);
        assert!(degenerate.is_empty());
        assert_eq!((*degenerate.start(), *degenerate.end()), (4, 3));
    }

    #[test]
    fn singletons_are_strongly_selective() {
        // The family of all singletons is (n,k)-strongly-selective for any k.
        let n = 6;
        let sets: Vec<Vec<u32>> = (0..n).map(|i| vec![i]).collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let f = fam(n, 3, &refs);
        assert!(selective_exhaustive(&f).is_ok());
        assert!(strongly_selective_exhaustive(&f).is_ok());
    }

    #[test]
    fn full_set_selects_singletons_only() {
        // {[n]} is (n,1)-selective (isolates singletons) but not (n,2)-…
        let f1 = fam(5, 1, &[&[0, 1, 2, 3, 4]]);
        assert!(selective_exhaustive(&f1).is_ok());
        let f2 = fam(5, 2, &[&[0, 1, 2, 3, 4]]);
        let err = selective_exhaustive(&f2).unwrap_err();
        assert_eq!(err.x.len(), 2); // first failing |X| = 2
    }

    #[test]
    fn counterexample_is_genuine() {
        // Family that always hits {0,1} twice or zero times.
        let f = fam(4, 2, &[&[0, 1], &[2, 3], &[]]);
        let err = selective_exhaustive(&f).unwrap_err();
        assert!(!selects(&f, &err.x));
    }

    #[test]
    fn strong_selectivity_strictly_stronger() {
        // F = {{0},{0,1}} selects {0,1} (via {0}) and both singletons
        // ({0} isolates 0; {0,1}∩{1}={1} isolates 1), so it is (2,2)-
        // selective; but it does NOT strongly select 1 within {0,1}.
        let f = fam(2, 2, &[&[0], &[0, 1]]);
        assert!(selective_exhaustive(&f).is_ok());
        let err = strongly_selective_exhaustive(&f).unwrap_err();
        assert_eq!(err.x, vec![0, 1]);
    }

    #[test]
    fn monte_carlo_agrees_with_exhaustive_on_good_family() {
        let n = 8;
        let sets: Vec<Vec<u32>> = (0..n).map(|i| vec![i]).collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let f = fam(n, 4, &refs);
        assert!(selective_exhaustive(&f).is_ok());
        assert!(selective_monte_carlo(&f, 500, 1).is_ok());
        assert!(strongly_selective_monte_carlo(&f, 200, 1).is_ok());
    }

    #[test]
    fn monte_carlo_finds_gross_violations() {
        // Empty family cannot select anything.
        let f = fam(8, 4, &[]);
        assert!(selective_monte_carlo(&f, 50, 3).is_err());
        assert!(strongly_selective_monte_carlo(&f, 50, 3).is_err());
    }

    #[test]
    fn reports_count_targets() {
        let n = 6;
        let sets: Vec<Vec<u32>> = (0..n).map(|i| vec![i]).collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let f = fam(n, 2, &refs);
        let rep = selective_exhaustive(&f).unwrap();
        // sizes 1 and 2: C(6,1) + C(6,2) = 6 + 15 = 21.
        assert_eq!(rep.targets_checked, 21);
    }
}
