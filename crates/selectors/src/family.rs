//! [`SelectiveFamily`]: an ordered family of transmission sets with its
//! `(n, k)` parameters.
//!
//! The *order* of the sets matters: a family doubles as a transmission
//! schedule ("a station `x ∈ X` transmitting according to a selective family
//! `F = {F₁, …, F_{|F|}}` will transmit at time `j` iff `x ∈ F_j`", §3), and
//! its length is exactly the time the schedule takes.

use crate::bitset::BitSet;

/// An ordered family of transmission sets over the universe `{0, …, n-1}`,
/// annotated with the `(n, k)` parameters it claims to be selective for.
///
/// The claim is *not* checked on construction (checking is exponential in
/// general); the [`verify`](crate::verify) module provides exhaustive and
/// Monte-Carlo checkers, and each construction documents its guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectiveFamily {
    n: u32,
    k: u32,
    sets: Vec<BitSet>,
}

impl SelectiveFamily {
    /// Wrap an ordered list of transmission sets as an `(n,k)` family.
    ///
    /// Panics if any set has a universe different from `n`.
    pub fn new(n: u32, k: u32, sets: Vec<BitSet>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(
                s.universe(),
                n,
                "set {i} has universe {} but family claims n={n}",
                s.universe()
            );
        }
        SelectiveFamily { n, k, sets }
    }

    /// Universe size `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Target contention bound `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of transmission sets (= schedule length), the paper's `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` iff the family has no sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The `j`-th transmission set.
    #[inline]
    pub fn set(&self, j: usize) -> &BitSet {
        &self.sets[j]
    }

    /// All sets in order.
    #[inline]
    pub fn sets(&self) -> &[BitSet] {
        &self.sets
    }

    /// Does station `id` transmit at schedule position `j`?
    #[inline]
    pub fn transmits(&self, id: u32, j: usize) -> bool {
        self.sets[j].contains(id)
    }

    /// Concatenate families over the same universe: `⟨self, other⟩`.
    ///
    /// The result claims the *larger* `k` (the weaker of the two claims; the
    /// concatenation is selective for any `X` either component handles).
    pub fn concat(mut self, other: SelectiveFamily) -> SelectiveFamily {
        assert_eq!(self.n, other.n, "concat: universe mismatch");
        self.k = self.k.max(other.k);
        self.sets.extend(other.sets);
        self
    }

    /// Total number of station-slots (sum of set sizes) — a measure of the
    /// family's *energy* (how often stations transmit when running it).
    pub fn total_weight(&self) -> u64 {
        self.sets.iter().map(|s| u64::from(s.len())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: u32, members: &[u32]) -> BitSet {
        BitSet::from_iter_members(n, members.iter().copied())
    }

    #[test]
    fn construction_and_accessors() {
        let fam = SelectiveFamily::new(8, 2, vec![set(8, &[0, 1]), set(8, &[2])]);
        assert_eq!(fam.n(), 8);
        assert_eq!(fam.k(), 2);
        assert_eq!(fam.len(), 2);
        assert!(!fam.is_empty());
        assert!(fam.transmits(0, 0));
        assert!(fam.transmits(1, 0));
        assert!(!fam.transmits(2, 0));
        assert!(fam.transmits(2, 1));
        assert_eq!(fam.total_weight(), 3);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn construction_rejects_universe_mismatch() {
        SelectiveFamily::new(8, 2, vec![set(9, &[0])]);
    }

    #[test]
    fn concat_appends_and_takes_max_k() {
        let a = SelectiveFamily::new(8, 2, vec![set(8, &[0])]);
        let b = SelectiveFamily::new(8, 4, vec![set(8, &[1]), set(8, &[2])]);
        let c = a.concat(b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.k(), 4);
        assert!(c.transmits(0, 0));
        assert!(c.transmits(1, 1));
        assert!(c.transmits(2, 2));
    }

    #[test]
    fn empty_family() {
        let fam = SelectiveFamily::new(4, 2, vec![]);
        assert!(fam.is_empty());
        assert_eq!(fam.len(), 0);
        assert_eq!(fam.total_weight(), 0);
    }
}
