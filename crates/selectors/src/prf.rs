//! A deterministic pseudo-random membership function.
//!
//! Oracle-represented families (and the waking matrices built on top of them
//! in `wakeup-core`) need a function
//! `member(seed, row, column, station) -> bool` with a prescribed density
//! `2^{-d}` such that *all* stations agree on it while none stores the
//! matrix. We implement it as a SplitMix64-style mixing cascade: each of the
//! inputs is diffused through the finalizer with distinct round constants,
//! then the 64-bit output is compared against a threshold.
//!
//! This mirrors exactly how the paper's probabilistic-method object is used:
//! the proof draws each entry `M_{i,j}` independently with probability
//! `2^{-(i+ρ(j))}`; we replace "independent coins" with "PRF evaluations
//! under a shared seed", which is the standard practical derandomization
//! (every station can evaluate its own entries in O(1) without
//! communication).

/// SplitMix64 finalizer (same construction as `mac_sim::rng::split_mix64`;
/// duplicated so the combinatorial crate stays dependency-free).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform 64-bit hash of `(seed, a, b, c)`.
///
/// Used as the source of "independent" coins: distinct argument tuples give
/// decorrelated outputs; equal tuples always give equal outputs. Defined as
/// the [`GapScanner`] prefix over `(seed, a, b)` finalized with `c` — there
/// is exactly one copy of the mixing cascade.
#[inline]
pub fn hash4(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    GapScanner::new(seed, a, b).hash(c)
}

/// A Bernoulli coin with probability exactly `2^{-d}`:
/// `true` iff the top `d` bits of the hash are all zero.
///
/// For `d = 0` the coin is always `true`; for `d ≥ 64` it is always `false`
/// (probability `2^{-64}` is rounded to zero — far below anything the
/// constructions use).
#[inline]
pub fn coin_pow2(seed: u64, a: u64, b: u64, c: u64, d: u32) -> bool {
    GapScanner::new(seed, a, b).coin(c, d)
}

/// An amortized evaluator for runs of coins sharing a `(seed, a, b)`
/// prefix: jump to the next *set* position of a pseudorandom row in
/// O(expected gap) with a fraction of the per-coin hashing cost.
///
/// The cascade diffuses its four inputs sequentially, so the mixing state
/// after folding `seed`, `a` and `b` can be computed once and reused for
/// every `c`. [`GapScanner::coin`] is **bit-identical** to
/// [`coin_pow2`]`(seed, a, b, c, d)` — [`hash4`] and [`coin_pow2`] are
/// defined *in terms of* the scanner, so there is a single copy of the
/// round constants — but amortized use performs 2 of the 5 mixing rounds
/// per evaluation instead of all 5: the difference between a structure-
/// aware `next_transmission` scan over a PRF row and simply replaying the
/// dense per-slot work.
///
/// The intended layout therefore puts the *scan variable* (the column /
/// slot) in the `c` position and the quantities fixed per scan (row index,
/// station) in `a` and `b`.
#[derive(Clone, Copy, Debug)]
pub struct GapScanner {
    /// Mixing state after folding `seed`, `a` and `b`.
    prefix: u64,
}

impl GapScanner {
    /// Precompute the mixing prefix for coins of the form
    /// `coin_pow2(seed, a, b, ·, ·)`. Each input is folded with a distinct
    /// additive constant so that permutations of the arguments yield
    /// unrelated outputs.
    #[inline]
    pub fn new(seed: u64, a: u64, b: u64) -> Self {
        let mut h = mix(seed ^ 0x243F_6A88_85A3_08D3);
        h = mix(h ^ a ^ 0x1319_8A2E_0370_7344);
        h = mix(h ^ b ^ 0xA409_3822_299F_31D0);
        GapScanner { prefix: h }
    }

    /// The full hash — equals `hash4(seed, a, b, c)` bit for bit (it *is*
    /// that function's definition).
    #[inline]
    pub fn hash(&self, c: u64) -> u64 {
        mix(mix(self.prefix ^ c ^ 0x082E_FA98_EC4E_6C89))
    }

    /// The density-`2^{-d}` coin — equals `coin_pow2(seed, a, b, c, d)`
    /// bit for bit.
    #[inline]
    pub fn coin(&self, c: u64, d: u32) -> bool {
        if d == 0 {
            return true;
        }
        if d >= 64 {
            return false;
        }
        self.hash(c) >> (64 - d) == 0
    }

    /// The smallest `c ∈ [from, to)` whose coin (at exponent `density(c)`)
    /// is set, or `None` if the whole range comes up empty. Expected cost
    /// `O(min(2^d, to − from))` coin evaluations — one gap, not one row.
    #[inline]
    pub fn next_set(&self, from: u64, to: u64, mut density: impl FnMut(u64) -> u32) -> Option<u64> {
        (from..to).find(|&c| self.coin(c, density(c)))
    }
}

/// A Bernoulli coin with arbitrary probability `p ∈ [0, 1]`.
#[inline]
pub fn coin(seed: u64, a: u64, b: u64, c: u64, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    // Compare the hash against p·2^64 without losing precision at the top.
    let threshold = (p * (u64::MAX as f64)) as u64;
    hash4(seed, a, b, c) <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash4_deterministic_and_argument_sensitive() {
        assert_eq!(hash4(1, 2, 3, 4), hash4(1, 2, 3, 4));
        let base = hash4(1, 2, 3, 4);
        assert_ne!(base, hash4(0, 2, 3, 4));
        assert_ne!(base, hash4(1, 3, 2, 4));
        assert_ne!(base, hash4(1, 2, 4, 3));
        assert_ne!(base, hash4(1, 2, 3, 5));
    }

    #[test]
    fn coin_pow2_extremes() {
        assert!(coin_pow2(9, 1, 2, 3, 0));
        assert!(!coin_pow2(9, 1, 2, 3, 64));
        assert!(!coin_pow2(9, 1, 2, 3, 200));
    }

    #[test]
    fn coin_pow2_density_matches_2_to_minus_d() {
        // Empirical density over many evaluations must track 2^{-d}.
        for d in [1u32, 2, 3, 5] {
            let trials = 200_000u64;
            let hits = (0..trials).filter(|&i| coin_pow2(42, i, 7, 13, d)).count() as f64;
            let expected = trials as f64 / f64::from(1u32 << d);
            let sd =
                (trials as f64 * 2f64.powi(-(d as i32)) * (1.0 - 2f64.powi(-(d as i32)))).sqrt();
            assert!(
                (hits - expected).abs() < 6.0 * sd,
                "d={d}: {hits} hits vs expected {expected} (sd {sd})"
            );
        }
    }

    #[test]
    fn coin_density_matches_p() {
        for p in [0.1f64, 0.5, 0.9] {
            let trials = 100_000u64;
            let hits = (0..trials).filter(|&i| coin(7, i, 0, 0, p)).count() as f64;
            let expected = trials as f64 * p;
            let sd = (trials as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (hits - expected).abs() < 6.0 * sd,
                "p={p}: {hits} vs {expected}"
            );
        }
        assert!(coin(1, 2, 3, 4, 1.0));
        assert!(!coin(1, 2, 3, 4, 0.0));
    }

    #[test]
    fn gap_scanner_is_bit_identical_to_the_plain_coins() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for a in [0u64, 3, 19] {
                for b in [0u64, 11, 1 << 40] {
                    let sc = GapScanner::new(seed, a, b);
                    for c in 0..200u64 {
                        assert_eq!(sc.hash(c), hash4(seed, a, b, c));
                        for d in [0u32, 1, 4, 9, 64] {
                            assert_eq!(
                                sc.coin(c, d),
                                coin_pow2(seed, a, b, c, d),
                                "seed={seed} a={a} b={b} c={c} d={d}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gap_scanner_next_set_finds_the_first_hit() {
        let sc = GapScanner::new(42, 2, 5);
        let d = 3u32;
        // Reference: linear scan with the plain coin.
        let reference = (0..10_000u64).find(|&c| coin_pow2(42, 2, 5, c, d));
        assert_eq!(sc.next_set(0, 10_000, |_| d), reference);
        let hit = reference.unwrap();
        // Starting past the first hit finds the next one, not the same.
        let second = sc.next_set(hit + 1, 10_000, |_| d).unwrap();
        assert!(second > hit);
        // An empty range and an all-misses range answer None.
        assert_eq!(sc.next_set(5, 5, |_| d), None);
        assert_eq!(sc.next_set(0, 10_000, |_| 64), None);
    }

    #[test]
    fn gap_scanner_expected_gap_tracks_density() {
        // Mean gap between hits at density 2^{-d} must be ≈ 2^d.
        let sc = GapScanner::new(9, 1, 2);
        for d in [2u32, 4, 6] {
            let mut hits = 0u64;
            let mut c = 0u64;
            let span = 1u64 << (d + 12);
            while let Some(h) = sc.next_set(c, span, |_| d) {
                hits += 1;
                c = h + 1;
            }
            let mean_gap = span as f64 / hits as f64;
            let expected = f64::from(1u32 << d);
            assert!(
                (mean_gap / expected - 1.0).abs() < 0.1,
                "d={d}: mean gap {mean_gap} vs 2^d {expected}"
            );
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        // Agreement fraction between two seeds at density 1/2 should be ~1/2.
        let trials = 50_000u64;
        let agree = (0..trials)
            .filter(|&i| coin_pow2(1, i, 0, 0, 1) == coin_pow2(2, i, 0, 0, 1))
            .count() as f64;
        assert!(
            (agree - trials as f64 / 2.0).abs() < 6.0 * (trials as f64 / 4.0).sqrt(),
            "agreement {agree}"
        );
    }
}
