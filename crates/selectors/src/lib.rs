//! # selectors — combinatorial selection structures for multiple access channels
//!
//! Deterministic contention resolution on a multiple access channel is built
//! on *selective families* (De Marco & Kowalski 2013, §3; Komlós & Greenberg
//! 1985; Clementi–Monti–Silvestri 2003). This crate implements the
//! combinatorial layer from scratch:
//!
//! * [`bitset`] — a compact fixed-universe bitset (the representation of a
//!   *transmission set* `F ⊆ [n]`);
//! * [`family`] — [`SelectiveFamily`]: an ordered list of transmission sets
//!   with its `(n, k)` parameters;
//! * [`random`] — the Komlós–Greenberg probabilistic construction of
//!   `(n,k)`-selective families of size `O(k + k·log(n/k))`, with explicit
//!   union-bound constants, in both explicit (materialized) and oracle
//!   (seeded PRF, O(1) memory) representations;
//! * [`greedy`] — an exact greedy set-cover construction for small `n`
//!   (ground truth for tests);
//! * [`kautz_singleton`] — explicit *strongly* selective families via
//!   Reed–Solomon superimposed codes (Kautz & Singleton 1964), size
//!   `O(k² log² n)`, fully deterministic;
//! * [`bitsplit`] — the folklore explicit `(n,2)`-selective family of size
//!   `2⌈log n⌉ + 1`;
//! * [`verify`] — exhaustive and Monte-Carlo verification of (strong)
//!   selectivity;
//! * [`schedule`] — schedule algebra: concatenation, cyclic repetition and
//!   the odd/even interleaving used by the paper's Scenario A/B algorithms;
//! * [`prf`] — the deterministic pseudo-random membership function behind
//!   oracle families and waking matrices;
//! * [`math`] — small number-theoretic and combinatorial helpers
//!   (`ceil_log2`, primality, `k`-subset enumeration).
//!
//! ## Definition
//!
//! Given `n` and `2 ≤ k ≤ n`, an **(n,k)-selective family** is a family `F`
//! of subsets of `[n]` such that for every `X ⊆ [n]` with
//! `k/2 ≤ |X| ≤ k` there exists `F ∈ F` with `|X ∩ F| = 1`.
//! A family is **(n,k)-strongly selective** if for every `X` with `|X| ≤ k`
//! and every `x ∈ X` there exists `F` with `X ∩ F = {x}`.
//!
//! The station universe here is plain `u32` IDs `0..n`; the simulation layer
//! (`mac-sim`) wraps them in `StationId`.
//!
//! ```
//! use selectors::prelude::*;
//!
//! // An explicit, randomly constructed (64, 8)-selective family…
//! let fam = RandomFamilyBuilder::new(64, 8).seed(42).build_explicit();
//! // …verified by Monte-Carlo sampling of target sets X:
//! let report = verify::selective_monte_carlo(&fam, 2_000, 7);
//! assert!(report.is_ok(), "{report:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod bitsplit;
pub mod family;
pub mod greedy;
pub mod kautz_singleton;
pub mod math;
pub mod prf;
pub mod random;
pub mod schedule;
pub mod verify;

pub use bitset::{transpose64, BitSet};
pub use family::SelectiveFamily;
pub use random::RandomFamilyBuilder;
pub use schedule::{NextOne, Schedule, ScheduleExt};

/// Convenient glob import.
pub mod prelude {
    pub use crate::bitset::{transpose64, BitSet};
    pub use crate::bitsplit::bitsplit_family;
    pub use crate::family::SelectiveFamily;
    pub use crate::greedy::GreedyBuilder;
    pub use crate::kautz_singleton::KautzSingleton;
    pub use crate::random::{OracleFamily, RandomFamilyBuilder};
    pub use crate::schedule::{
        ConcatSchedule, CycleSchedule, FamilySchedule, InterleaveSchedule, NextOne, Schedule,
        ScheduleExt,
    };
    pub use crate::verify;
}
