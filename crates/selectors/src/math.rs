//! Small number-theoretic and combinatorial helpers.

/// `⌈log₂ x⌉` for `x ≥ 1`; `ceil_log2(1) = 0`.
///
/// This is the paper's `log x` (the paper omits floors and ceilings; we
/// always round up so that schedule lengths are sufficient).
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1, "ceil_log2 of 0");
    64 - (x - 1).leading_zeros().min(64)
}

/// `⌊log₂ x⌋` for `x ≥ 1`.
#[inline]
pub fn floor_log2(x: u64) -> u32 {
    assert!(x >= 1, "floor_log2 of 0");
    63 - x.leading_zeros()
}

/// The paper's `log n`, made total: `max(1, ⌈log₂ n⌉)`.
///
/// Returning at least 1 keeps row counts, window lengths and family indices
/// positive for the degenerate universes `n ∈ {1, 2}`.
#[inline]
pub fn log_n(n: u64) -> u32 {
    ceil_log2(n.max(2)).max(1)
}

/// The paper's `log log n`, made total: `max(2, ⌈log₂(log n)⌉)`.
///
/// Section 5 needs windows of `log log n` *consecutive* slots over which a
/// density sweep `ρ(j) = j mod log log n` runs; a window of length < 2 would
/// degenerate the sweep, so we clamp from below at 2.
#[inline]
pub fn log_log_n(n: u64) -> u32 {
    ceil_log2(u64::from(log_n(n)).max(2)).max(2)
}

/// The smallest `x ≥ from` with `x ≡ residue (mod modulus)` — the O(1)
/// "when is this station's next round-robin turn?" primitive shared by the
/// round-robin schedules and the interleaved protocols' sparse hints.
///
/// Requires `residue < modulus`.
#[inline]
pub fn next_congruent(from: u64, residue: u64, modulus: u64) -> u64 {
    debug_assert!(residue < modulus, "residue {residue} ≥ modulus {modulus}");
    let r = from % modulus;
    if r <= residue {
        from + (residue - r)
    } else {
        from + (modulus - r) + residue
    }
}

/// Deterministic primality test by trial division (sufficient for the sizes
/// used by Kautz–Singleton parameters, which are at most a few thousand).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    if x.is_multiple_of(3) {
        return x == 3;
    }
    let mut d = 5u64;
    while d.saturating_mul(d) <= x {
        if x.is_multiple_of(d) || x.is_multiple_of(d + 2) {
            return false;
        }
        d += 6;
    }
    true
}

/// The smallest prime `≥ x`.
pub fn next_prime(x: u64) -> u64 {
    let mut p = x.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// `ln C(n, k)` (natural log of the binomial coefficient).
///
/// Used to size randomized constructions from union bounds without
/// overflowing; `ln_choose(n, 0) = 0`. Small `min(k, n−k)` is summed
/// exactly; large arguments use the Stirling-series log-factorial, accurate
/// to ~1e-12 relative — family sizers call this for every target-set size
/// up to `k`, so the exact `O(k)` summation would make them `O(k²)` (≈ a
/// minute per construction at `k = 2^17`, and `n = 2^20` universes were
/// unbuildable).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    let k = k.min(n - k);
    if k <= 256 {
        let mut acc = 0.0f64;
        for i in 0..k {
            acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        return acc;
    }
    // k > 256 ⇒ all of n, k, n−k are ≥ 256, deep inside the series' range.
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(x!)` by the Stirling series with three correction terms — relative
/// error below 1e-12 for `x ≥ 256` (callers with smaller `x` take
/// [`ln_choose`]'s exact path).
fn ln_factorial(x: u64) -> f64 {
    debug_assert!(x >= 256);
    let x = x as f64;
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    (x + 0.5) * x.ln() - x + 0.5 * ln_2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

/// Iterator over all `k`-subsets of `{0, …, n-1}` in lexicographic order,
/// yielding each subset as a sorted `&[u32]` via a visitor to avoid
/// allocation.
///
/// Returns the number of subsets visited. The visitor may return `false` to
/// stop early (e.g. when a counterexample is found).
pub fn for_each_subset<F: FnMut(&[u32]) -> bool>(n: u32, k: u32, mut visit: F) -> u64 {
    if k > n {
        return 0;
    }
    if k == 0 {
        visit(&[]);
        return 1;
    }
    let k = k as usize;
    let mut idx: Vec<u32> = (0..k as u32).collect();
    let mut count = 0u64;
    loop {
        count += 1;
        if !visit(&idx) {
            return count;
        }
        // Advance to the next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return count;
            }
            i -= 1;
            if idx[i] != n - (k - i) as u32 {
                break;
            }
            if i == 0 {
                return count;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Exact binomial coefficient as `u128`, saturating at `u128::MAX`.
pub fn choose(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_congruent_agrees_with_naive_scan() {
        for modulus in [1u64, 2, 3, 7, 16] {
            for residue in 0..modulus {
                for from in 0..60u64 {
                    let naive = (from..).find(|x| x % modulus == residue).unwrap();
                    assert_eq!(
                        next_congruent(from, residue, modulus),
                        naive,
                        "from={from} residue={residue} modulus={modulus}"
                    );
                }
            }
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
    }

    #[test]
    fn log_helpers_are_total_and_clamped() {
        assert_eq!(log_n(1), 1);
        assert_eq!(log_n(2), 1);
        assert_eq!(log_n(3), 2);
        assert_eq!(log_n(1024), 10);
        assert_eq!(log_log_n(1), 2);
        assert_eq!(log_log_n(4), 2);
        assert_eq!(log_log_n(1024), 4); // ceil(log2(10)) = 4
        assert_eq!(log_log_n(1 << 16), 4);
        assert_eq!(log_log_n(1 << 20), 5);
    }

    #[test]
    fn primality_small() {
        let primes: Vec<u64> = (0..30).filter(|&x| is_prime(x)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(is_prime(7919));
        assert!(!is_prime(7917));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(next_prime(90), 97);
    }

    #[test]
    fn ln_choose_matches_exact() {
        for (n, k) in [(10u64, 3u64), (20, 10), (52, 5), (100, 2)] {
            let exact = choose(n, k) as f64;
            let approx = ln_choose(n, k).exp();
            assert!(
                (approx - exact).abs() / exact < 1e-9,
                "n={n} k={k}: {approx} vs {exact}"
            );
        }
        assert_eq!(ln_choose(5, 0), 0.0);
    }

    #[test]
    fn ln_choose_stirling_path_matches_exact_summation() {
        // Straddle the exact/Stirling switchover: the series must agree
        // with the exact O(k) summation to ~1e-12 relative.
        let exact_sum = |n: u64, k: u64| -> f64 {
            let k = k.min(n - k);
            (0..k)
                .map(|i| ((n - i) as f64).ln() - ((i + 1) as f64).ln())
                .sum()
        };
        for (n, k) in [
            (1u64 << 20, 257u64),
            (1 << 20, 4096),
            (1 << 20, 131_072),
            (1 << 20, 1 << 19),
            (600, 300),
            (100_000, 99_000),
        ] {
            let a = ln_choose(n, k);
            let b = exact_sum(n, k);
            assert!(
                (a - b).abs() / b.abs().max(1.0) < 1e-10,
                "n={n} k={k}: stirling {a} vs exact {b}"
            );
        }
        // Continuity at the boundary.
        let lo = ln_choose(1 << 20, 256);
        let hi = ln_choose(1 << 20, 257);
        assert!(hi > lo && (hi - lo) < 20.0);
    }

    #[test]
    fn choose_values() {
        assert_eq!(choose(5, 2), 10);
        assert_eq!(choose(10, 0), 1);
        assert_eq!(choose(10, 10), 1);
        assert_eq!(choose(10, 11), 0);
        assert_eq!(choose(52, 5), 2_598_960);
    }

    #[test]
    fn subset_enumeration_counts() {
        for (n, k) in [(5u32, 2u32), (6, 3), (8, 1), (4, 4), (7, 0)] {
            let mut seen = Vec::new();
            let visited = for_each_subset(n, k, |s| {
                seen.push(s.to_vec());
                true
            });
            assert_eq!(visited as u128, choose(n as u64, k as u64));
            // All distinct, sorted, within range.
            for s in &seen {
                assert!(s.windows(2).all(|w| w[0] < w[1]));
                assert!(s.iter().all(|&x| x < n));
            }
            let set: std::collections::HashSet<_> = seen.iter().collect();
            assert_eq!(set.len(), seen.len());
        }
    }

    #[test]
    fn subset_enumeration_lexicographic_order() {
        let mut seen = Vec::new();
        for_each_subset(4, 2, |s| {
            seen.push(s.to_vec());
            true
        });
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn subset_enumeration_early_stop() {
        let mut calls = 0;
        let visited = for_each_subset(10, 3, |_| {
            calls += 1;
            calls < 5
        });
        assert_eq!(visited, 5);
        assert_eq!(calls, 5);
    }

    #[test]
    fn subset_k_greater_than_n_is_empty() {
        let visited = for_each_subset(3, 5, |_| true);
        assert_eq!(visited, 0);
    }
}
