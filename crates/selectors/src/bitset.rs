//! A compact fixed-universe bitset — the representation of a transmission set
//! `F ⊆ {0, …, n-1}`.
//!
//! Transmission sets are queried in the simulator's innermost loop
//! (`does station u transmit at slot t?`), so membership is a single word
//! load plus mask. Sets also support the bulk operations that verification
//! needs (`intersection_size`, iteration).

/// A set over the fixed universe `{0, …, n-1}`, stored as packed 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    universe: u32,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over a universe of size `n`.
    pub fn new(universe: u32) -> Self {
        BitSet {
            universe,
            words: vec![0; (universe as usize).div_ceil(64)],
        }
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(universe: u32) -> Self {
        let mut s = BitSet::new(universe);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = (i * 64) as u32;
            *w = if lo + 64 <= universe {
                u64::MAX
            } else if lo >= universe {
                0
            } else {
                (1u64 << (universe - lo)) - 1
            };
        }
        s
    }

    /// Build from an iterator of members.
    pub fn from_iter_members<I: IntoIterator<Item = u32>>(universe: u32, members: I) -> Self {
        let mut s = BitSet::new(universe);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// The universe size `n`.
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Insert `x`. Panics if `x` is outside the universe.
    #[inline]
    pub fn insert(&mut self, x: u32) {
        assert!(
            x < self.universe,
            "BitSet: {x} outside universe {}",
            self.universe
        );
        self.words[(x / 64) as usize] |= 1u64 << (x % 64);
    }

    /// Remove `x` (no-op if absent). Panics if `x` is outside the universe.
    #[inline]
    pub fn remove(&mut self, x: u32) {
        assert!(
            x < self.universe,
            "BitSet: {x} outside universe {}",
            self.universe
        );
        self.words[(x / 64) as usize] &= !(1u64 << (x % 64));
    }

    /// Membership test. IDs outside the universe are simply not members.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        if x >= self.universe {
            return false;
        }
        (self.words[(x / 64) as usize] >> (x % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self ∩ other|`, where both sets share a universe.
    pub fn intersection_size(&self, other: &BitSet) -> u32 {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// `|self ∩ X|` where `X` is given as a sorted slice of IDs — the hot
    /// operation of selectivity verification (`X` is small, the set wide).
    pub fn intersection_size_with_slice(&self, x: &[u32]) -> u32 {
        x.iter().filter(|&&id| self.contains(id)).count() as u32
    }

    /// If `|self ∩ X| == 1`, return the unique common element.
    pub fn unique_intersection(&self, x: &[u32]) -> Option<u32> {
        let mut found = None;
        for &id in x {
            if self.contains(id) {
                if found.is_some() {
                    return None;
                }
                found = Some(id);
            }
        }
        found
    }

    /// The smallest member `≥ from`, or `None` — a word-scan successor
    /// query over station IDs. Note this is the *ID* axis (who is in this
    /// one set), the complement of the schedule-level
    /// [`next_one`](crate::Schedule::next_one), which searches the
    /// *position* axis (when does one station transmit).
    pub fn next_member(&self, from: u32) -> Option<u32> {
        if from >= self.universe {
            return None;
        }
        let mut w = (from / 64) as usize;
        // Mask off bits below `from` in the first word.
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some((w as u32) * 64 + word.trailing_zeros());
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = (i * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// Collect members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

/// Transpose a 64×64 bit matrix in place: after the call,
/// bit `j` of `m[i]` equals bit `i` of the original `m[j]`.
///
/// This is the pivot of the word-level slot kernel: the engine gathers one
/// *column* per station (64 slots of transmit decisions packed into a word)
/// and needs one *row* per slot (64 stations packed into a word) to resolve
/// the channel with a popcount. The recursive block-swap runs in
/// `64·log₂64 / 2 = 192` word operations — independent of how many bits are
/// set.
pub fn transpose64(m: &mut [u64; 64]) {
    let mut j: u32 = 32;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        // Swap the two off-diagonal blocks of each 2j×2j tile: the high
        // bits of the low rows with the low bits of the high rows (LSB-
        // first bit numbering — bit 0 is column 0).
        let mut k: usize = 0;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j as usize]) & mask;
            m[k] ^= t << j;
            m[k + j as usize] ^= t;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitSet{{n={}, {:?}}}", self.universe, self.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = BitSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(0));
        assert!(f.contains(69));
        assert!(!f.contains(70));
        assert!(!f.contains(1000));
    }

    #[test]
    fn full_handles_word_boundaries() {
        for n in [1u32, 63, 64, 65, 127, 128, 129] {
            let f = BitSet::full(n);
            assert_eq!(f.len(), n, "n={n}");
            assert_eq!(f.to_vec(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        s.remove(64); // no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn intersection_sizes() {
        let a = BitSet::from_iter_members(128, [1, 5, 64, 100]);
        let b = BitSet::from_iter_members(128, [5, 64, 101]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.intersection_size_with_slice(&[5, 100, 127]), 2);
        assert_eq!(a.intersection_size_with_slice(&[]), 0);
    }

    #[test]
    fn unique_intersection_cases() {
        let a = BitSet::from_iter_members(32, [3, 9]);
        assert_eq!(a.unique_intersection(&[1, 3, 5]), Some(3));
        assert_eq!(a.unique_intersection(&[3, 9]), None); // two hits
        assert_eq!(a.unique_intersection(&[1, 2]), None); // zero hits
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let members = [0u32, 1, 63, 64, 65, 127, 200];
        let s = BitSet::from_iter_members(201, members);
        assert_eq!(s.to_vec(), members.to_vec());
    }

    #[test]
    fn from_iter_members_dedups() {
        let s = BitSet::from_iter_members(10, [3, 3, 3]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn transpose64_matches_naive() {
        // Deterministic pseudo-random matrix (splitmix64 stream).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut m = [0u64; 64];
        for w in m.iter_mut() {
            *w = next();
        }
        let orig = m;
        transpose64(&mut m);
        for (i, &row) in m.iter().enumerate() {
            for (j, &orig_row) in orig.iter().enumerate() {
                assert_eq!(
                    (row >> j) & 1,
                    (orig_row >> i) & 1,
                    "bit ({i},{j}) after transpose"
                );
            }
        }
        // Involution: transposing twice restores the original.
        transpose64(&mut m);
        assert_eq!(m, orig);
    }

    #[test]
    fn transpose64_identity_and_rows() {
        // The identity matrix is its own transpose.
        let mut id = [0u64; 64];
        for (i, w) in id.iter_mut().enumerate() {
            *w = 1u64 << i;
        }
        let orig = id;
        transpose64(&mut id);
        assert_eq!(id, orig);
        // A single full row becomes a single full column.
        let mut m = [0u64; 64];
        m[3] = u64::MAX;
        transpose64(&mut m);
        for (i, w) in m.iter().enumerate() {
            assert_eq!(*w, 1u64 << 3, "row {i}");
        }
    }

    #[test]
    fn next_member_scans_across_words() {
        let members = [0u32, 1, 63, 64, 65, 127, 200];
        let s = BitSet::from_iter_members(201, members);
        assert_eq!(s.next_member(0), Some(0));
        assert_eq!(s.next_member(2), Some(63));
        assert_eq!(s.next_member(63), Some(63));
        assert_eq!(s.next_member(66), Some(127));
        assert_eq!(s.next_member(128), Some(200));
        assert_eq!(s.next_member(200), Some(200));
        assert_eq!(s.next_member(201), None);
        assert_eq!(s.next_member(5000), None);
        // Exhaustive agreement with the naive definition.
        for from in 0..=201u32 {
            let naive = members.iter().copied().find(|&m| m >= from);
            assert_eq!(s.next_member(from), naive, "from={from}");
        }
        assert_eq!(BitSet::new(100).next_member(0), None);
    }
}
