//! The folklore explicit `(n,2)`-selective family of size `2⌈log n⌉ + 1`.
//!
//! For every bit position `b < ⌈log n⌉`, include the two sets
//! `B_{b,0} = {u : bit b of u is 0}` and `B_{b,1} = {u : bit b of u is 1}`;
//! finally include the full set `[n]`.
//!
//! *Why it works.* A target set `X` with `|X| = 2`, say `X = {x, y}` with
//! `x ≠ y`, differs in some bit `b`; then `B_{b, bit_b(x)}` contains `x` but
//! not `y`, so it intersects `X` exactly once. A target with `|X| = 1` is
//! isolated by the full set. (The size range of `(n,2)`-selectivity is
//! `1 ≤ |X| ≤ 2`.)
//!
//! This is the smallest explicit construction in the repository and doubles
//! as a readable worked example of the selectivity property.

use crate::bitset::BitSet;
use crate::family::SelectiveFamily;
use crate::math::ceil_log2;

/// Build the explicit `(n,2)`-selective family of size `2⌈log₂ n⌉ + 1`.
pub fn bitsplit_family(n: u32) -> SelectiveFamily {
    assert!(n >= 1);
    let bits = ceil_log2(u64::from(n).max(2)).max(1);
    let mut sets = Vec::with_capacity(2 * bits as usize + 1);
    for b in 0..bits {
        for v in [0u32, 1u32] {
            sets.push(BitSet::from_iter_members(
                n,
                (0..n).filter(|&u| (u >> b) & 1 == v),
            ));
        }
    }
    sets.push(BitSet::full(n));
    SelectiveFamily::new(n, 2, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn sizes_match_formula() {
        for n in [2u32, 3, 4, 8, 9, 16, 33] {
            let fam = bitsplit_family(n);
            let bits = ceil_log2(u64::from(n).max(2)).max(1);
            assert_eq!(fam.len(), 2 * bits as usize + 1, "n={n}");
        }
    }

    #[test]
    fn exhaustively_selective_for_small_n() {
        for n in [2u32, 3, 5, 8, 13, 16, 20] {
            let fam = bitsplit_family(n);
            assert!(
                verify::selective_exhaustive(&fam).is_ok(),
                "bitsplit not (n,2)-selective for n={n}"
            );
        }
    }

    #[test]
    fn pairs_are_split_by_some_bit_set() {
        let fam = bitsplit_family(16);
        // For any distinct pair, some set contains exactly one of them.
        for x in 0..16u32 {
            for y in (x + 1)..16 {
                assert!(
                    fam.sets()
                        .iter()
                        .any(|f| f.intersection_size_with_slice(&[x, y]) == 1),
                    "pair ({x},{y}) not split"
                );
            }
        }
    }

    #[test]
    fn n1_degenerate_universe() {
        let fam = bitsplit_family(1);
        // Only target is X = {0}; the full set isolates it.
        assert!(verify::selective_exhaustive(&fam).is_ok());
    }

    #[test]
    fn complement_structure() {
        // B_{b,0} and B_{b,1} partition the universe.
        let fam = bitsplit_family(8);
        for b in 0..3 {
            let s0 = fam.set(2 * b);
            let s1 = fam.set(2 * b + 1);
            assert_eq!(s0.len() + s1.len(), 8);
            assert_eq!(s0.intersection_size(s1), 0);
        }
    }
}
