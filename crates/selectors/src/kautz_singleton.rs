//! Explicit **strongly selective** families via Kautz–Singleton superimposed
//! codes (Reed–Solomon concatenated with one-hot encoding).
//!
//! ## Construction
//!
//! Choose a prime `q` and a dimension `m ≥ 1` with `q^m ≥ n` and
//! `q ≥ k·(m-1) + 1`. Identify station `u < n` with the polynomial `p_u` over
//! `GF(q)` whose coefficients are the base-`q` digits of `u` (degree `< m`).
//! The family has one transmission set per pair `(a, v) ∈ GF(q) × GF(q)`:
//!
//! ```text
//! F_{a,v} = { u : p_u(a) = v }      (q² sets)
//! ```
//!
//! ## Why it is strongly selective
//!
//! Two distinct polynomials of degree `< m` agree on at most `m-1` points.
//! Fix `X` with `|X| ≤ k` and `x ∈ X`: the evaluation points `a` where *some*
//! other `y ∈ X` collides with `x` (`p_y(a) = p_x(a)`) number at most
//! `(|X|-1)(m-1) ≤ (k-1)(m-1) < q`. Hence some point `a*` is collision-free,
//! and `F_{a*, p_x(a*)} ∩ X = {x}`. ∎
//!
//! The family size is `q² = O(k² log² n / log² k)` — polynomially larger than
//! the probabilistic `O(k log(n/k))` bound, but **fully deterministic and
//! explicitly constructible**, which the paper's open problem (§7) asks for.
//! It is the classical construction of Kautz & Singleton (1964), cited as
//! \[26\] in the paper.
//!
//! For `m = 1` (i.e. `q ≥ n`) the construction degenerates gracefully: each
//! station is a constant polynomial, and the `q` non-redundant sets are the
//! singletons — round-robin as a code.

use crate::bitset::BitSet;
use crate::family::SelectiveFamily;
use crate::math::{is_prime, next_prime};

/// An explicit `(n,k)`-strongly-selective family from a Reed–Solomon
/// superimposed code.
#[derive(Clone, Debug)]
pub struct KautzSingleton {
    n: u32,
    k: u32,
    /// Field size (prime).
    q: u32,
    /// Number of base-`q` digits (polynomial coefficients).
    m: u32,
}

impl KautzSingleton {
    /// Choose code parameters for an `(n,k)`-strongly-selective family,
    /// minimizing the family size `q²` over admissible `(q, m)` pairs.
    pub fn new(n: u32, k: u32) -> Self {
        assert!(n >= 1, "n must be ≥ 1");
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        let mut best: Option<(u32, u32)> = None; // (q, m)
                                                 // m = 1 requires q ≥ n; larger m trades field size for degree.
        for m in 1..=32u32 {
            // Need q^m ≥ n and q ≥ k(m-1)+1 (strict collision-count bound).
            let q_floor_size = int_root_ceil(u64::from(n), m);
            let q_floor_deg = u64::from(k) * u64::from(m - 1) + 1;
            let q = next_prime(q_floor_size.max(q_floor_deg).max(2));
            if q > u64::from(u32::MAX) {
                continue;
            }
            let q = q as u32;
            if best.map(|(bq, _)| q < bq).unwrap_or(true) {
                best = Some((q, m));
            }
            // Once q is dominated by the degree constraint, growing m only
            // increases q; stop.
            if u64::from(k) * u64::from(m) + 1 > q_floor_size {
                break;
            }
        }
        let (q, m) = best.expect("parameter search cannot fail for n ≥ 1");
        debug_assert!(is_prime(u64::from(q)));
        KautzSingleton { n, k, q, m }
    }

    /// Field size `q` (prime).
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Polynomial dimension `m` (number of coefficients).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Family length: `q²` sets (one per `(evaluation point, value)` pair).
    #[inline]
    pub fn len(&self) -> usize {
        self.q as usize * self.q as usize
    }

    /// `true` iff the family is empty (never happens: `q ≥ 2`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate station `u`'s polynomial at point `a` (both in `GF(q)`):
    /// Horner's rule on the base-`q` digits of `u`, most significant first.
    #[inline]
    pub fn eval(&self, u: u32, a: u32) -> u32 {
        let q = u64::from(self.q);
        // Extract digits: u = d_0 + d_1 q + d_2 q² + …
        let mut digits = [0u64; 32];
        let mut rest = u64::from(u);
        for d in digits.iter_mut().take(self.m as usize) {
            *d = rest % q;
            rest /= q;
        }
        // Horner from the highest digit.
        let mut acc = 0u64;
        for i in (0..self.m as usize).rev() {
            acc = (acc * u64::from(a) + digits[i]) % q;
        }
        acc as u32
    }

    /// Does station `u` belong to set `j` (where `j = a·q + v` encodes the
    /// `(point, value)` pair)?
    #[inline]
    pub fn transmits(&self, u: u32, j: usize) -> bool {
        if u >= self.n {
            return false;
        }
        let a = (j / self.q as usize) as u32;
        let v = (j % self.q as usize) as u32;
        self.eval(u, a) == v
    }

    /// Materialize into an explicit [`SelectiveFamily`] (it is strongly
    /// selective, hence also `(n,k)`-selective).
    pub fn materialize(&self) -> SelectiveFamily {
        let sets = (0..self.len())
            .map(|j| {
                BitSet::from_iter_members(self.n, (0..self.n).filter(|&u| self.transmits(u, j)))
            })
            .collect();
        SelectiveFamily::new(self.n, self.k, sets)
    }
}

/// `⌈n^{1/m}⌉` by integer search (small inputs; exactness matters, floating
/// point does not).
fn int_root_ceil(n: u64, m: u32) -> u64 {
    if m == 1 || n <= 1 {
        return n;
    }
    let mut r = 1u64;
    while !pow_at_least(r, m, n) {
        r += 1;
    }
    r
}

/// Does `r^m ≥ n`, computed without overflow?
fn pow_at_least(r: u64, m: u32, n: u64) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..m {
        acc = acc.saturating_mul(u128::from(r));
        if acc >= u128::from(n) {
            return true;
        }
    }
    acc >= u128::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn parameters_satisfy_constraints() {
        for (n, k) in [(16u32, 2u32), (64, 3), (256, 4), (1024, 8), (7, 7)] {
            let ks = KautzSingleton::new(n, k);
            assert!(is_prime(u64::from(ks.q())), "(n={n},k={k}) q not prime");
            assert!(
                pow_at_least(u64::from(ks.q()), ks.m(), u64::from(n)),
                "(n={n},k={k}) q^m < n"
            );
            assert!(
                ks.q() > k * (ks.m() - 1),
                "(n={n},k={k}) degree constraint violated: q={} m={}",
                ks.q(),
                ks.m()
            );
        }
    }

    #[test]
    fn strongly_selective_exhaustive_small() {
        for (n, k) in [(9u32, 2u32), (12, 3), (16, 2), (15, 4)] {
            let fam = KautzSingleton::new(n, k).materialize();
            assert!(
                verify::strongly_selective_exhaustive(&fam).is_ok(),
                "KS not strongly selective for (n={n}, k={k})"
            );
        }
    }

    #[test]
    fn also_plainly_selective() {
        for (n, k) in [(12u32, 3u32), (16, 4)] {
            let fam = KautzSingleton::new(n, k).materialize();
            assert!(verify::selective_exhaustive(&fam).is_ok(), "(n={n},k={k})");
        }
    }

    #[test]
    fn strongly_selective_monte_carlo_medium() {
        let ks = KautzSingleton::new(512, 6);
        let fam = ks.materialize();
        assert!(verify::strongly_selective_monte_carlo(&fam, 400, 17).is_ok());
    }

    #[test]
    fn eval_is_polynomial_evaluation() {
        // q = 5, m = 2: u = d0 + 5·d1 ⇒ p_u(a) = d1·a + d0 mod 5.
        let ks = KautzSingleton {
            n: 25,
            k: 2,
            q: 5,
            m: 2,
        };
        for u in 0..25u32 {
            let (d0, d1) = (u % 5, u / 5);
            for a in 0..5u32 {
                assert_eq!(ks.eval(u, a), (d1 * a + d0) % 5, "u={u} a={a}");
            }
        }
    }

    #[test]
    fn rows_partition_stations_per_evaluation_point() {
        // For each point a, the sets {F_{a,v}}_v partition the universe.
        let ks = KautzSingleton::new(30, 3);
        let q = ks.q() as usize;
        for a in 0..q {
            let mut seen = [false; 30];
            for v in 0..q {
                let j = a * q + v;
                for u in 0..30u32 {
                    if ks.transmits(u, j) {
                        assert!(!seen[u as usize], "station {u} in two sets at point {a}");
                        seen[u as usize] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "partition incomplete at point {a}");
        }
    }

    #[test]
    fn m1_degenerates_to_singletons() {
        // n small, k = n forces q ≥ n with m = 1 → sets are singletons
        // (or empty), i.e. a round-robin-like code.
        let ks = KautzSingleton::new(5, 5);
        assert_eq!(ks.m(), 1);
        let fam = ks.materialize();
        for s in fam.sets() {
            assert!(s.len() <= 1);
        }
        assert!(verify::strongly_selective_exhaustive(&fam).is_ok());
    }

    #[test]
    fn int_root_ceil_values() {
        assert_eq!(int_root_ceil(16, 2), 4);
        assert_eq!(int_root_ceil(17, 2), 5);
        assert_eq!(int_root_ceil(27, 3), 3);
        assert_eq!(int_root_ceil(28, 3), 4);
        assert_eq!(int_root_ceil(1, 5), 1);
        assert_eq!(int_root_ceil(7, 1), 7);
    }
}
