//! Schedule algebra: transmission schedules as composable values.
//!
//! A **schedule** answers "does station `u` transmit at schedule position
//! `j`?" — the pure, clock-independent object the paper's combinatorics
//! manipulates. Protocols (in `wakeup-core`) bind schedule positions to
//! global slots.
//!
//! Combinators:
//!
//! * [`FamilySchedule`] — positions walk the sets of a [`SelectiveFamily`];
//! * [`ConcatSchedule`] — `⟨F₁, F₂, …⟩`, the sequential composition used by
//!   `select_among_the_first` and `wait_and_go`;
//! * [`CycleSchedule`] — infinite cyclic repetition (`F_{j mod z}`);
//! * [`InterleaveSchedule`] — even positions from one schedule, odd from
//!   another: the paper's "interleaving is a very easy operation in a
//!   scenario with global clock (e.g., one can execute round-robin in odd
//!   rounds and the other algorithm in even rounds)";
//! * [`RoundRobinSchedule`] — `u` transmits at position `j` iff `j ≡ u
//!   (mod n)`, the time-division baseline.

use crate::family::SelectiveFamily;

/// Answer of [`Schedule::next_one`]: when does a station transmit next?
///
/// This is the schedule-algebra analogue of the simulator's transmission
/// hint: [`NextOne::At`]/[`NextOne::Never`] are *promises* (exact next
/// transmitting position / provable eternal silence), [`NextOne::Unknown`]
/// means the schedule cannot answer efficiently and callers must fall back
/// to dense evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextOne {
    /// The smallest position `j' ≥ j` with `transmits(u, j')`.
    At(u64),
    /// `transmits(u, j') = false` for every `j' ≥ j`.
    Never,
    /// The schedule declines to answer (callers evaluate densely).
    Unknown,
}

impl NextOne {
    /// The position if this is [`NextOne::At`].
    #[inline]
    pub fn position(self) -> Option<u64> {
        match self {
            NextOne::At(j) => Some(j),
            _ => None,
        }
    }
}

/// A (possibly infinite) transmission schedule over universe `{0,…,n-1}`.
pub trait Schedule {
    /// Universe size.
    fn n(&self) -> u32;

    /// Length in positions; `None` for infinite schedules.
    fn len(&self) -> Option<u64>;

    /// Does station `u` transmit at position `j`?
    ///
    /// For finite schedules, positions `j ≥ len()` must return `false`.
    fn transmits(&self, u: u32, j: u64) -> bool;

    /// `true` iff the schedule has zero positions.
    fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// The smallest position `j' ≥ j` at which station `u` transmits.
    ///
    /// The answer must agree exactly with [`transmits`](Schedule::transmits):
    /// `At(j')` implies `transmits(u, j')` and silence on `[j, j')`;
    /// `Never` implies silence everywhere at or after `j`. The default
    /// implementation scans finite schedules and returns
    /// [`NextOne::Unknown`] for infinite ones; combinators override it with
    /// structure-aware versions so the simulator can skip silent slots.
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        match self.len() {
            Some(len) => (j..len)
                .find(|&p| self.transmits(u, p))
                .map_or(NextOne::Never, NextOne::At),
            None => NextOne::Unknown,
        }
    }
}

/// Extension combinators for schedules.
pub trait ScheduleExt: Schedule + Sized {
    /// Repeat this schedule cyclically forever.
    fn cycle(self) -> CycleSchedule<Self> {
        CycleSchedule::new(self)
    }

    /// Interleave with `other`: even positions run `self`, odd run `other`.
    fn interleave<B: Schedule>(self, other: B) -> InterleaveSchedule<Self, B> {
        InterleaveSchedule::new(self, other)
    }
}

impl<S: Schedule + Sized> ScheduleExt for S {}

impl<S: Schedule + ?Sized> Schedule for &S {
    fn n(&self) -> u32 {
        (**self).n()
    }
    fn len(&self) -> Option<u64> {
        (**self).len()
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        (**self).transmits(u, j)
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        (**self).next_one(u, j)
    }
}

impl<S: Schedule + ?Sized> Schedule for Box<S> {
    fn n(&self) -> u32 {
        (**self).n()
    }
    fn len(&self) -> Option<u64> {
        (**self).len()
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        (**self).transmits(u, j)
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        (**self).next_one(u, j)
    }
}

/// A schedule walking the sets of an explicit [`SelectiveFamily`] in order.
#[derive(Clone, Debug)]
pub struct FamilySchedule {
    family: SelectiveFamily,
}

impl FamilySchedule {
    /// Wrap a family as a schedule of length `family.len()`.
    pub fn new(family: SelectiveFamily) -> Self {
        FamilySchedule { family }
    }

    /// The underlying family.
    pub fn family(&self) -> &SelectiveFamily {
        &self.family
    }
}

impl Schedule for FamilySchedule {
    fn n(&self) -> u32 {
        self.family.n()
    }
    fn len(&self) -> Option<u64> {
        Some(self.family.len() as u64)
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        (j as usize) < self.family.len() && self.family.transmits(u, j as usize)
    }
}

/// Sequential composition `⟨S₁, S₂, …⟩` of finite schedules.
#[derive(Clone, Debug)]
pub struct ConcatSchedule<S: Schedule> {
    parts: Vec<S>,
    /// Cumulative start offsets; `offsets[i]` is the first position of part i.
    offsets: Vec<u64>,
    total: u64,
    n: u32,
}

impl<S: Schedule> ConcatSchedule<S> {
    /// Concatenate finite schedules over the same universe.
    ///
    /// Panics if `parts` is empty, universes mismatch, or any part is
    /// infinite.
    pub fn new(parts: Vec<S>) -> Self {
        assert!(!parts.is_empty(), "concat of zero schedules");
        let n = parts[0].n();
        let mut offsets = Vec::with_capacity(parts.len());
        let mut total = 0u64;
        for p in &parts {
            assert_eq!(p.n(), n, "concat: universe mismatch");
            offsets.push(total);
            total += p.len().expect("concat: parts must be finite");
        }
        ConcatSchedule {
            parts,
            offsets,
            total,
            n,
        }
    }

    /// Index of the part containing position `j`, with the part-local offset.
    pub fn locate(&self, j: u64) -> Option<(usize, u64)> {
        if j >= self.total {
            return None;
        }
        // Binary search over offsets.
        let i = match self.offsets.binary_search(&j) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some((i, j - self.offsets[i]))
    }

    /// The start offsets of the parts (the "first transmission set of each
    /// selective family" boundaries that `wait_and_go` waits for).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The parts.
    pub fn parts(&self) -> &[S] {
        &self.parts
    }
}

impl<S: Schedule> Schedule for ConcatSchedule<S> {
    fn n(&self) -> u32 {
        self.n
    }
    fn len(&self) -> Option<u64> {
        Some(self.total)
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        match self.locate(j) {
            Some((i, local)) => self.parts[i].transmits(u, local),
            None => false,
        }
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        let Some((first, local)) = self.locate(j) else {
            return NextOne::Never;
        };
        let mut local = local;
        for i in first..self.parts.len() {
            match self.parts[i].next_one(u, local) {
                NextOne::At(p) => return NextOne::At(self.offsets[i] + p),
                NextOne::Never => local = 0,
                NextOne::Unknown => return NextOne::Unknown,
            }
        }
        NextOne::Never
    }
}

/// Infinite cyclic repetition of a finite schedule (`F_{j mod z}`).
#[derive(Clone, Debug)]
pub struct CycleSchedule<S: Schedule> {
    inner: S,
    period: u64,
}

impl<S: Schedule> CycleSchedule<S> {
    /// Repeat `inner` forever. Panics if `inner` is infinite or empty.
    pub fn new(inner: S) -> Self {
        let period = inner.len().expect("cycle: inner must be finite");
        assert!(period > 0, "cycle: inner must be non-empty");
        CycleSchedule { inner, period }
    }

    /// The period `z`.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The repeated schedule.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Schedule> Schedule for CycleSchedule<S> {
    fn n(&self) -> u32 {
        self.inner.n()
    }
    fn len(&self) -> Option<u64> {
        None
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        self.inner.transmits(u, j % self.period)
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        let r = j % self.period;
        // Rest of the current pass, then (if silent there) one fresh pass.
        match self.inner.next_one(u, r) {
            NextOne::At(p) => NextOne::At(j + (p - r)),
            NextOne::Unknown => NextOne::Unknown,
            NextOne::Never => match self.inner.next_one(u, 0) {
                NextOne::At(p) => NextOne::At(j - r + self.period + p),
                NextOne::Never => NextOne::Never,
                NextOne::Unknown => NextOne::Unknown,
            },
        }
    }
}

/// Odd/even interleaving: position `2r` runs `a` at `r`, position `2r+1`
/// runs `b` at `r`.
#[derive(Clone, Debug)]
pub struct InterleaveSchedule<A: Schedule, B: Schedule> {
    a: A,
    b: B,
}

impl<A: Schedule, B: Schedule> InterleaveSchedule<A, B> {
    /// Interleave two schedules over the same universe.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(a.n(), b.n(), "interleave: universe mismatch");
        InterleaveSchedule { a, b }
    }
}

impl<A: Schedule, B: Schedule> Schedule for InterleaveSchedule<A, B> {
    fn n(&self) -> u32 {
        self.a.n()
    }

    fn len(&self) -> Option<u64> {
        match (self.a.len(), self.b.len()) {
            (Some(la), Some(lb)) => {
                // Positions used: interleaving ends when both are exhausted.
                Some(2 * la.max(lb))
            }
            _ => None,
        }
    }

    fn transmits(&self, u: u32, j: u64) -> bool {
        if j.is_multiple_of(2) {
            self.a.transmits(u, j / 2)
        } else {
            self.b.transmits(u, j / 2)
        }
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        // Even candidates 2r ≥ j and odd candidates 2r + 1 ≥ j.
        let ra = j.div_ceil(2);
        let rb = j.saturating_sub(1).div_ceil(2);
        let a = match self.a.next_one(u, ra) {
            NextOne::At(p) => Some(2 * p),
            NextOne::Never => None,
            NextOne::Unknown => return NextOne::Unknown,
        };
        let b = match self.b.next_one(u, rb) {
            NextOne::At(p) => Some(2 * p + 1),
            NextOne::Never => None,
            NextOne::Unknown => return NextOne::Unknown,
        };
        match (a, b) {
            (Some(x), Some(y)) => NextOne::At(x.min(y)),
            (Some(x), None) => NextOne::At(x),
            (None, Some(y)) => NextOne::At(y),
            (None, None) => NextOne::Never,
        }
    }
}

/// Round-robin (time-division multiplexing): `u` transmits at position `j`
/// iff `j ≡ u (mod n)`. Infinite.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinSchedule {
    n: u32,
}

impl RoundRobinSchedule {
    /// Round-robin over `n` stations.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        RoundRobinSchedule { n }
    }
}

impl Schedule for RoundRobinSchedule {
    fn n(&self) -> u32 {
        self.n
    }
    fn len(&self) -> Option<u64> {
        None
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        u < self.n && j % u64::from(self.n) == u64::from(u)
    }
    fn next_one(&self, u: u32, j: u64) -> NextOne {
        if u >= self.n {
            return NextOne::Never;
        }
        NextOne::At(crate::math::next_congruent(
            j,
            u64::from(u),
            u64::from(self.n),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;

    fn fam(n: u32, k: u32, sets: &[&[u32]]) -> SelectiveFamily {
        SelectiveFamily::new(
            n,
            k,
            sets.iter()
                .map(|s| BitSet::from_iter_members(n, s.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn family_schedule_basics() {
        let s = FamilySchedule::new(fam(4, 2, &[&[0, 1], &[2]]));
        assert_eq!(s.len(), Some(2));
        assert!(s.transmits(0, 0));
        assert!(s.transmits(1, 0));
        assert!(!s.transmits(2, 0));
        assert!(s.transmits(2, 1));
        assert!(!s.transmits(0, 5)); // past the end
        assert!(!s.is_empty());
    }

    #[test]
    fn concat_locates_positions() {
        let a = FamilySchedule::new(fam(4, 2, &[&[0], &[1]]));
        let b = FamilySchedule::new(fam(4, 2, &[&[2], &[3], &[0, 3]]));
        let c = ConcatSchedule::new(vec![a, b]);
        assert_eq!(c.len(), Some(5));
        assert_eq!(c.offsets(), &[0, 2]);
        assert_eq!(c.locate(0), Some((0, 0)));
        assert_eq!(c.locate(1), Some((0, 1)));
        assert_eq!(c.locate(2), Some((1, 0)));
        assert_eq!(c.locate(4), Some((1, 2)));
        assert_eq!(c.locate(5), None);
        assert!(c.transmits(0, 0));
        assert!(c.transmits(2, 2));
        assert!(c.transmits(3, 4));
        assert!(!c.transmits(1, 4));
        assert!(!c.transmits(0, 99));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn concat_rejects_universe_mismatch() {
        let a = FamilySchedule::new(fam(4, 2, &[&[0]]));
        let b = FamilySchedule::new(fam(5, 2, &[&[0]]));
        ConcatSchedule::new(vec![a, b]);
    }

    #[test]
    fn cycle_wraps() {
        let s = FamilySchedule::new(fam(4, 2, &[&[0], &[1]])).cycle();
        assert_eq!(s.len(), None);
        assert_eq!(s.period(), 2);
        for r in 0..5u64 {
            assert!(s.transmits(0, 2 * r));
            assert!(s.transmits(1, 2 * r + 1));
            assert!(!s.transmits(1, 2 * r));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn cycle_rejects_empty() {
        FamilySchedule::new(fam(4, 2, &[])).cycle();
    }

    #[test]
    fn interleave_even_odd() {
        let rr = RoundRobinSchedule::new(4);
        let f = FamilySchedule::new(fam(4, 2, &[&[3], &[3]])).cycle();
        let il = InterleaveSchedule::new(rr, f);
        // Even positions 2r: round-robin position r.
        assert!(il.transmits(0, 0)); // rr pos 0 → station 0
        assert!(il.transmits(1, 2)); // rr pos 1 → station 1
        assert!(!il.transmits(0, 2));
        // Odd positions 2r+1: family position r → station 3 always.
        assert!(il.transmits(3, 1));
        assert!(il.transmits(3, 3));
        assert!(!il.transmits(0, 1));
        assert_eq!(il.len(), None);
    }

    #[test]
    fn interleave_finite_lengths() {
        let a = FamilySchedule::new(fam(4, 2, &[&[0]]));
        let b = FamilySchedule::new(fam(4, 2, &[&[1], &[2], &[3]]));
        let il = InterleaveSchedule::new(a, b);
        assert_eq!(il.len(), Some(6));
    }

    #[test]
    fn round_robin_schedule() {
        let rr = RoundRobinSchedule::new(3);
        for j in 0..9u64 {
            for u in 0..3u32 {
                assert_eq!(rr.transmits(u, j), j % 3 == u64::from(u));
            }
        }
        assert!(!rr.transmits(7, 1)); // out-of-universe station
    }

    /// `next_one` must agree with a dense scan of `transmits`. The naive
    /// scan looks far enough ahead (1000 positions) to cover many periods of
    /// every schedule under test.
    fn assert_next_one_consistent<S: Schedule>(s: &S, horizon: u64) {
        for u in 0..s.n() + 2 {
            for j in 0..horizon {
                let naive = (j..j + 1000).find(|&p| s.transmits(u, p));
                match s.next_one(u, j) {
                    NextOne::At(p) => {
                        assert_eq!(Some(p), naive, "u={u} j={j}: At({p}) vs naive {naive:?}")
                    }
                    NextOne::Never => {
                        assert_eq!(None, naive, "u={u} j={j}: Never but naive {naive:?}")
                    }
                    NextOne::Unknown => panic!("u={u} j={j}: combinator answered Unknown"),
                }
            }
        }
    }

    #[test]
    fn next_one_agrees_with_dense_scan_for_all_combinators() {
        let n = 6u32;
        let f1 = FamilySchedule::new(fam(n, 2, &[&[0, 1], &[2], &[], &[3, 5]]));
        let f2 = FamilySchedule::new(fam(n, 2, &[&[4], &[1, 2, 3]]));
        // Finite horizons are the schedule lengths; infinite ones get a
        // window long enough to cover several periods.
        assert_next_one_consistent(&f1, 4);
        let concat = ConcatSchedule::new(vec![f1.clone(), f2.clone()]);
        assert_next_one_consistent(&concat, 6);
        let cycle = concat.clone().cycle();
        assert_next_one_consistent(&cycle, 30);
        let rr = RoundRobinSchedule::new(n);
        assert_next_one_consistent(&rr, 25);
        let il = InterleaveSchedule::new(rr, cycle);
        assert_next_one_consistent(&il, 40);
        let il2 = InterleaveSchedule::new(f1, f2);
        assert_next_one_consistent(&il2, 12);
    }

    #[test]
    fn next_one_never_for_absent_station() {
        // Station 4 appears nowhere in the cycled family: Never, not a hang.
        let f = FamilySchedule::new(fam(6, 2, &[&[0], &[1, 2]])).cycle();
        assert_eq!(f.next_one(4, 0), NextOne::Never);
        assert_eq!(f.next_one(0, 5), NextOne::At(6));
    }

    #[test]
    fn schedules_compose_through_refs_and_boxes() {
        let rr = RoundRobinSchedule::new(4);
        let r = &rr;
        assert_eq!(r.n(), 4);
        let b: Box<dyn Schedule> = Box::new(rr);
        assert_eq!(b.n(), 4);
        assert!(b.transmits(1, 1));
    }
}
