//! Pins the `NoopTracer` zero-cost claim on the allocator axis: a run with
//! the no-op tracer attached performs exactly as many heap allocations as
//! an untraced run. (The timing axis is pinned by the `trace_overhead`
//! kernels-bench row.)
//!
//! This file holds a single test so the counting global allocator sees no
//! concurrent interference from sibling tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mac_sim::prelude::*;
use mac_sim::NoopTracer;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to the `System` allocator plus a relaxed
// atomic counter — upholds `GlobalAlloc`'s contract exactly as `System`
// does, since every pointer/layout is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller contract forwarded verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, unmodified.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller contract forwarded verbatim to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was obtained from `System.alloc` above with the
        // same `layout`, so releasing it through `System` is sound.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: caller contract forwarded verbatim to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` came from this allocator (which delegates
        // to `System`), and `new_size` is the caller's contract to uphold.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct RoundRobin {
    n: u32,
}
struct RrStation {
    id: StationId,
    n: u32,
}
impl Station for RrStation {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool(t % u64::from(self.n) == u64::from(self.id.0))
    }
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let n = u64::from(self.n);
        let want = u64::from(self.id.0);
        TxHint::at(after + (want + n - after % n) % n)
    }
}
impl Protocol for RoundRobin {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(RrStation { id, n: self.n })
    }
    fn name(&self) -> String {
        "rr".into()
    }
}

fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn noop_tracer_adds_zero_allocations() {
    let cfg = SimConfig::new(256).with_max_slots(4096);
    let sim = Simulator::new(cfg);
    let protocol = RoundRobin { n: 256 };
    let ids: Vec<StationId> = [9u32, 77, 140, 201].map(StationId).to_vec();
    let pattern = WakePattern::simultaneous(&ids, 50).unwrap();

    // Warm up any lazy one-time initialization on both paths.
    sim.run(&protocol, &pattern, 1).unwrap();
    sim.run_traced(&protocol, &pattern, 1, &mut NoopTracer)
        .unwrap();

    let (plain, out_plain) = allocs_during(|| sim.run(&protocol, &pattern, 2).unwrap());
    let (traced, out_traced) = allocs_during(|| {
        sim.run_traced(&protocol, &pattern, 2, &mut NoopTracer)
            .unwrap()
    });

    assert_eq!(out_plain.first_success, out_traced.first_success);
    assert!(plain > 0, "a run must allocate (boxed stations)");
    assert_eq!(
        traced, plain,
        "NoopTracer must not add a single allocation over the untraced run"
    );
}
