//! Property-based tests of the channel model and engine.

use mac_sim::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;

const N: u32 = 48;

fn arb_pattern() -> impl Strategy<Value = WakePattern> {
    btree_set(0..N, 1..=6usize).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        let len = ids.len();
        (Just(ids), proptest::collection::vec(0u64..150, len)).prop_map(|(ids, times)| {
            WakePattern::new(ids.into_iter().map(StationId).zip(times).collect()).unwrap()
        })
    })
}

/// A protocol whose stations transmit per a seeded pseudo-random predicate —
/// enough variety to exercise every channel outcome.
struct Jitter;
struct JitterStation {
    seed: u64,
    sigma: Slot,
}
impl Station for JitterStation {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }
    fn act(&mut self, t: Slot) -> Action {
        let h = mac_sim::rng::derive_seed(self.seed, t - self.sigma + 1);
        Action::from_bool(h.is_multiple_of(3))
    }
}
impl Protocol for Jitter {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(JitterStation { seed, sigma: 0 })
    }
    fn name(&self) -> String {
        "jitter".into()
    }
}

proptest! {
    #[test]
    fn pattern_invariants(pattern in arb_pattern()) {
        // s is the minimum wake; last_wake the maximum; wakes sorted.
        let wakes = pattern.wakes();
        prop_assert!(wakes.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert_eq!(pattern.s(), wakes.iter().map(|&(_, t)| t).min().unwrap());
        prop_assert_eq!(pattern.last_wake(), wakes.iter().map(|&(_, t)| t).max().unwrap());
        // awake_at is monotone in t.
        let mid = (pattern.s() + pattern.last_wake()) / 2;
        let a = pattern.awake_at(mid).len();
        let b = pattern.awake_at(pattern.last_wake()).len();
        prop_assert!(a <= b);
        prop_assert_eq!(b, pattern.k());
    }

    #[test]
    fn engine_accounting_identity(pattern in arb_pattern(), seed in 0u64..500) {
        let cfg = SimConfig::new(N).with_max_slots(2_000).with_transcript();
        let out = Simulator::new(cfg).run(&Jitter, &pattern, seed).unwrap();
        let successes = u64::from(out.first_success.is_some());
        prop_assert_eq!(
            out.slots_simulated,
            out.collisions + out.silent_slots + successes
        );
        let per_station: u64 = out.per_station_tx.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(per_station, out.transmissions);
        let tr = out.transcript.unwrap();
        prop_assert!(tr.check_invariants().is_empty());
        // Transcript transmission count equals the engine's counter.
        let tr_tx: u64 = tr.records().iter().map(|r| r.transmitters.len() as u64).sum();
        prop_assert_eq!(tr_tx, out.transmissions);
    }

    #[test]
    fn engine_is_a_pure_function_of_inputs(pattern in arb_pattern(), seed in 0u64..200) {
        let cfg = SimConfig::new(N).with_max_slots(1_000);
        let sim = Simulator::new(cfg);
        let a = sim.run(&Jitter, &pattern, seed).unwrap();
        let b = sim.run(&Jitter, &pattern, seed).unwrap();
        prop_assert_eq!(a.first_success, b.first_success);
        prop_assert_eq!(a.transmissions, b.transmissions);
        prop_assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn no_event_before_s(pattern in arb_pattern(), seed in 0u64..100) {
        let cfg = SimConfig::new(N).with_max_slots(500).with_transcript();
        let out = Simulator::new(cfg).run(&Jitter, &pattern, seed).unwrap();
        prop_assert_eq!(out.s, pattern.s());
        if let Some(tr) = out.transcript {
            if let Some(first) = tr.records().first() {
                prop_assert!(first.slot >= pattern.s());
            }
        }
    }

    #[test]
    fn feedback_models_agree_on_noncollision_slots(
        pattern in arb_pattern(),
        seed in 0u64..100,
    ) {
        // The ground-truth transcript is feedback-independent for oblivious
        // protocols; CD vs no-CD runs must produce identical transcripts.
        let mk = |fb: FeedbackModel| {
            let cfg = SimConfig::new(N)
                .with_max_slots(500)
                .with_feedback(fb)
                .with_transcript();
            Simulator::new(cfg).run(&Jitter, &pattern, seed).unwrap()
        };
        let a = mk(FeedbackModel::NoCollisionDetection);
        let b = mk(FeedbackModel::CollisionDetection);
        prop_assert_eq!(a.transcript, b.transcript);
    }

    #[test]
    fn latency_sample_roundtrip(pattern in arb_pattern(), seed in 0u64..100) {
        use mac_sim::metrics::LatencySample;
        let cfg = SimConfig::new(N).with_max_slots(300);
        let out = Simulator::new(cfg).run(&Jitter, &pattern, seed).unwrap();
        let sample = LatencySample::from_outcome(&out);
        match sample {
            LatencySample::Solved(l) => prop_assert_eq!(Some(l), out.latency()),
            LatencySample::Censored(c) => {
                prop_assert!(out.latency().is_none());
                prop_assert_eq!(c, out.slots_simulated);
            }
        }
    }

    #[test]
    fn spoiler_never_reduces_latency(
        ids in btree_set(0..N, 2..=5usize),
        seed in 0u64..50,
    ) {
        let ids: Vec<StationId> = ids.into_iter().map(StationId).collect();
        let start = WakePattern::simultaneous(&ids, 0).unwrap();
        let sim = Simulator::new(SimConfig::new(N).with_max_slots(5_000));
        // Deterministic-ish protocol for the adversary to probe.
        struct Rr(u32);
        struct RrS(StationId, u32);
        impl Station for RrS {
            fn wake(&mut self, _s: Slot) {}
            fn act(&mut self, t: Slot) -> Action {
                Action::from_bool(t % u64::from(self.1) == u64::from(self.0 .0))
            }
        }
        impl Protocol for Rr {
            fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
                Box::new(RrS(id, self.0))
            }
            fn name(&self) -> String {
                "rr".into()
            }
        }
        let baseline = sim.run(&Rr(N), &start, seed).unwrap().latency().unwrap();
        let spoiled = mac_sim::adversary::SpoilerSearch::new(16, 5_000)
            .search(&sim, &Rr(N), start, seed)
            .unwrap();
        let spoiled_lat = spoiled
            .outcome
            .latency()
            .unwrap_or(u64::MAX);
        prop_assert!(spoiled_lat >= baseline);
    }
}
