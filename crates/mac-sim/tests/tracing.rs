//! Integration tests for the structured tracing subsystem: the
//! deterministic event tier must be bit-identical across engine and
//! population modes, tracing must never perturb outcomes, and sampling
//! must select a strict subsequence of the unsampled stream.

use mac_sim::metrics::OutcomeDigest;
use mac_sim::prelude::*;
use mac_sim::tracer::{RecordingTracer, TraceEvent, TraceFilter, TraceKind};

/// Round-robin with O(1) sparse hints: station `id` transmits iff
/// `t % n == id`, and promises exactly that slot to the engine. Drives the
/// sparse path (gap skips, hint re-queries, adaptive bursts under `Auto`).
struct HintedRoundRobin {
    n: u32,
}
struct HrrStation {
    id: StationId,
    n: u32,
}
impl Station for HrrStation {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool(t % u64::from(self.n) == u64::from(self.id.0))
    }
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let n = u64::from(self.n);
        let want = u64::from(self.id.0);
        let have = after % n;
        let next = after + (want + n - have) % n;
        TxHint::at(next)
    }
}
impl Protocol for HintedRoundRobin {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(HrrStation { id, n: self.n })
    }
    fn name(&self) -> String {
        "hinted-rr".into()
    }
}

/// A seeded pseudo-random protocol with no hints (answers `TxHint::Dense`),
/// exercising collisions and the dense fallback in every mode.
struct Jitter;
struct JitterStation {
    seed: u64,
    sigma: Slot,
}
impl Station for JitterStation {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }
    fn act(&mut self, t: Slot) -> Action {
        let h = mac_sim::rng::derive_seed(self.seed, t - self.sigma + 1);
        Action::from_bool(h.is_multiple_of(3))
    }
}
impl Protocol for Jitter {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(JitterStation { seed, sigma: 0 })
    }
    fn name(&self) -> String {
        "jitter".into()
    }
}

const N: u32 = 64;

fn patterns() -> Vec<WakePattern> {
    let ids = |v: &[u32]| -> Vec<StationId> { v.iter().copied().map(StationId).collect() };
    vec![
        WakePattern::simultaneous(&ids(&[3]), 7).unwrap(),
        WakePattern::simultaneous(&ids(&[5, 9, 21, 40]), 100).unwrap(),
        WakePattern::new(
            ids(&[2, 17, 33, 48])
                .into_iter()
                .zip([0u64, 250, 251, 900])
                .collect(),
        )
        .unwrap(),
        WakePattern::new(ids(&[0, 1, 63]).into_iter().zip([5u64, 5, 2000]).collect()).unwrap(),
    ]
}

fn modes() -> Vec<(EngineMode, PopulationMode, &'static str)> {
    vec![
        (EngineMode::Dense, PopulationMode::Concrete, "dense"),
        (EngineMode::Auto, PopulationMode::Concrete, "sparse"),
        (EngineMode::Dense, PopulationMode::Classes, "classes-dense"),
        (EngineMode::Auto, PopulationMode::Classes, "classes-sparse"),
    ]
}

fn run_traced(
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    seed: u64,
    engine: EngineMode,
    population: PopulationMode,
    filter: TraceFilter,
) -> (Outcome, Vec<TraceEvent>) {
    let cfg = SimConfig::new(N)
        .with_max_slots(5000)
        .with_engine(engine)
        .with_population(population);
    let mut rec = RecordingTracer::with_filter(filter);
    let out = Simulator::new(cfg)
        .run_traced(protocol, pattern, seed, &mut rec)
        .unwrap();
    (out, rec.into_events())
}

#[test]
fn deterministic_stream_bit_identical_across_engines_and_populations() {
    let protocols: Vec<Box<dyn Protocol>> =
        vec![Box::new(HintedRoundRobin { n: N }), Box::new(Jitter)];
    for protocol in &protocols {
        for pattern in patterns() {
            for seed in [0u64, 1, 0xC0FFEE] {
                let runs: Vec<(&str, Outcome, Vec<TraceEvent>)> = modes()
                    .into_iter()
                    .map(|(e, p, label)| {
                        let (out, evs) = run_traced(
                            protocol.as_ref(),
                            &pattern,
                            seed,
                            e,
                            p,
                            TraceFilter::deterministic(),
                        );
                        (label, out, evs)
                    })
                    .collect();
                let (_, ref_out, ref_evs) = &runs[0];
                for (label, out, evs) in &runs[1..] {
                    assert_eq!(
                        evs,
                        ref_evs,
                        "deterministic stream diverged: dense vs {label} \
                         ({} seed {seed})",
                        protocol.name()
                    );
                    assert_eq!(out.first_success, ref_out.first_success, "{label}");
                    assert_eq!(out.slots_simulated, ref_out.slots_simulated, "{label}");
                    assert_eq!(out.transmissions, ref_out.transmissions, "{label}");
                    assert_eq!(out.collisions, ref_out.collisions, "{label}");
                }
            }
        }
    }
}

#[test]
fn tracing_never_perturbs_the_outcome() {
    let protocols: Vec<Box<dyn Protocol>> =
        vec![Box::new(HintedRoundRobin { n: N }), Box::new(Jitter)];
    for protocol in &protocols {
        for pattern in patterns() {
            for (engine, population, label) in modes() {
                let cfg = SimConfig::new(N)
                    .with_max_slots(5000)
                    .with_engine(engine)
                    .with_population(population)
                    .with_transcript();
                let sim = Simulator::new(cfg);
                let plain = sim.run(protocol.as_ref(), &pattern, 42).unwrap();
                let mut rec = RecordingTracer::new();
                let traced = sim
                    .run_traced(protocol.as_ref(), &pattern, 42, &mut rec)
                    .unwrap();
                assert_eq!(
                    OutcomeDigest::of(&plain),
                    OutcomeDigest::of(&traced),
                    "digest diverged under tracing ({label}, {})",
                    protocol.name()
                );
                assert_eq!(
                    plain.transcript, traced.transcript,
                    "transcript diverged under tracing ({label})"
                );
                assert!(!rec.events().is_empty(), "trace was empty ({label})");
            }
        }
    }
}

#[test]
fn deterministic_events_account_for_every_slot() {
    // Wake/Silence/Success/Collision partition the covered slot range:
    // silence runs carry their length, transmission events one slot each.
    let protocol = HintedRoundRobin { n: N };
    for pattern in patterns() {
        let (out, evs) = run_traced(
            &protocol,
            &pattern,
            7,
            EngineMode::Auto,
            PopulationMode::Concrete,
            TraceFilter::deterministic(),
        );
        let mut covered = 0u64;
        let mut run_end = None;
        for ev in &evs {
            match *ev {
                TraceEvent::Silence { slots, .. } => covered += slots,
                TraceEvent::Success { .. } | TraceEvent::Collision { .. } => covered += 1,
                TraceEvent::Wake { .. } => {}
                TraceEvent::RunEnd {
                    slots,
                    first_success,
                } => run_end = Some((slots, first_success)),
                _ => panic!("engine-tier event in deterministic stream: {ev:?}"),
            }
        }
        assert_eq!(covered, out.slots_simulated, "slot coverage mismatch");
        assert_eq!(
            run_end,
            Some((out.slots_simulated, out.first_success)),
            "run_end must mirror the outcome"
        );
        // Silence runs are coalesced: no two adjacent silence events.
        for pair in evs.windows(2) {
            if let (TraceEvent::Silence { slot, slots }, TraceEvent::Silence { slot: s2, .. }) =
                (&pair[0], &pair[1])
            {
                assert_ne!(slot + slots, *s2, "adjacent silence runs not coalesced");
            }
        }
    }
}

#[test]
fn sampled_stream_is_a_strict_subsequence() {
    let protocol = Jitter;
    let pattern =
        WakePattern::simultaneous(&(0..12u32).map(StationId).collect::<Vec<_>>(), 3).unwrap();
    for stride in [2u64, 3, 7] {
        let (_, full) = run_traced(
            &protocol,
            &pattern,
            99,
            EngineMode::Auto,
            PopulationMode::Concrete,
            TraceFilter::all(),
        );
        let (_, sampled) = run_traced(
            &protocol,
            &pattern,
            99,
            EngineMode::Auto,
            PopulationMode::Concrete,
            TraceFilter::all().sample_every(stride),
        );
        // Subsequence check (order-preserving containment).
        let mut it = full.iter();
        for s in &sampled {
            assert!(
                it.any(|f| f == s),
                "sampled event missing or out of order (stride {stride})"
            );
        }
        // Per-kind count: ceil(count / stride).
        for kind in TraceKind::ALL {
            let total = full.iter().filter(|e| e.kind() == kind).count() as u64;
            let kept = sampled.iter().filter(|e| e.kind() == kind).count() as u64;
            assert_eq!(
                kept,
                total.div_ceil(stride),
                "kind {kind:?} stride {stride}"
            );
        }
    }
}

#[test]
fn engine_tier_reports_mode_switch_counts_consistent_with_outcome() {
    // Under Auto every counted mode switch emits a ModeSwitch event (the
    // initial dense lock of hintless protocols is evented but not counted).
    let protocol = HintedRoundRobin { n: N };
    for pattern in patterns() {
        let (out, evs) = run_traced(
            &protocol,
            &pattern,
            13,
            EngineMode::Auto,
            PopulationMode::Concrete,
            TraceFilter::engine_only(),
        );
        let switches = evs
            .iter()
            .filter(|e| matches!(e, TraceEvent::ModeSwitch { .. }))
            .count() as u64;
        assert_eq!(
            switches, out.mode_switches,
            "ModeSwitch events must match Outcome::mode_switches"
        );
        for ev in &evs {
            assert!(
                !ev.kind().deterministic(),
                "deterministic event leaked into engine_only stream: {ev:?}"
            );
        }
    }
}
