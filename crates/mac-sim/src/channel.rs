//! Channel resolution and feedback models.
//!
//! The ground truth of a slot is a [`SlotOutcome`]: silence, a successful
//! solo transmission, or a collision. What a *station* perceives is a
//! [`Feedback`], which depends on the [`FeedbackModel`]:
//!
//! * [`FeedbackModel::NoCollisionDetection`] — the model of the paper. "No
//!   feedback signal is supplied by the channel in the case of collision,
//!   making it consequently impossible to distinguish between an occurred
//!   collision and the case where no station transmits" (§1). Collisions are
//!   perceived as [`Feedback::Silence`].
//! * [`FeedbackModel::CollisionDetection`] — the stronger classical model in
//!   which stations hear interference noise on collision
//!   ([`Feedback::Noise`]). Provided for baselines and ablation experiments
//!   (the Greenberg–Winograd lower bound holds even with collision
//!   detection).

use crate::ids::StationId;

/// What actually happened on the channel in one slot (ground truth,
/// recorded in transcripts; *not* directly observable by stations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No station transmitted.
    Silence,
    /// Exactly one station transmitted: the transmission is successful and
    /// every station receives the message.
    Success(StationId),
    /// Two or more stations transmitted; all messages are lost.
    Collision(Vec<StationId>),
}

impl SlotOutcome {
    /// Resolve a slot from the set of transmitters.
    ///
    /// `transmitters` need not be sorted; collisions record the transmitter
    /// set in sorted order for deterministic transcripts.
    pub fn resolve(mut transmitters: Vec<StationId>) -> Self {
        match transmitters.len() {
            0 => SlotOutcome::Silence,
            1 => SlotOutcome::Success(transmitters[0]),
            _ => {
                transmitters.sort_unstable();
                SlotOutcome::Collision(transmitters)
            }
        }
    }

    /// `true` iff the slot was a successful solo transmission.
    #[inline]
    pub fn is_success(&self) -> bool {
        matches!(self, SlotOutcome::Success(_))
    }

    /// The winner of a successful slot, if any — the *success event* the
    /// sparse engine broadcasts (every station hears a success) and uses to
    /// invalidate [`Until::NextSuccess`](crate::station::Until)-scoped
    /// hints.
    #[inline]
    pub fn success_id(&self) -> Option<StationId> {
        match self {
            SlotOutcome::Success(w) => Some(*w),
            _ => None,
        }
    }

    /// The number of stations that transmitted in this slot.
    pub fn transmitter_count(&self) -> usize {
        match self {
            SlotOutcome::Silence => 0,
            SlotOutcome::Success(_) => 1,
            SlotOutcome::Collision(v) => v.len(),
        }
    }
}

/// How much information the channel reveals to listening stations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FeedbackModel {
    /// The paper's model: a collision is indistinguishable from silence.
    #[default]
    NoCollisionDetection,
    /// Stations hear interference noise on collision (ternary feedback).
    CollisionDetection,
}

impl FeedbackModel {
    /// The feedback perceived by a station under this model.
    ///
    /// `transmitted` is whether the *perceiving* station itself transmitted
    /// in the slot. A transmitting station without collision detection learns
    /// nothing from the channel in that slot beyond what everybody hears —
    /// except that, as the paper notes, a successful sender "possesses the
    /// message by default", which is modelled by `Feedback::Heard` carrying
    /// the sender's own ID.
    pub fn perceive(self, outcome: &SlotOutcome, _transmitted: bool) -> Feedback {
        match (self, outcome) {
            (_, SlotOutcome::Silence) => Feedback::Silence,
            (_, SlotOutcome::Success(w)) => Feedback::Heard(*w),
            (FeedbackModel::NoCollisionDetection, SlotOutcome::Collision(_)) => Feedback::Silence,
            (FeedbackModel::CollisionDetection, SlotOutcome::Collision(_)) => Feedback::Noise,
        }
    }
}

/// What a single station perceives at the end of a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// Nothing heard. Under [`FeedbackModel::NoCollisionDetection`] this
    /// covers both true silence and collisions.
    Silence,
    /// A successful transmission by the given station was heard (every
    /// station receives it, including the sender itself).
    Heard(StationId),
    /// Interference noise: a collision, only distinguishable under
    /// [`FeedbackModel::CollisionDetection`].
    Noise,
}

impl Feedback {
    /// `true` iff this feedback is the station's **own** message echoed back
    /// — the retirement signal of success-reactive protocols (a successful
    /// sender "possesses the message by default").
    #[inline]
    pub fn is_own_success(self, id: StationId) -> bool {
        self == Feedback::Heard(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_silence() {
        assert_eq!(SlotOutcome::resolve(vec![]), SlotOutcome::Silence);
        assert_eq!(SlotOutcome::Silence.transmitter_count(), 0);
        assert!(!SlotOutcome::Silence.is_success());
    }

    #[test]
    fn resolve_success() {
        let o = SlotOutcome::resolve(vec![StationId(4)]);
        assert_eq!(o, SlotOutcome::Success(StationId(4)));
        assert!(o.is_success());
        assert_eq!(o.transmitter_count(), 1);
    }

    #[test]
    fn resolve_collision_sorts_transmitters() {
        let o = SlotOutcome::resolve(vec![StationId(9), StationId(2), StationId(5)]);
        assert_eq!(
            o,
            SlotOutcome::Collision(vec![StationId(2), StationId(5), StationId(9)])
        );
        assert!(!o.is_success());
        assert_eq!(o.transmitter_count(), 3);
    }

    #[test]
    fn no_cd_makes_collision_look_like_silence() {
        let collision = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
        let fb = FeedbackModel::NoCollisionDetection.perceive(&collision, false);
        assert_eq!(fb, Feedback::Silence);
        // ... indistinguishable from true silence:
        let fb2 = FeedbackModel::NoCollisionDetection.perceive(&SlotOutcome::Silence, false);
        assert_eq!(fb, fb2);
    }

    #[test]
    fn cd_distinguishes_collision_from_silence() {
        let collision = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
        assert_eq!(
            FeedbackModel::CollisionDetection.perceive(&collision, false),
            Feedback::Noise
        );
        assert_eq!(
            FeedbackModel::CollisionDetection.perceive(&SlotOutcome::Silence, false),
            Feedback::Silence
        );
    }

    #[test]
    fn success_is_heard_by_everyone_in_both_models() {
        let success = SlotOutcome::Success(StationId(3));
        for model in [
            FeedbackModel::NoCollisionDetection,
            FeedbackModel::CollisionDetection,
        ] {
            for transmitted in [false, true] {
                assert_eq!(
                    model.perceive(&success, transmitted),
                    Feedback::Heard(StationId(3))
                );
            }
        }
    }

    #[test]
    fn default_model_is_the_papers() {
        assert_eq!(
            FeedbackModel::default(),
            FeedbackModel::NoCollisionDetection
        );
    }
}
