//! Channel resolution and feedback models.
//!
//! The ground truth of a slot is a [`SlotOutcome`]: silence, a successful
//! solo transmission, or a collision. What a *station* perceives is a
//! [`Feedback`], which depends on the [`FeedbackModel`]:
//!
//! * [`FeedbackModel::NoCollisionDetection`] — the model of the paper. "No
//!   feedback signal is supplied by the channel in the case of collision,
//!   making it consequently impossible to distinguish between an occurred
//!   collision and the case where no station transmits" (§1). Collisions are
//!   perceived as [`Feedback::Silence`].
//! * [`FeedbackModel::CollisionDetection`] — the stronger classical model in
//!   which stations hear interference noise on collision
//!   ([`Feedback::Noise`]). Provided for baselines and ablation experiments
//!   (the Greenberg–Winograd lower bound holds even with collision
//!   detection).

use crate::ids::StationId;
use crate::rng::derive_seed;

/// What actually happened on the channel in one slot (ground truth,
/// recorded in transcripts; *not* directly observable by stations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No station transmitted.
    Silence,
    /// Exactly one station transmitted: the transmission is successful and
    /// every station receives the message.
    Success(StationId),
    /// Two or more stations transmitted; all messages are lost.
    Collision(Vec<StationId>),
}

impl SlotOutcome {
    /// Resolve a slot from the set of transmitters.
    ///
    /// `transmitters` need not be sorted; collisions record the transmitter
    /// set in sorted order for deterministic transcripts.
    pub fn resolve(mut transmitters: Vec<StationId>) -> Self {
        match transmitters.len() {
            0 => SlotOutcome::Silence,
            1 => SlotOutcome::Success(transmitters[0]),
            _ => {
                transmitters.sort_unstable();
                SlotOutcome::Collision(transmitters)
            }
        }
    }

    /// `true` iff the slot was a successful solo transmission.
    #[inline]
    pub fn is_success(&self) -> bool {
        matches!(self, SlotOutcome::Success(_))
    }

    /// The winner of a successful slot, if any — the *success event* the
    /// sparse engine broadcasts (every station hears a success) and uses to
    /// invalidate [`Until::NextSuccess`](crate::station::Until)-scoped
    /// hints.
    #[inline]
    pub fn success_id(&self) -> Option<StationId> {
        match self {
            SlotOutcome::Success(w) => Some(*w),
            _ => None,
        }
    }

    /// The number of stations that transmitted in this slot.
    pub fn transmitter_count(&self) -> usize {
        match self {
            SlotOutcome::Silence => 0,
            SlotOutcome::Success(_) => 1,
            SlotOutcome::Collision(v) => v.len(),
        }
    }
}

/// How much information the channel reveals to listening stations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FeedbackModel {
    /// The paper's model: a collision is indistinguishable from silence.
    #[default]
    NoCollisionDetection,
    /// Stations hear interference noise on collision (ternary feedback).
    CollisionDetection,
}

impl FeedbackModel {
    /// The feedback perceived by a station under this model.
    ///
    /// `transmitted` is whether the *perceiving* station itself transmitted
    /// in the slot. A transmitting station without collision detection learns
    /// nothing from the channel in that slot beyond what everybody hears —
    /// except that, as the paper notes, a successful sender "possesses the
    /// message by default", which is modelled by `Feedback::Heard` carrying
    /// the sender's own ID.
    pub fn perceive(self, outcome: &SlotOutcome, _transmitted: bool) -> Feedback {
        match (self, outcome) {
            (_, SlotOutcome::Silence) => Feedback::Silence,
            (_, SlotOutcome::Success(w)) => Feedback::Heard(*w),
            (FeedbackModel::NoCollisionDetection, SlotOutcome::Collision(_)) => Feedback::Silence,
            (FeedbackModel::CollisionDetection, SlotOutcome::Collision(_)) => Feedback::Noise,
        }
    }
}

/// What a single station perceives at the end of a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// Nothing heard. Under [`FeedbackModel::NoCollisionDetection`] this
    /// covers both true silence and collisions.
    Silence,
    /// A successful transmission by the given station was heard (every
    /// station receives it, including the sender itself).
    Heard(StationId),
    /// Interference noise: a collision, only distinguishable under
    /// [`FeedbackModel::CollisionDetection`].
    Noise,
}

impl Feedback {
    /// `true` iff this feedback is the station's **own** message echoed back
    /// — the retirement signal of success-reactive protocols (a successful
    /// sender "possesses the message by default").
    #[inline]
    pub fn is_own_success(self, id: StationId) -> bool {
        self == Feedback::Heard(id)
    }
}

/// A deterministic fault model perturbing ground-truth slot outcomes before
/// feedback delivery.
///
/// Rates are expressed in parts-per-million so the model is `Copy`, hashable
/// and exactly reproducible (no floating point in the hot path). All draws
/// come from `derive_seed(fault_seed, slot)` where `fault_seed` is the
/// per-run `derive_seed(run_seed, FAULT_STREAM)` — a pure function of
/// `(run_seed, slot)`, so every engine path (dense, sparse, word-kernel,
/// classes) and every thread count sees the *same* faults in the *same*
/// slots.
///
/// Three perturbations, applied to the ground truth in this order:
///
/// * **Erasure** (`erasure_ppm`): a successful solo transmission is lost —
///   the slot is heard (and recorded) as silence. Models deep fades and
///   receiver-side losses.
/// * **Capture** (`capture_ppm`): one transmitter of a collision survives —
///   the slot resolves as a success for a deterministically drawn winner.
///   Models the capture effect of real radios (power imbalance lets the
///   strongest signal decode despite interference).
/// * **False collision** (`false_collision_ppm`): an effectively silent slot
///   is *perceived* as interference noise under
///   [`FeedbackModel::CollisionDetection`]. This is perception-only: the
///   transcript still records silence (there is nothing on the channel), and
///   under the paper's no-collision-detection model it is a no-op because
///   silence and noise are indistinguishable anyway.
///
/// Erasure and capture rewrite the *outcome* — transcripts, stop rules and
/// all feedback flow from the effective outcome, while energy accounting
/// (`transmissions`, per-station counters) stays with the ground truth: the
/// stations still spent the energy even if the channel ate the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct ChannelModel {
    /// Probability (ppm) that a `Success` slot is erased to `Silence`.
    pub erasure_ppm: u32,
    /// Probability (ppm) that an effectively silent slot is misheard as
    /// noise under collision detection (perception-only).
    pub false_collision_ppm: u32,
    /// Probability (ppm) that a collision of ≥ 2 transmitters is captured
    /// by one of them and resolves as that station's success.
    pub capture_ppm: u32,
}

/// One million — the denominator of every [`ChannelModel`] rate.
pub const PPM: u64 = 1_000_000;

impl ChannelModel {
    /// The perfect channel: no erasure, no capture, no false collisions.
    /// Identical to not having a channel model at all (and gated out of
    /// every engine hot path, so it costs nothing).
    #[inline]
    pub const fn ideal() -> Self {
        ChannelModel {
            erasure_ppm: 0,
            false_collision_ppm: 0,
            capture_ppm: 0,
        }
    }

    /// `true` iff this model never perturbs anything.
    #[inline]
    pub const fn is_ideal(&self) -> bool {
        self.erasure_ppm == 0 && self.false_collision_ppm == 0 && self.capture_ppm == 0
    }

    /// Set the erasure rate in parts-per-million (clamped to 100%).
    #[must_use]
    pub const fn with_erasure_ppm(mut self, ppm: u32) -> Self {
        self.erasure_ppm = if ppm > PPM as u32 { PPM as u32 } else { ppm };
        self
    }

    /// Set the false-collision rate in parts-per-million (clamped to 100%).
    #[must_use]
    pub const fn with_false_collision_ppm(mut self, ppm: u32) -> Self {
        self.false_collision_ppm = if ppm > PPM as u32 { PPM as u32 } else { ppm };
        self
    }

    /// Set the capture rate in parts-per-million (clamped to 100%).
    #[must_use]
    pub const fn with_capture_ppm(mut self, ppm: u32) -> Self {
        self.capture_ppm = if ppm > PPM as u32 { PPM as u32 } else { ppm };
        self
    }

    /// Apply the model to the ground truth of one slot.
    ///
    /// Returns the *effective* outcome (what the channel delivers and the
    /// transcript records) together with the fault that fired, if any.
    /// Silent ground truth passes through untouched — false collisions are
    /// perception-only and handled by [`ChannelModel::mishears_silence`].
    ///
    /// `fault_seed` is the per-run `derive_seed(run_seed, FAULT_STREAM)`.
    pub fn apply(
        &self,
        fault_seed: u64,
        slot: u64,
        truth: SlotOutcome,
    ) -> (SlotOutcome, Option<ChannelFault>) {
        match truth {
            SlotOutcome::Success(w) if self.erasure_ppm > 0 => {
                let h = derive_seed(fault_seed, slot);
                if h % PPM < u64::from(self.erasure_ppm) {
                    (
                        SlotOutcome::Silence,
                        Some(ChannelFault::Erasure { winner: w }),
                    )
                } else {
                    (SlotOutcome::Success(w), None)
                }
            }
            SlotOutcome::Collision(contenders) if self.capture_ppm > 0 => {
                let h = derive_seed(fault_seed, slot);
                if derive_seed(h, 1) % PPM < u64::from(self.capture_ppm) {
                    // `contenders` is sorted by `SlotOutcome::resolve`, so the
                    // index draw is deterministic regardless of poll order.
                    let winner = contenders[(derive_seed(h, 2) % contenders.len() as u64) as usize];
                    (
                        SlotOutcome::Success(winner),
                        Some(ChannelFault::Capture { winner, contenders }),
                    )
                } else {
                    (SlotOutcome::Collision(contenders), None)
                }
            }
            other => (other, None),
        }
    }

    /// `true` iff an *effectively silent* slot is misheard as interference
    /// noise this slot. Only meaningful under
    /// [`FeedbackModel::CollisionDetection`]; callers gate on the model.
    ///
    /// Uses its own substream of the per-slot draw so it is independent of
    /// whether an erasure produced the silence.
    #[inline]
    pub fn mishears_silence(&self, fault_seed: u64, slot: u64) -> bool {
        self.false_collision_ppm > 0
            && derive_seed(derive_seed(fault_seed, slot), 3) % PPM
                < u64::from(self.false_collision_ppm)
    }
}

/// An outcome-rewriting channel fault that fired in one slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelFault {
    /// A successful transmission by `winner` was erased to silence.
    Erasure {
        /// The station whose solo transmission was lost.
        winner: StationId,
    },
    /// A collision was captured: `winner` survived out of `contenders`.
    Capture {
        /// The transmitter whose signal decoded despite the collision.
        winner: StationId,
        /// The full (sorted) ground-truth transmitter set.
        contenders: Vec<StationId>,
    },
}

/// Per-run fault and churn event counters, carried on
/// [`Outcome`](crate::engine::Outcome).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Successes erased to silence by the channel.
    pub erasures: u64,
    /// Collisions resolved as a capture success.
    pub captures: u64,
    /// Effectively silent slots misheard as noise (engine-path dependent:
    /// only slots a path materializes can be misheard, like `polls`).
    pub false_collisions: u64,
    /// Stations crashed by the churn script.
    pub churn_crashes: u64,
    /// Crashed stations re-woken by the churn script.
    pub churn_rewakes: u64,
}

impl FaultCounts {
    /// `true` iff any fault or churn event fired this run.
    #[inline]
    pub fn any(&self) -> bool {
        *self != FaultCounts::default()
    }

    /// Fold another run's counters into this accumulator. All fields are
    /// sums, so partials merge associatively in any grouping — ensemble
    /// aggregation stays bit-identical across thread counts.
    #[inline]
    pub fn merge(&mut self, other: &FaultCounts) {
        self.erasures += other.erasures;
        self.captures += other.captures;
        self.false_collisions += other.false_collisions;
        self.churn_crashes += other.churn_crashes;
        self.churn_rewakes += other.churn_rewakes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_silence() {
        assert_eq!(SlotOutcome::resolve(vec![]), SlotOutcome::Silence);
        assert_eq!(SlotOutcome::Silence.transmitter_count(), 0);
        assert!(!SlotOutcome::Silence.is_success());
    }

    #[test]
    fn resolve_success() {
        let o = SlotOutcome::resolve(vec![StationId(4)]);
        assert_eq!(o, SlotOutcome::Success(StationId(4)));
        assert!(o.is_success());
        assert_eq!(o.transmitter_count(), 1);
    }

    #[test]
    fn resolve_collision_sorts_transmitters() {
        let o = SlotOutcome::resolve(vec![StationId(9), StationId(2), StationId(5)]);
        assert_eq!(
            o,
            SlotOutcome::Collision(vec![StationId(2), StationId(5), StationId(9)])
        );
        assert!(!o.is_success());
        assert_eq!(o.transmitter_count(), 3);
    }

    #[test]
    fn no_cd_makes_collision_look_like_silence() {
        let collision = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
        let fb = FeedbackModel::NoCollisionDetection.perceive(&collision, false);
        assert_eq!(fb, Feedback::Silence);
        // ... indistinguishable from true silence:
        let fb2 = FeedbackModel::NoCollisionDetection.perceive(&SlotOutcome::Silence, false);
        assert_eq!(fb, fb2);
    }

    #[test]
    fn cd_distinguishes_collision_from_silence() {
        let collision = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
        assert_eq!(
            FeedbackModel::CollisionDetection.perceive(&collision, false),
            Feedback::Noise
        );
        assert_eq!(
            FeedbackModel::CollisionDetection.perceive(&SlotOutcome::Silence, false),
            Feedback::Silence
        );
    }

    #[test]
    fn success_is_heard_by_everyone_in_both_models() {
        let success = SlotOutcome::Success(StationId(3));
        for model in [
            FeedbackModel::NoCollisionDetection,
            FeedbackModel::CollisionDetection,
        ] {
            for transmitted in [false, true] {
                assert_eq!(
                    model.perceive(&success, transmitted),
                    Feedback::Heard(StationId(3))
                );
            }
        }
    }

    #[test]
    fn default_model_is_the_papers() {
        assert_eq!(
            FeedbackModel::default(),
            FeedbackModel::NoCollisionDetection
        );
    }

    #[test]
    fn ideal_channel_is_default_and_inert() {
        assert_eq!(ChannelModel::default(), ChannelModel::ideal());
        assert!(ChannelModel::ideal().is_ideal());
        let m = ChannelModel::ideal();
        for slot in 0..256 {
            let truth = SlotOutcome::Success(StationId(7));
            let (eff, fault) = m.apply(0xDEAD_BEEF, slot, truth.clone());
            assert_eq!(eff, truth);
            assert!(fault.is_none());
            assert!(!m.mishears_silence(0xDEAD_BEEF, slot));
        }
    }

    #[test]
    fn builders_clamp_to_one_million() {
        let m = ChannelModel::ideal()
            .with_erasure_ppm(2_000_000)
            .with_false_collision_ppm(u32::MAX)
            .with_capture_ppm(1_000_001);
        assert_eq!(m.erasure_ppm, PPM as u32);
        assert_eq!(m.false_collision_ppm, PPM as u32);
        assert_eq!(m.capture_ppm, PPM as u32);
        assert!(!m.is_ideal());
    }

    #[test]
    fn certain_erasure_kills_every_success() {
        let m = ChannelModel::ideal().with_erasure_ppm(PPM as u32);
        for slot in 0..64 {
            let (eff, fault) = m.apply(1, slot, SlotOutcome::Success(StationId(3)));
            assert_eq!(eff, SlotOutcome::Silence);
            assert_eq!(
                fault,
                Some(ChannelFault::Erasure {
                    winner: StationId(3)
                })
            );
        }
        // ... but leaves silence and collisions alone.
        let (eff, fault) = m.apply(1, 0, SlotOutcome::Silence);
        assert_eq!((eff, fault), (SlotOutcome::Silence, None));
        let coll = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
        let (eff, fault) = m.apply(1, 0, coll.clone());
        assert_eq!((eff, fault), (coll, None));
    }

    #[test]
    fn certain_capture_picks_a_contender() {
        let m = ChannelModel::ideal().with_capture_ppm(PPM as u32);
        let contenders = vec![StationId(2), StationId(5), StationId(9)];
        let mut seen = std::collections::BTreeSet::new();
        for slot in 0..64 {
            let truth = SlotOutcome::Collision(contenders.clone());
            let (eff, fault) = m.apply(99, slot, truth);
            let w = eff.success_id().expect("capture resolves to a success");
            assert!(contenders.contains(&w));
            match fault {
                Some(ChannelFault::Capture {
                    winner,
                    contenders: c,
                }) => {
                    assert_eq!(winner, w);
                    assert_eq!(c, contenders);
                }
                other => panic!("expected a capture fault, got {other:?}"),
            }
            seen.insert(w);
        }
        // The winner draw should spread over the contender set.
        assert!(seen.len() > 1, "winner never varied: {seen:?}");
    }

    #[test]
    fn partial_rates_are_deterministic_and_partial() {
        let m = ChannelModel::ideal()
            .with_erasure_ppm(500_000)
            .with_capture_ppm(500_000);
        let mut erased = 0;
        let mut captured = 0;
        for slot in 0..512 {
            let (a, fa) = m.apply(7, slot, SlotOutcome::Success(StationId(1)));
            let (b, fb) = m.apply(7, slot, SlotOutcome::Success(StationId(1)));
            assert_eq!((a.clone(), fa.clone()), (b, fb)); // pure in (seed, slot)
            erased += u32::from(a == SlotOutcome::Silence);
            let coll = SlotOutcome::Collision(vec![StationId(0), StationId(1)]);
            let (c, _) = m.apply(7, slot, coll);
            captured += u32::from(c.is_success());
        }
        // ~50% rates: both strictly between never and always.
        assert!((100..412).contains(&erased), "erased {erased}/512");
        assert!((100..412).contains(&captured), "captured {captured}/512");
    }

    #[test]
    fn mishears_silence_respects_rate_and_seed() {
        let never = ChannelModel::ideal();
        let always = ChannelModel::ideal().with_false_collision_ppm(PPM as u32);
        let half = ChannelModel::ideal().with_false_collision_ppm(500_000);
        let mut fired = 0;
        for slot in 0..512 {
            assert!(!never.mishears_silence(3, slot));
            assert!(always.mishears_silence(3, slot));
            fired += u32::from(half.mishears_silence(3, slot));
        }
        assert!((100..412).contains(&fired), "misheard {fired}/512");
        // Independent of the erasure draw on the same slot: different seeds
        // give different patterns.
        let p1: Vec<bool> = (0..64).map(|s| half.mishears_silence(1, s)).collect();
        let p2: Vec<bool> = (0..64).map(|s| half.mishears_silence(2, s)).collect();
        assert_ne!(p1, p2);
    }

    #[test]
    fn fault_counts_any() {
        assert!(!FaultCounts::default().any());
        let c = FaultCounts {
            churn_rewakes: 1,
            ..FaultCounts::default()
        };
        assert!(c.any());
    }
}
