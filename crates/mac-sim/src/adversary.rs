//! A greedy *spoiler* adversary: local search for bad wake-up patterns.
//!
//! The paper measures worst-case latency over all wake-up patterns. For a
//! concrete protocol, the exact worst pattern is intractable to compute in
//! general, but a simple and effective adversarial heuristic exists for
//! wake-up protocols: **delay the winner**. Starting from a simultaneous
//! pattern, repeatedly run the protocol, find the station `w` that first
//! transmits alone at slot `t`, and reschedule `w`'s wake-up to `t + 1` — so
//! that at slot `t` station `w` is not yet awake and cannot win there. This
//! mirrors the structure of the Theorem 2.1 adversary (replace the selected
//! station, forcing the schedule to spend another selection round) adapted to
//! the dynamic-arrival setting.
//!
//! The search is bounded (`max_moves`) and monotone in practice: each move
//! either strictly increases the first-success slot or is rejected. The
//! pattern found is a certified *lower bound witness* on the protocol's
//! worst-case latency — experiments report it alongside random patterns.

use crate::engine::{Outcome, SimError, Simulator};
use crate::ids::Slot;
use crate::pattern::WakePattern;
use crate::station::Protocol;

/// Greedy delay-the-winner adversary.
#[derive(Clone, Debug)]
pub struct SpoilerSearch {
    /// Maximum number of reschedule moves to attempt.
    pub max_moves: usize,
    /// Never delay a wake-up beyond `s + horizon` (keeps the search inside
    /// the simulated window).
    pub horizon: Slot,
}

/// The result of a spoiler search.
#[derive(Clone, Debug)]
pub struct SpoiledPattern {
    /// The worst pattern found.
    pub pattern: WakePattern,
    /// The outcome of the protocol under that pattern.
    pub outcome: Outcome,
    /// Number of accepted moves.
    pub moves: usize,
}

impl SpoilerSearch {
    /// A search allowing `max_moves` moves within `horizon` slots of `s`.
    pub fn new(max_moves: usize, horizon: Slot) -> Self {
        SpoilerSearch { max_moves, horizon }
    }

    /// Search for a bad pattern for `protocol`, starting from `start`
    /// (typically a simultaneous pattern with the target `k` stations).
    ///
    /// Runs are deterministic given `run_seed`, so for deterministic
    /// protocols the returned pattern is a reproducible worst-case witness.
    pub fn search(
        &self,
        sim: &Simulator,
        protocol: &dyn Protocol,
        start: WakePattern,
        run_seed: u64,
    ) -> Result<SpoiledPattern, SimError> {
        let s = start.s();
        let mut pattern = start;
        let mut outcome = sim.run(protocol, &pattern, run_seed)?;
        let mut moves = 0usize;

        while moves < self.max_moves {
            let (Some(t), Some(w)) = (outcome.first_success, outcome.winner) else {
                // Already unsolved within the cap: cannot do better.
                break;
            };
            // Never move the last station anchored at `s`: some station must
            // define `s` for the latency measure to stay comparable.
            let anchored = pattern.wakes().iter().filter(|&&(_, ts)| ts == s).count();
            let w_at_s = pattern.wake_of(w) == Some(s);
            if w_at_s && anchored <= 1 {
                break;
            }
            if t + 1 > s + self.horizon {
                break;
            }
            let mut candidate = pattern.clone();
            candidate.reschedule(w, t + 1);
            let cand_outcome = sim.run(protocol, &candidate, run_seed)?;
            let improved = match (cand_outcome.first_success, outcome.first_success) {
                (None, _) => true,
                (Some(ct), Some(pt)) => ct > pt,
                (Some(_), None) => false,
            };
            if improved {
                pattern = candidate;
                outcome = cand_outcome;
                moves += 1;
            } else {
                break;
            }
        }

        Ok(SpoiledPattern {
            pattern,
            outcome,
            moves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::ids::StationId;
    use crate::station::FnProtocol;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn round_robin(
        n: u32,
    ) -> FnProtocol<impl Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send> {
        FnProtocol::new(format!("rr{n}"), move |id: StationId, _s, _sig, t: Slot| {
            t % u64::from(n) == u64::from(id.0)
        })
    }

    #[test]
    fn spoiler_delays_round_robin_winner() {
        // Round-robin over n=8 with stations {0, 1} waking at slot 0:
        // baseline success at slot 0 (station 0 alone). The spoiler should
        // delay station 0's wake past slot 0, pushing the success later.
        let sim = Simulator::new(SimConfig::new(8).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let baseline = sim.run(&round_robin(8), &start, 1).unwrap();
        assert_eq!(baseline.first_success, Some(0));

        let spoiled = SpoilerSearch::new(16, 64)
            .search(&sim, &round_robin(8), start, 1)
            .unwrap();
        let spoiled_t = spoiled.outcome.first_success.unwrap();
        assert!(spoiled_t > 0, "spoiler failed to delay success");
        assert!(spoiled.moves >= 1);
    }

    #[test]
    fn spoiler_keeps_an_anchor_at_s() {
        let sim = Simulator::new(SimConfig::new(4).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[0, 1, 2]), 5).unwrap();
        let spoiled = SpoilerSearch::new(32, 64)
            .search(&sim, &round_robin(4), start, 0)
            .unwrap();
        assert_eq!(spoiled.pattern.s(), 5, "the first wake-up must stay at s");
    }

    #[test]
    fn spoiler_is_monotone_not_worse_than_baseline() {
        let sim = Simulator::new(SimConfig::new(16).with_max_slots(256));
        let start = WakePattern::simultaneous(&ids(&[0, 3, 7, 12]), 0).unwrap();
        let baseline = sim.run(&round_robin(16), &start, 2).unwrap();
        let spoiled = SpoilerSearch::new(64, 256)
            .search(&sim, &round_robin(16), start, 2)
            .unwrap();
        let b = baseline.first_success.unwrap();
        let sp = spoiled.outcome.first_success.unwrap_or(u64::MAX);
        assert!(sp >= b);
    }

    #[test]
    fn spoiler_with_zero_moves_returns_start() {
        let sim = Simulator::new(SimConfig::new(4).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[1, 2]), 0).unwrap();
        let spoiled = SpoilerSearch::new(0, 64)
            .search(&sim, &round_robin(4), start.clone(), 0)
            .unwrap();
        assert_eq!(spoiled.pattern, start);
        assert_eq!(spoiled.moves, 0);
    }
}
