//! A greedy *spoiler* adversary: local search for bad wake-up patterns.
//!
//! The paper measures worst-case latency over all wake-up patterns. For a
//! concrete protocol, the exact worst pattern is intractable to compute in
//! general, but a simple and effective adversarial heuristic exists for
//! wake-up protocols: **delay the winner**. Starting from a simultaneous
//! pattern, repeatedly run the protocol, find the station `w` that first
//! transmits alone at slot `t`, and reschedule `w`'s wake-up to `t + 1` — so
//! that at slot `t` station `w` is not yet awake and cannot win there. This
//! mirrors the structure of the Theorem 2.1 adversary (replace the selected
//! station, forcing the schedule to spend another selection round) adapted to
//! the dynamic-arrival setting.
//!
//! The search is bounded (`max_moves`) and monotone in practice: each move
//! either strictly increases the first-success slot or is rejected. The
//! pattern found is a certified *lower bound witness* on the protocol's
//! worst-case latency — experiments report it alongside random patterns.
//!
//! With a non-zero [`SpoilerSearch::crash_budget`] the spoiler additionally
//! exploits churn: instead of delaying the winner's wake-up it may **crash
//! the winner** at its success slot (a [`ChurnEntry`] with no re-wake — the
//! crash is processed before the station can transmit, voiding the
//! success). This models an adversary controlling up to `crash_budget`
//! fail-stop faults on top of the wake schedule; the witness then carries
//! both the pattern *and* the churn script that realize the bound.

use crate::engine::{Outcome, SimError, Simulator};
use crate::ids::Slot;
use crate::pattern::{ChurnEntry, ChurnScript, WakePattern};
use crate::station::Protocol;

/// Greedy delay-the-winner adversary, optionally armed with fail-stop
/// crash faults (crash-the-winner moves).
#[derive(Clone, Debug)]
pub struct SpoilerSearch {
    /// Maximum number of moves (delays + crashes) to attempt.
    pub max_moves: usize,
    /// Never delay a wake-up beyond `s + horizon` (keeps the search inside
    /// the simulated window).
    pub horizon: Slot,
    /// Maximum number of crash-the-winner moves (0 — the default — keeps
    /// the classical churn-free adversary).
    pub crash_budget: usize,
}

/// The result of a spoiler search.
#[derive(Clone, Debug)]
pub struct SpoiledPattern {
    /// The worst pattern found.
    pub pattern: WakePattern,
    /// The churn script realizing the bound ([`ChurnScript::none`] when no
    /// crash move was accepted). Replay with
    /// `SimConfig::with_churn(script)` to reproduce the outcome.
    pub churn: ChurnScript,
    /// The outcome of the protocol under that pattern (and churn script).
    pub outcome: Outcome,
    /// Number of accepted moves (delays + crashes).
    pub moves: usize,
    /// Number of accepted crash-the-winner moves (≤ `crash_budget`).
    pub crashes: usize,
}

impl SpoilerSearch {
    /// A search allowing `max_moves` moves within `horizon` slots of `s`.
    pub fn new(max_moves: usize, horizon: Slot) -> Self {
        SpoilerSearch {
            max_moves,
            horizon,
            crash_budget: 0,
        }
    }

    /// Arm the spoiler with up to `budget` fail-stop crash faults.
    #[must_use]
    pub fn with_crash_budget(mut self, budget: usize) -> Self {
        self.crash_budget = budget;
        self
    }

    /// Search for a bad pattern for `protocol`, starting from `start`
    /// (typically a simultaneous pattern with the target `k` stations).
    ///
    /// Runs are deterministic given `run_seed`, so for deterministic
    /// protocols the returned pattern is a reproducible worst-case witness.
    pub fn search(
        &self,
        sim: &Simulator,
        protocol: &dyn Protocol,
        start: WakePattern,
        run_seed: u64,
    ) -> Result<SpoiledPattern, SimError> {
        let s = start.s();
        let mut pattern = start;
        let mut crash_entries: Vec<ChurnEntry> = Vec::new();
        let mut outcome = self.run_with(sim, protocol, &pattern, &crash_entries, run_seed)?;
        let mut moves = 0usize;

        while moves < self.max_moves {
            let (Some(t), Some(w)) = (outcome.first_success, outcome.winner) else {
                // Already unsolved within the cap: cannot do better.
                break;
            };

            // Move 1 — delay the winner's wake-up to t + 1. Never move the
            // last station anchored at `s`: some station must define `s`
            // for the latency measure to stay comparable. Never delay past
            // the horizon.
            let anchored = pattern.wakes().iter().filter(|&&(_, ts)| ts == s).count();
            let w_at_s = pattern.wake_of(w) == Some(s);
            let mut delay: Option<(WakePattern, Outcome)> = None;
            if !(w_at_s && anchored <= 1) && t < s + self.horizon {
                let mut candidate = pattern.clone();
                candidate.reschedule(w, t + 1);
                let out = self.run_with(sim, protocol, &candidate, &crash_entries, run_seed)?;
                delay = Some((candidate, out));
            }

            // Move 2 — crash the winner at its success slot (processed
            // before it can transmit there, so the success is voided). One
            // crash per station: the winner must not already be scripted.
            let mut crash: Option<(Vec<ChurnEntry>, Outcome)> = None;
            if crash_entries.len() < self.crash_budget && !crash_entries.iter().any(|e| e.id == w) {
                let mut entries = crash_entries.clone();
                entries.push(ChurnEntry {
                    id: w,
                    crash: t,
                    rewake: None,
                });
                let out = self.run_with(sim, protocol, &pattern, &entries, run_seed)?;
                crash = Some((entries, out));
            }

            // Greedy accept: the move that pushes the first success
            // furthest (censored counts as furthest); delay wins ties so
            // the crash budget is spent only where scheduling alone cannot
            // reach.
            let gain = |o: &Outcome| o.first_success.unwrap_or(u64::MAX);
            let delay_gain = delay.as_ref().map(|(_, o)| gain(o));
            let crash_gain = crash.as_ref().map(|(_, o)| gain(o));
            let best = delay_gain.max(crash_gain);
            match best {
                Some(g) if g > gain(&outcome) => {
                    if delay_gain == best {
                        let (candidate, out) = delay.expect("delay_gain == best");
                        pattern = candidate;
                        outcome = out;
                    } else {
                        let (entries, out) = crash.expect("crash_gain == best");
                        crash_entries = entries;
                        outcome = out;
                    }
                    moves += 1;
                }
                _ => break,
            }
        }

        let crashes = crash_entries.len();
        let churn =
            ChurnScript::scripted(crash_entries).expect("crash entries are unique by construction");
        Ok(SpoiledPattern {
            pattern,
            churn,
            outcome,
            moves,
            crashes,
        })
    }

    /// One deterministic run of `pattern` under the crash entries collected
    /// so far (the simulator's own churn config is replaced by the
    /// spoiler's script; searches start from churn-free configs).
    fn run_with(
        &self,
        sim: &Simulator,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        crashes: &[ChurnEntry],
        run_seed: u64,
    ) -> Result<Outcome, SimError> {
        if crashes.is_empty() {
            return sim.run(protocol, pattern, run_seed);
        }
        let churn = ChurnScript::scripted(crashes.to_vec())
            .expect("crash entries are unique by construction");
        let spoofed = Simulator::new(sim.config().clone().with_churn(churn));
        spoofed.run(protocol, pattern, run_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::ids::StationId;
    use crate::station::FnProtocol;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn round_robin(
        n: u32,
    ) -> FnProtocol<impl Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send> {
        FnProtocol::new(format!("rr{n}"), move |id: StationId, _s, _sig, t: Slot| {
            t % u64::from(n) == u64::from(id.0)
        })
    }

    #[test]
    fn spoiler_delays_round_robin_winner() {
        // Round-robin over n=8 with stations {0, 1} waking at slot 0:
        // baseline success at slot 0 (station 0 alone). The spoiler should
        // delay station 0's wake past slot 0, pushing the success later.
        let sim = Simulator::new(SimConfig::new(8).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let baseline = sim.run(&round_robin(8), &start, 1).unwrap();
        assert_eq!(baseline.first_success, Some(0));

        let spoiled = SpoilerSearch::new(16, 64)
            .search(&sim, &round_robin(8), start, 1)
            .unwrap();
        let spoiled_t = spoiled.outcome.first_success.unwrap();
        assert!(spoiled_t > 0, "spoiler failed to delay success");
        assert!(spoiled.moves >= 1);
    }

    #[test]
    fn spoiler_keeps_an_anchor_at_s() {
        let sim = Simulator::new(SimConfig::new(4).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[0, 1, 2]), 5).unwrap();
        let spoiled = SpoilerSearch::new(32, 64)
            .search(&sim, &round_robin(4), start, 0)
            .unwrap();
        assert_eq!(spoiled.pattern.s(), 5, "the first wake-up must stay at s");
    }

    #[test]
    fn spoiler_is_monotone_not_worse_than_baseline() {
        let sim = Simulator::new(SimConfig::new(16).with_max_slots(256));
        let start = WakePattern::simultaneous(&ids(&[0, 3, 7, 12]), 0).unwrap();
        let baseline = sim.run(&round_robin(16), &start, 2).unwrap();
        let spoiled = SpoilerSearch::new(64, 256)
            .search(&sim, &round_robin(16), start, 2)
            .unwrap();
        let b = baseline.first_success.unwrap();
        let sp = spoiled.outcome.first_success.unwrap_or(u64::MAX);
        assert!(sp >= b);
    }

    #[test]
    fn spoiler_with_zero_moves_returns_start() {
        let sim = Simulator::new(SimConfig::new(4).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[1, 2]), 0).unwrap();
        let spoiled = SpoilerSearch::new(0, 64)
            .search(&sim, &round_robin(4), start.clone(), 0)
            .unwrap();
        assert_eq!(spoiled.pattern, start);
        assert_eq!(spoiled.moves, 0);
        assert!(spoiled.churn.is_empty());
        assert_eq!(spoiled.crashes, 0);
    }

    #[test]
    fn unarmed_spoiler_never_crashes_anyone() {
        let sim = Simulator::new(SimConfig::new(8).with_max_slots(64));
        let start = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let spoiled = SpoilerSearch::new(16, 64)
            .search(&sim, &round_robin(8), start, 1)
            .unwrap();
        assert!(spoiled.churn.is_empty());
        assert_eq!(spoiled.crashes, 0);
    }

    #[test]
    fn crash_armed_spoiler_beats_the_anchor_limit() {
        // A single station on round-robin: the delay move is blocked (the
        // only station anchors `s`), so the unarmed spoiler cannot move at
        // all. With a crash budget the spoiler kills the winner and the run
        // censors — the worst possible outcome.
        let sim = Simulator::new(SimConfig::new(4).with_max_slots(32));
        let start = WakePattern::simultaneous(&ids(&[0]), 0).unwrap();
        let unarmed = SpoilerSearch::new(8, 32)
            .search(&sim, &round_robin(4), start.clone(), 0)
            .unwrap();
        assert_eq!(unarmed.moves, 0);
        assert!(unarmed.outcome.solved());

        let armed = SpoilerSearch::new(8, 32)
            .with_crash_budget(1)
            .search(&sim, &round_robin(4), start, 0)
            .unwrap();
        assert_eq!(armed.crashes, 1);
        assert_eq!(
            armed.outcome.first_success, None,
            "winner crashed, run censors"
        );
        assert_eq!(armed.outcome.faults.churn_crashes, 1);
        assert_eq!(armed.churn.entries().len(), 1);
    }

    #[test]
    fn crash_budget_is_respected_and_script_replays() {
        let sim = Simulator::new(SimConfig::new(8).with_max_slots(128));
        let start = WakePattern::simultaneous(&ids(&[0, 1, 2, 3]), 0).unwrap();
        let spoiled = SpoilerSearch::new(32, 128)
            .with_crash_budget(2)
            .search(&sim, &round_robin(8), start, 3)
            .unwrap();
        assert!(spoiled.crashes <= 2);
        assert_eq!(spoiled.churn.entries().len(), spoiled.crashes);

        // The witness replays: pattern + churn script reproduce the
        // reported outcome bit-for-bit.
        let replay_sim = Simulator::new(sim.config().clone().with_churn(spoiled.churn.clone()));
        let replay = replay_sim
            .run(&round_robin(8), &spoiled.pattern, 3)
            .unwrap();
        assert_eq!(replay.first_success, spoiled.outcome.first_success);
        assert_eq!(replay.faults, spoiled.outcome.faults);
    }

    #[test]
    fn spoiled_patterns_remain_valid_wake_patterns() {
        // Whatever the spoiler does — delays, crashes, or both — the
        // resulting pattern must survive WakePattern's own validation
        // (sorted, duplicate-free, anchored at s).
        let sim = Simulator::new(SimConfig::new(8).with_max_slots(128));
        for seed in 0..4u64 {
            let start = WakePattern::simultaneous(&ids(&[0, 2, 5, 7]), 3).unwrap();
            let spoiled = SpoilerSearch::new(32, 128)
                .with_crash_budget(2)
                .search(&sim, &round_robin(8), start, seed)
                .unwrap();
            let rebuilt = WakePattern::new(spoiled.pattern.wakes().to_vec())
                .expect("spoiled pattern must revalidate");
            assert_eq!(rebuilt, spoiled.pattern);
            assert_eq!(spoiled.pattern.s(), 3, "anchor at s preserved");
            assert_eq!(spoiled.pattern.k(), 4, "no station lost or invented");
            // Every crash entry targets a station that exists in the
            // pattern and fires no earlier than its wake.
            for e in spoiled.churn.entries() {
                let wake = spoiled.pattern.wake_of(e.id).expect("crashed id exists");
                assert!(e.crash >= wake);
                assert_eq!(e.rewake, None, "spoiler crashes are permanent");
            }
        }
    }
}
