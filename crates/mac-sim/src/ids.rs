//! Identifier types shared across the simulator.
//!
//! The paper gives each station a unique integer ID from `[n] = {1, …, n}`.
//! We use zero-based IDs `{0, …, n-1}` internally (idiomatic for array
//! indexing); rendered output that wants to match the paper's notation adds 1.

use std::fmt;

/// A global time slot (round number ticked by the global clock).
///
/// Slots start at 0 and are visible to every station — this is the *globally
/// synchronous* model of the paper. 64 bits comfortably cover every schedule
/// length that appears in the paper (the Scenario C matrix has length
/// `2c·n·log n·log log n`, far below `2^64` for any realistic `n`).
pub type Slot = u64;

/// A station identifier in `{0, …, n-1}`.
///
/// `StationId` is a transparent newtype so transcripts, schedules and
/// selective families cannot accidentally mix IDs with slot numbers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationId(pub u32);

impl StationId {
    /// The ID as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The 1-based ID used by the paper's notation (`[n] = {1, …, n}`).
    #[inline]
    pub fn paper_id(self) -> u32 {
        self.0 + 1
    }
}

impl fmt::Debug for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for StationId {
    fn from(v: u32) -> Self {
        StationId(v)
    }
}

impl From<StationId> for u32 {
    fn from(v: StationId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_id_roundtrip() {
        let id = StationId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.paper_id(), 8);
        assert_eq!(u32::from(id), 7);
        assert_eq!(StationId::from(7u32), id);
    }

    #[test]
    fn station_id_ordering_matches_numeric() {
        let mut v = vec![StationId(5), StationId(0), StationId(3)];
        v.sort();
        assert_eq!(v, vec![StationId(0), StationId(3), StationId(5)]);
    }

    #[test]
    fn debug_and_display_are_compact() {
        assert_eq!(format!("{:?}", StationId(4)), "u4");
        assert_eq!(format!("{}", StationId(4)), "4");
    }
}
