//! Per-slot transcripts of a simulation run, plus model-invariant checkers.
//!
//! Transcripts record the ground truth of every simulated slot (who
//! transmitted, how the channel resolved). They are optional (recording can
//! be disabled for large ensemble runs) and are consumed by:
//!
//! * tests, via [`Transcript::check_invariants`] — a machine-checkable
//!   statement of the channel model's rules;
//! * the waking-matrix analysis experiments (EXP-BAL), which need to know the
//!   exact contention at each slot;
//! * the rendered figures (EXP-FIG1/2).

use crate::channel::SlotOutcome;
use crate::ids::{Slot, StationId};

/// What happened in one simulated slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotRecord {
    /// The global slot number.
    pub slot: Slot,
    /// IDs of all stations that transmitted (sorted).
    pub transmitters: Vec<StationId>,
    /// How the channel resolved.
    pub outcome: SlotOutcome,
}

/// A complete per-slot record of a run, from the first wake-up `s` onwards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    records: Vec<SlotRecord>,
}

/// A violation of the channel model found by [`Transcript::check_invariants`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Slot numbers are not strictly increasing and contiguous.
    NonContiguousSlots {
        /// Index into the transcript where the gap occurs.
        at: usize,
    },
    /// The recorded outcome does not match the recorded transmitter set.
    OutcomeMismatch {
        /// The offending slot.
        slot: Slot,
    },
    /// A success appears before the final record (the wake-up problem stops
    /// at the first success).
    SuccessNotTerminal {
        /// The premature success slot.
        slot: Slot,
    },
    /// A transmitter list is not sorted or contains duplicates.
    MalformedTransmitters {
        /// The offending slot.
        slot: Slot,
    },
}

impl Transcript {
    /// Create an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Append a slot record. The engine records slots in increasing order.
    pub fn push(&mut self, record: SlotRecord) {
        self.records.push(record);
    }

    /// All records, in slot order.
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record of the successful slot, if the run succeeded.
    pub fn success(&self) -> Option<&SlotRecord> {
        self.records.last().filter(|r| r.outcome.is_success())
    }

    /// Count slots with the given number of transmitters
    /// (0 = silence, 1 = success, ≥2 = collision).
    pub fn count_by_contention(&self, transmitters: usize) -> usize {
        self.records
            .iter()
            .filter(|r| r.transmitters.len() == transmitters)
            .count()
    }

    /// Check the channel-model invariants; returns all violations found.
    ///
    /// Invariants:
    /// 1. slots are contiguous and increasing;
    /// 2. outcome matches the transmitter multiset (0 ⇒ Silence, 1 ⇒
    ///    Success of that station, ≥2 ⇒ Collision of exactly that set);
    /// 3. at most one success, and only in the final record (the engine
    ///    stops a wake-up run at the first success);
    /// 4. transmitter lists are sorted and duplicate-free.
    ///
    /// For full-conflict-resolution runs (`StopRule::AllResolved`, where
    /// many successes occur mid-run) use
    /// [`check_invariants_multi_success`](Self::check_invariants_multi_success).
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        self.check(true)
    }

    /// Channel-model invariants without the success-is-terminal rule —
    /// for conflict-resolution runs in which every station must eventually
    /// transmit successfully.
    pub fn check_invariants_multi_success(&self) -> Vec<InvariantViolation> {
        self.check(false)
    }

    fn check(&self, success_must_be_terminal: bool) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 && r.slot != self.records[i - 1].slot + 1 {
                violations.push(InvariantViolation::NonContiguousSlots { at: i });
            }
            if r.transmitters.windows(2).any(|w| w[0] >= w[1]) {
                violations.push(InvariantViolation::MalformedTransmitters { slot: r.slot });
            }
            let expected = SlotOutcome::resolve(r.transmitters.clone());
            if expected != r.outcome {
                violations.push(InvariantViolation::OutcomeMismatch { slot: r.slot });
            }
            if success_must_be_terminal && r.outcome.is_success() && i + 1 != self.records.len() {
                violations.push(InvariantViolation::SuccessNotTerminal { slot: r.slot });
            }
        }
        violations
    }

    /// Channel-model invariants relaxed for runs under a faulty
    /// [`ChannelModel`](crate::channel::ChannelModel).
    ///
    /// Transcripts record the *effective* outcome (post-fault) against the
    /// ground-truth transmitter set, so the strict `resolve(tx) == outcome`
    /// rule no longer holds. What still must hold per slot:
    ///
    /// * `Silence` with at most one transmitter (an erased success or true
    ///   silence — a collision can never be erased to silence);
    /// * `Success(w)` with `w` among ≥ 1 transmitters (true success or a
    ///   capture winner drawn from the contenders);
    /// * `Collision` only with *exactly* the recorded set, length ≥ 2
    ///   (faults never invent transmitters);
    /// * slots contiguous, transmitter lists sorted and duplicate-free.
    ///
    /// No success-is-terminal rule: under erasure a run may continue past a
    /// ground-truth solo transmission.
    pub fn check_invariants_faulty(&self) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 && r.slot != self.records[i - 1].slot + 1 {
                violations.push(InvariantViolation::NonContiguousSlots { at: i });
            }
            if r.transmitters.windows(2).any(|w| w[0] >= w[1]) {
                violations.push(InvariantViolation::MalformedTransmitters { slot: r.slot });
            }
            let ok = match &r.outcome {
                SlotOutcome::Silence => r.transmitters.len() <= 1,
                SlotOutcome::Success(w) => !r.transmitters.is_empty() && r.transmitters.contains(w),
                SlotOutcome::Collision(set) => set.len() >= 2 && *set == r.transmitters,
            };
            if !ok {
                violations.push(InvariantViolation::OutcomeMismatch { slot: r.slot });
            }
        }
        violations
    }

    /// Slots of all successful transmissions, with their winners.
    pub fn successes(&self) -> Vec<(Slot, StationId)> {
        self.records
            .iter()
            .filter_map(|r| match r.outcome {
                SlotOutcome::Success(w) => Some((r.slot, w)),
                _ => None,
            })
            .collect()
    }

    /// Render a compact ASCII strip of the run: `.` silence, `!` success,
    /// `x` collision — handy in failure messages and examples.
    pub fn ascii_strip(&self) -> String {
        self.records
            .iter()
            .map(|r| match r.outcome {
                SlotOutcome::Silence => '.',
                SlotOutcome::Success(_) => '!',
                SlotOutcome::Collision(_) => 'x',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: Slot, tx: &[u32]) -> SlotRecord {
        let transmitters: Vec<StationId> = tx.iter().copied().map(StationId).collect();
        let outcome = SlotOutcome::resolve(transmitters.clone());
        SlotRecord {
            slot,
            transmitters,
            outcome,
        }
    }

    #[test]
    fn clean_transcript_has_no_violations() {
        let mut t = Transcript::new();
        t.push(rec(10, &[]));
        t.push(rec(11, &[1, 2]));
        t.push(rec(12, &[3]));
        assert!(t.check_invariants().is_empty());
        assert_eq!(t.ascii_strip(), ".x!");
        assert_eq!(t.success().unwrap().slot, 12);
        assert_eq!(t.count_by_contention(0), 1);
        assert_eq!(t.count_by_contention(2), 1);
        assert_eq!(t.count_by_contention(1), 1);
    }

    #[test]
    fn detects_gap_in_slots() {
        let mut t = Transcript::new();
        t.push(rec(0, &[]));
        t.push(rec(2, &[]));
        assert_eq!(
            t.check_invariants(),
            vec![InvariantViolation::NonContiguousSlots { at: 1 }]
        );
    }

    #[test]
    fn detects_outcome_mismatch() {
        let mut t = Transcript::new();
        t.push(SlotRecord {
            slot: 0,
            transmitters: vec![StationId(1), StationId(2)],
            outcome: SlotOutcome::Silence, // lie: this was a collision
        });
        assert_eq!(
            t.check_invariants(),
            vec![InvariantViolation::OutcomeMismatch { slot: 0 }]
        );
    }

    #[test]
    fn detects_premature_success() {
        let mut t = Transcript::new();
        t.push(rec(0, &[4]));
        t.push(rec(1, &[]));
        assert_eq!(
            t.check_invariants(),
            vec![InvariantViolation::SuccessNotTerminal { slot: 0 }]
        );
    }

    #[test]
    fn detects_unsorted_transmitters() {
        let mut t = Transcript::new();
        t.push(SlotRecord {
            slot: 0,
            transmitters: vec![StationId(2), StationId(1)],
            outcome: SlotOutcome::Collision(vec![StationId(1), StationId(2)]),
        });
        let v = t.check_invariants();
        assert!(v.contains(&InvariantViolation::MalformedTransmitters { slot: 0 }));
    }

    #[test]
    fn faulty_checker_permits_fault_shapes_only() {
        let mut t = Transcript::new();
        // Erased success: one transmitter, heard as silence.
        t.push(SlotRecord {
            slot: 0,
            transmitters: vec![StationId(3)],
            outcome: SlotOutcome::Silence,
        });
        // Capture: two transmitters, one wins.
        t.push(SlotRecord {
            slot: 1,
            transmitters: vec![StationId(1), StationId(2)],
            outcome: SlotOutcome::Success(StationId(2)),
        });
        // Ordinary slots still pass.
        t.push(rec(2, &[]));
        t.push(rec(3, &[4, 5, 6]));
        t.push(rec(4, &[7]));
        assert!(t.check_invariants_faulty().is_empty());
        // The strict checker rejects the faulted slots (and only those).
        let strict = t.check_invariants_multi_success();
        assert_eq!(
            strict,
            vec![
                InvariantViolation::OutcomeMismatch { slot: 0 },
                InvariantViolation::OutcomeMismatch { slot: 1 },
            ]
        );
    }

    #[test]
    fn faulty_checker_still_rejects_impossible_slots() {
        let mut t = Transcript::new();
        // A collision can never be erased to silence.
        t.push(SlotRecord {
            slot: 0,
            transmitters: vec![StationId(1), StationId(2)],
            outcome: SlotOutcome::Silence,
        });
        // A capture winner must be a contender.
        t.push(SlotRecord {
            slot: 1,
            transmitters: vec![StationId(1), StationId(2)],
            outcome: SlotOutcome::Success(StationId(9)),
        });
        // Faults never invent transmitters.
        t.push(SlotRecord {
            slot: 2,
            transmitters: vec![StationId(1)],
            outcome: SlotOutcome::Collision(vec![StationId(1), StationId(2)]),
        });
        assert_eq!(
            t.check_invariants_faulty(),
            vec![
                InvariantViolation::OutcomeMismatch { slot: 0 },
                InvariantViolation::OutcomeMismatch { slot: 1 },
                InvariantViolation::OutcomeMismatch { slot: 2 },
            ]
        );
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.success().is_none());
        assert!(t.check_invariants().is_empty());
        assert_eq!(t.ascii_strip(), "");
    }
}
