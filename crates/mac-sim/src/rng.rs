//! Deterministic seeding utilities.
//!
//! All randomness in a run derives from a single `u64` run seed, so every
//! experiment is exactly reproducible. The engine derives per-station seeds
//! with [`derive_seed`], a SplitMix64-style finalizer (Steele, Lea & Flood's
//! generator; the same mixing used by `java.util.SplittableRandom`). The
//! statistical quality requirements here are mild — we only need well-spread,
//! decorrelated sub-seeds — and SplitMix64's avalanche behaviour is more than
//! sufficient.

/// SplitMix64 finalizer: a bijective mixing of a 64-bit value with full
/// avalanche (every input bit affects every output bit with probability ≈ ½).
#[inline]
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a decorrelated sub-seed from `(seed, stream)`.
///
/// Distinct `(seed, stream)` pairs yield (with overwhelming probability)
/// unrelated sub-seeds; identical pairs always yield the same sub-seed.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // Mix the stream index in twice with different offsets so that
    // derive_seed(a, b) and derive_seed(b, a) differ.
    split_mix64(seed ^ split_mix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Stream tag for the per-run channel-fault draw sequence: the fault layer
/// draws from `derive_seed(derive_seed(run_seed, FAULT_STREAM), slot)`.
/// All stream tags live far above `u32::MAX` so they can never collide with
/// the per-station streams (`derive_seed(run_seed, id)` with `id < 2^32`).
pub const FAULT_STREAM: u64 = 0x4641_554C_5400_0001;

/// Stream tag for per-station random-churn fate draws
/// (`derive_seed(derive_seed(run_seed, CHURN_STREAM), id)`).
pub const CHURN_STREAM: u64 = 0x4348_5552_4E00_0001;

/// Stream tag for re-woken stations: a station that crashes and re-wakes is
/// re-instantiated with `derive_seed(derive_seed(run_seed, REWAKE_STREAM),
/// id)` — a fresh seed decorrelated from its first life, identical across
/// engine paths.
pub const REWAKE_STREAM: u64 = 0x5245_5741_4B00_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_mix64_is_deterministic() {
        assert_eq!(split_mix64(42), split_mix64(42));
        assert_ne!(split_mix64(42), split_mix64(43));
    }

    #[test]
    fn split_mix64_known_vector() {
        // Reference value: the published SplitMix64 with state 0 produces
        // 0xE220A8397B1DCDAF on its first call, which equals
        // finalize(0 + GAMMA) — exactly our split_mix64(0).
        assert_eq!(split_mix64(0), 0xE220_A839_7B1D_CDAF_u64);
    }

    #[test]
    fn derive_seed_is_asymmetric_in_arguments() {
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }

    #[test]
    fn derive_seed_spreads_streams() {
        // Consecutive stream indices must not produce consecutive seeds.
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        assert!(a.abs_diff(b) > 1 << 32, "a={a:#x} b={b:#x}");
    }

    #[test]
    fn derive_seed_depends_on_both_inputs() {
        let base = derive_seed(100, 5);
        assert_ne!(base, derive_seed(101, 5));
        assert_ne!(base, derive_seed(100, 6));
    }

    #[test]
    fn stream_tags_are_distinct_and_above_station_ids() {
        for s in [FAULT_STREAM, CHURN_STREAM, REWAKE_STREAM] {
            assert!(s > u64::from(u32::MAX), "tag {s:#x} collides with IDs");
        }
        assert_ne!(FAULT_STREAM, CHURN_STREAM);
        assert_ne!(CHURN_STREAM, REWAKE_STREAM);
        assert_ne!(FAULT_STREAM, REWAKE_STREAM);
    }

    #[test]
    fn split_mix64_low_bit_balance() {
        // Crude avalanche sanity check: over 4096 consecutive inputs the
        // low output bit should be roughly balanced.
        let ones: u32 = (0..4096u64).map(|i| (split_mix64(i) & 1) as u32).sum();
        assert!(
            (1600..=2500).contains(&ones),
            "low-bit bias: {ones}/4096 ones"
        );
    }
}
