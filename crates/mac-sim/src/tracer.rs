//! Structured event tracing for the engine's hot paths.
//!
//! A [`Tracer`] receives [`TraceEvent`]s as the engine simulates: slot
//! outcomes, hint re-queries, adaptive mode switches, burst windows, class
//! splits, and heap/live-unit watermarks. The engine run loops are generic
//! over the tracer, so the default [`NoopTracer`] monomorphizes every
//! emission site away — an untraced run pays nothing for the subsystem.
//!
//! Event kinds split into two determinism tiers (the discipline the
//! machine-readable sinks already follow for wall-clock fields):
//!
//! * **Deterministic** kinds ([`TraceKind::deterministic`] — wakes, coalesced
//!   silence runs, successes, collisions, run end) describe the *channel*,
//!   which every engine resolves identically. For a fixed seed the
//!   deterministic event stream is bit-identical across
//!   [`EngineMode`](crate::engine::EngineMode)s, population modes, and — when
//!   an ensemble folds per-run traces in seed order — thread counts. Traces
//!   restricted to these kinds are diffable artifacts.
//! * **Engine** kinds (hint re-queries, mode switches, burst windows, class
//!   splits, watermarks) describe *how* a particular engine got there, and
//!   legitimately differ across engine and population modes. Writers keep
//!   them out of deterministic streams (see
//!   [`TraceFilter::deterministic`]).
//!
//! Consecutive silent slots are coalesced into single
//! [`TraceEvent::Silence`] runs *before* they reach the tracer, so a sparse
//! engine skipping a million-slot gap and a dense engine polling through it
//! emit the same one event.
//!
//! Sampling: every tracer applies its [`TraceFilter`], which combines a kind
//! mask (cheap pre-filter, consulted by the engine *before* an event is even
//! constructed) with keep-every-Nth sampling on **per-kind** counters — so a
//! torrent of silence runs cannot starve rare mode switches out of a sampled
//! stream, and a sampled stream is always a strict subsequence of the
//! unsampled one.

use crate::ids::{Slot, StationId};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// The kind of a [`TraceEvent`] — the unit of filtering and sampling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Stations woke (deterministic).
    Wake,
    /// A run of consecutive silent slots (deterministic).
    Silence,
    /// A successful transmission (deterministic).
    Success,
    /// A collision (deterministic).
    Collision,
    /// End of run (deterministic).
    RunEnd,
    /// The engine re-queried transmission hints (engine-specific).
    HintRequery,
    /// The adaptive policy switched sparse↔dense (engine-specific).
    ModeSwitch,
    /// A dense burst window opened or grew (engine-specific).
    BurstOpen,
    /// A dense burst window closed — sparsity resumed (engine-specific).
    BurstClose,
    /// An equivalence class split off new units (engine-specific).
    ClassSplit,
    /// Reserved: class merges. The current engine only fragments classes,
    /// so this kind is never emitted, but writers and filters handle it.
    ClassMerge,
    /// Heap size / live-unit high-water advanced (engine-specific).
    Watermark,
    /// The channel erased a successful transmission to silence
    /// (deterministic: faults are pure in `(run_seed, slot)`).
    FaultErasure,
    /// The channel captured a collision as one contender's success
    /// (deterministic).
    FaultCapture,
    /// A station crashed per the churn script (deterministic: fates are
    /// pure in `(run_seed, id, wake slot)`).
    ChurnCrash,
    /// A crashed station re-woke with fresh state (deterministic).
    ChurnRewake,
}

/// Number of distinct [`TraceKind`]s.
pub const KIND_COUNT: usize = 16;

impl TraceKind {
    /// Every kind, in index order.
    pub const ALL: [TraceKind; KIND_COUNT] = [
        TraceKind::Wake,
        TraceKind::Silence,
        TraceKind::Success,
        TraceKind::Collision,
        TraceKind::RunEnd,
        TraceKind::HintRequery,
        TraceKind::ModeSwitch,
        TraceKind::BurstOpen,
        TraceKind::BurstClose,
        TraceKind::ClassSplit,
        TraceKind::ClassMerge,
        TraceKind::Watermark,
        TraceKind::FaultErasure,
        TraceKind::FaultCapture,
        TraceKind::ChurnCrash,
        TraceKind::ChurnRewake,
    ];

    /// Dense index of this kind (for per-kind counters).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The `ev` field value in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Wake => "wake",
            TraceKind::Silence => "silence",
            TraceKind::Success => "success",
            TraceKind::Collision => "collision",
            TraceKind::RunEnd => "run_end",
            TraceKind::HintRequery => "hint_requery",
            TraceKind::ModeSwitch => "mode_switch",
            TraceKind::BurstOpen => "burst_open",
            TraceKind::BurstClose => "burst_close",
            TraceKind::ClassSplit => "class_split",
            TraceKind::ClassMerge => "class_merge",
            TraceKind::Watermark => "watermark",
            TraceKind::FaultErasure => "fault_erasure",
            TraceKind::FaultCapture => "fault_capture",
            TraceKind::ChurnCrash => "churn_crash",
            TraceKind::ChurnRewake => "churn_rewake",
        }
    }

    /// Look a kind up by its [`name`](TraceKind::name).
    pub fn parse(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// `true` for the channel-observable kinds whose streams are
    /// bit-identical across engines and population modes for a fixed seed.
    /// Fault and churn events qualify: faults are pure functions of
    /// `(run_seed, slot)` and churn fates of `(run_seed, id, wake)`, so
    /// every engine path sees the same events at the same slots.
    #[inline]
    pub fn deterministic(self) -> bool {
        matches!(
            self,
            TraceKind::Wake
                | TraceKind::Silence
                | TraceKind::Success
                | TraceKind::Collision
                | TraceKind::RunEnd
                | TraceKind::FaultErasure
                | TraceKind::FaultCapture
                | TraceKind::ChurnCrash
                | TraceKind::ChurnRewake
        )
    }
}

/// One engine event. All fields are integers (slots, counts, IDs) — no
/// wall-clock, no floats — so renderings are bit-stable by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `stations` stations woke at `slot`.
    Wake {
        /// The wake slot.
        slot: Slot,
        /// How many stations woke this slot.
        stations: u64,
    },
    /// Slots `[slot, slot + slots)` were silent — skipped in bulk or polled
    /// individually, coalesced either way.
    Silence {
        /// First silent slot of the run.
        slot: Slot,
        /// Length of the silent run.
        slots: u64,
    },
    /// Station `winner` transmitted alone at `slot`.
    Success {
        /// The successful slot.
        slot: Slot,
        /// The sole transmitter.
        winner: StationId,
    },
    /// `contenders` stations transmitted simultaneously at `slot`.
    Collision {
        /// The collision slot.
        slot: Slot,
        /// Number of simultaneous transmitters.
        contenders: u64,
    },
    /// The run ended after covering `slots` slots.
    RunEnd {
        /// Total slots covered ([`Outcome::slots_simulated`](crate::engine::Outcome::slots_simulated)).
        slots: u64,
        /// The first successful slot, if the run solved wake-up.
        first_success: Option<Slot>,
    },
    /// The engine asked `queries` units for fresh transmission hints at
    /// `slot`.
    HintRequery {
        /// The slot the hints look from.
        slot: Slot,
        /// How many units were re-queried.
        queries: u64,
    },
    /// The engine switched execution path at `slot`.
    ModeSwitch {
        /// The slot of the switch.
        slot: Slot,
        /// `true`: sparse → dense; `false`: dense → sparse.
        dense: bool,
    },
    /// A dense burst window of `window` slots opened (or doubled on a
    /// failed re-probe) at `slot`.
    BurstOpen {
        /// The slot the window starts at.
        slot: Slot,
        /// The window length in slots.
        window: u64,
    },
    /// The burst window closed at `slot`: a re-probe found a skippable gap.
    BurstClose {
        /// The slot sparsity resumed at.
        slot: Slot,
    },
    /// Class feedback at `slot` split `born` new units off their classes.
    ClassSplit {
        /// The feedback slot.
        slot: Slot,
        /// Number of newly created units.
        born: u64,
    },
    /// Reserved (never emitted): classes re-merged at `slot`.
    ClassMerge {
        /// The merge slot.
        slot: Slot,
        /// Number of units retired by the merge.
        merged: u64,
    },
    /// A memory high-water advanced at `slot`.
    Watermark {
        /// The slot of the new high-water.
        slot: Slot,
        /// Live heap entries (sparse event heap).
        heap: u64,
        /// Live simulation units (stations or classes).
        units: u64,
    },
    /// The channel erased `winner`'s solo transmission at `slot`.
    FaultErasure {
        /// The erased slot (recorded as silence).
        slot: Slot,
        /// The station whose success was lost.
        winner: StationId,
    },
    /// The channel captured a `contenders`-way collision at `slot` as
    /// `winner`'s success.
    FaultCapture {
        /// The captured slot (recorded as a success).
        slot: Slot,
        /// The surviving transmitter.
        winner: StationId,
        /// Ground-truth number of simultaneous transmitters.
        contenders: u64,
    },
    /// Station `id` crashed at `slot` per the churn script.
    ChurnCrash {
        /// The crash slot (the station is inert from this slot on).
        slot: Slot,
        /// The crashed station.
        id: StationId,
    },
    /// Station `id` re-woke at `slot` with fresh protocol state.
    ChurnRewake {
        /// The re-wake slot.
        slot: Slot,
        /// The re-woken station.
        id: StationId,
    },
}

impl TraceEvent {
    /// This event's kind.
    #[inline]
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Wake { .. } => TraceKind::Wake,
            TraceEvent::Silence { .. } => TraceKind::Silence,
            TraceEvent::Success { .. } => TraceKind::Success,
            TraceEvent::Collision { .. } => TraceKind::Collision,
            TraceEvent::RunEnd { .. } => TraceKind::RunEnd,
            TraceEvent::HintRequery { .. } => TraceKind::HintRequery,
            TraceEvent::ModeSwitch { .. } => TraceKind::ModeSwitch,
            TraceEvent::BurstOpen { .. } => TraceKind::BurstOpen,
            TraceEvent::BurstClose { .. } => TraceKind::BurstClose,
            TraceEvent::ClassSplit { .. } => TraceKind::ClassSplit,
            TraceEvent::ClassMerge { .. } => TraceKind::ClassMerge,
            TraceEvent::Watermark { .. } => TraceKind::Watermark,
            TraceEvent::FaultErasure { .. } => TraceKind::FaultErasure,
            TraceEvent::FaultCapture { .. } => TraceKind::FaultCapture,
            TraceEvent::ChurnCrash { .. } => TraceKind::ChurnCrash,
            TraceEvent::ChurnRewake { .. } => TraceKind::ChurnRewake,
        }
    }

    /// The slot this event anchors to ([`RunEnd`](TraceEvent::RunEnd)
    /// anchors to its covered-slot count).
    pub fn slot(&self) -> Slot {
        match *self {
            TraceEvent::Wake { slot, .. }
            | TraceEvent::Silence { slot, .. }
            | TraceEvent::Success { slot, .. }
            | TraceEvent::Collision { slot, .. }
            | TraceEvent::HintRequery { slot, .. }
            | TraceEvent::ModeSwitch { slot, .. }
            | TraceEvent::BurstOpen { slot, .. }
            | TraceEvent::BurstClose { slot }
            | TraceEvent::ClassSplit { slot, .. }
            | TraceEvent::ClassMerge { slot, .. }
            | TraceEvent::Watermark { slot, .. }
            | TraceEvent::FaultErasure { slot, .. }
            | TraceEvent::FaultCapture { slot, .. }
            | TraceEvent::ChurnCrash { slot, .. }
            | TraceEvent::ChurnRewake { slot, .. } => slot,
            TraceEvent::RunEnd { slots, .. } => slots,
        }
    }

    /// Render the JSON object *body* — `"ev":…` plus the kind's fields,
    /// without the surrounding braces, so writers can prepend context
    /// fields (run index, ensemble label) and stay valid flat JSON.
    pub fn json_fields(&self) -> String {
        let mut s = format!("\"ev\":\"{}\"", self.kind().name());
        match *self {
            TraceEvent::Wake { slot, stations } => {
                let _ = write!(s, ",\"slot\":{slot},\"stations\":{stations}");
            }
            TraceEvent::Silence { slot, slots } => {
                let _ = write!(s, ",\"slot\":{slot},\"slots\":{slots}");
            }
            TraceEvent::Success { slot, winner } => {
                let _ = write!(s, ",\"slot\":{slot},\"winner\":{}", winner.0);
            }
            TraceEvent::Collision { slot, contenders } => {
                let _ = write!(s, ",\"slot\":{slot},\"contenders\":{contenders}");
            }
            TraceEvent::RunEnd {
                slots,
                first_success,
            } => {
                let _ = write!(s, ",\"slots\":{slots},\"first_success\":");
                match first_success {
                    Some(t) => {
                        let _ = write!(s, "{t}");
                    }
                    None => s.push_str("null"),
                }
            }
            TraceEvent::HintRequery { slot, queries } => {
                let _ = write!(s, ",\"slot\":{slot},\"queries\":{queries}");
            }
            TraceEvent::ModeSwitch { slot, dense } => {
                let _ = write!(s, ",\"slot\":{slot},\"dense\":{dense}");
            }
            TraceEvent::BurstOpen { slot, window } => {
                let _ = write!(s, ",\"slot\":{slot},\"window\":{window}");
            }
            TraceEvent::BurstClose { slot } => {
                let _ = write!(s, ",\"slot\":{slot}");
            }
            TraceEvent::ClassSplit { slot, born } => {
                let _ = write!(s, ",\"slot\":{slot},\"born\":{born}");
            }
            TraceEvent::ClassMerge { slot, merged } => {
                let _ = write!(s, ",\"slot\":{slot},\"merged\":{merged}");
            }
            TraceEvent::Watermark { slot, heap, units } => {
                let _ = write!(s, ",\"slot\":{slot},\"heap\":{heap},\"units\":{units}");
            }
            TraceEvent::FaultErasure { slot, winner } => {
                let _ = write!(s, ",\"slot\":{slot},\"winner\":{}", winner.0);
            }
            TraceEvent::FaultCapture {
                slot,
                winner,
                contenders,
            } => {
                let _ = write!(
                    s,
                    ",\"slot\":{slot},\"winner\":{},\"contenders\":{contenders}",
                    winner.0
                );
            }
            TraceEvent::ChurnCrash { slot, id } => {
                let _ = write!(s, ",\"slot\":{slot},\"id\":{}", id.0);
            }
            TraceEvent::ChurnRewake { slot, id } => {
                let _ = write!(s, ",\"slot\":{slot},\"id\":{}", id.0);
            }
        }
        s
    }

    /// Render as one flat JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }
}

/// Kind mask + keep-every-Nth sampling configuration shared by all tracers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFilter {
    mask: u32,
    every: u64,
}

impl TraceFilter {
    /// Admit every kind, unsampled.
    pub fn all() -> Self {
        TraceFilter {
            mask: (1u32 << KIND_COUNT) - 1,
            every: 1,
        }
    }

    /// Admit only the deterministic kinds (the diffable stream), unsampled.
    pub fn deterministic() -> Self {
        let mut mask = 0u32;
        for k in TraceKind::ALL {
            if k.deterministic() {
                mask |= 1 << k.index();
            }
        }
        TraceFilter { mask, every: 1 }
    }

    /// Admit only the engine-specific kinds, unsampled.
    pub fn engine_only() -> Self {
        TraceFilter {
            mask: Self::all().mask & !Self::deterministic().mask,
            every: 1,
        }
    }

    /// Keep only every `n`-th event **per kind** (`n = 0` is treated as 1).
    pub fn sample_every(mut self, n: u64) -> Self {
        self.every = n.max(1);
        self
    }

    /// The sampling stride.
    pub fn stride(&self) -> u64 {
        self.every
    }

    /// Does the mask admit `kind`? The engine consults this before even
    /// constructing an event payload.
    #[inline]
    pub fn admits(&self, kind: TraceKind) -> bool {
        self.mask & (1 << kind.index()) != 0
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::all()
    }
}

/// Per-kind sampling counters (deterministic: they depend only on the event
/// stream, never on wall-clock).
#[derive(Clone, Copy, Debug, Default)]
struct SampleState {
    seen: [u64; KIND_COUNT],
}

impl SampleState {
    /// Count an event of `kind`; `true` iff it survives `filter`'s stride.
    #[inline]
    fn keep(&mut self, filter: &TraceFilter, kind: TraceKind) -> bool {
        let i = kind.index();
        let n = self.seen[i];
        self.seen[i] += 1;
        n.is_multiple_of(filter.every)
    }
}

/// A sink for engine trace events.
///
/// `wants` is the hot-path gate: the engine calls it before constructing an
/// event, so a tracer that answers `false` costs one predictable branch.
/// The default implementation via [`NoopTracer`] monomorphizes both calls
/// away entirely.
pub trait Tracer {
    /// Does this tracer want events of `kind` at all?
    fn wants(&self, kind: TraceKind) -> bool;

    /// Record one event (only called after `wants(ev.kind())` was `true`).
    fn record(&mut self, ev: &TraceEvent);
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        (**self).wants(kind)
    }

    #[inline]
    fn record(&mut self, ev: &TraceEvent) {
        (**self).record(ev);
    }
}

/// The default tracer: wants nothing, records nothing. Engine loops are
/// generic over the tracer, so every emission site guarded by
/// `wants(..) == false` compiles away under this type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn wants(&self, _kind: TraceKind) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory tracer: keeps the **last** `capacity` admitted
/// events (a flight recorder), while per-kind totals count everything —
/// useful to inspect the end of a long run without holding its whole trace.
#[derive(Clone, Debug)]
pub struct RingTracer {
    filter: TraceFilter,
    sample: SampleState,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    counts: [u64; KIND_COUNT],
}

impl RingTracer {
    /// A ring of `capacity` events admitting every kind.
    pub fn new(capacity: usize) -> Self {
        Self::with_filter(capacity, TraceFilter::all())
    }

    /// A ring of `capacity` events with an explicit filter.
    pub fn with_filter(capacity: usize, filter: TraceFilter) -> Self {
        RingTracer {
            filter,
            sample: SampleState::default(),
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.max(1)),
            counts: [0; KIND_COUNT],
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total admitted events of `kind` over the whole run (including those
    /// that have since rotated out of the ring or were sampled away).
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total admitted events over all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.filter.admits(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        let kind = ev.kind();
        self.counts[kind.index()] += 1;
        if !self.sample.keep(&self.filter, kind) {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*ev);
    }
}

/// An unbounded collecting tracer: every admitted (and sampled-in) event in
/// order. The building block for per-run trace capture in ensembles — each
/// run records into its own `RecordingTracer`, and the seed-ordered reducer
/// serializes them, which is what makes ensemble traces thread-count
/// independent.
#[derive(Clone, Debug)]
pub struct RecordingTracer {
    filter: TraceFilter,
    sample: SampleState,
    events: Vec<TraceEvent>,
}

impl RecordingTracer {
    /// Record every event of every kind.
    pub fn new() -> Self {
        Self::with_filter(TraceFilter::all())
    }

    /// Record under an explicit filter.
    pub fn with_filter(filter: TraceFilter) -> Self {
        RecordingTracer {
            filter,
            sample: SampleState::default(),
            events: Vec::new(),
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the tracer, yielding its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Default for RecordingTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for RecordingTracer {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.filter.admits(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        if self.sample.keep(&self.filter, ev.kind()) {
            self.events.push(*ev);
        }
    }
}

/// A transactional tracer wrapper: events are buffered and reach the inner
/// tracer only on [`flush`](BufferTracer::flush). The engine uses this for
/// runs it may abandon (the class engine's split-budget guard): an
/// abandoned attempt is [`discard`](BufferTracer::discard)ed, so the inner
/// tracer's stream shows only the run that actually produced the outcome.
///
/// Filtering and sampling stay with the inner tracer: `wants` forwards, so
/// only events the inner tracer would accept are buffered, and the flush
/// replays them through its `record` in original order.
#[derive(Debug)]
pub struct BufferTracer<'a, T: Tracer + ?Sized> {
    inner: &'a mut T,
    events: Vec<TraceEvent>,
}

impl<'a, T: Tracer + ?Sized> BufferTracer<'a, T> {
    /// Buffer events destined for `inner`.
    pub fn new(inner: &'a mut T) -> Self {
        BufferTracer {
            inner,
            events: Vec::new(),
        }
    }

    /// Commit: replay every buffered event into the inner tracer.
    pub fn flush(self) {
        for ev in &self.events {
            self.inner.record(ev);
        }
    }

    /// Abort: drop the buffered events without touching the inner tracer.
    pub fn discard(self) {}

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<T: Tracer + ?Sized> Tracer for BufferTracer<'_, T> {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.inner.wants(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// A JSONL streaming tracer: one flat JSON object per admitted event,
/// written to `out` as it happens. An optional run index is prepended to
/// every line (`{"run":3,"ev":…}`) so multi-run streams stay
/// self-describing.
///
/// Write errors latch: the first error stops all further output and is
/// retrievable via [`io_error`](StreamTracer::io_error) — the engine run
/// itself is never failed by a full disk.
#[derive(Debug)]
pub struct StreamTracer<W: std::io::Write> {
    filter: TraceFilter,
    sample: SampleState,
    out: W,
    run: Option<u64>,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> StreamTracer<W> {
    /// Stream every kind, unsampled, to `out`.
    pub fn new(out: W) -> Self {
        Self::with_filter(out, TraceFilter::all())
    }

    /// Stream under an explicit filter.
    pub fn with_filter(out: W, filter: TraceFilter) -> Self {
        StreamTracer {
            filter,
            sample: SampleState::default(),
            out,
            run: None,
            lines: 0,
            error: None,
        }
    }

    /// Tag subsequent lines with a run index and reset the per-kind
    /// sampling counters (each run samples independently, so a stream is
    /// the concatenation of its runs' individual streams).
    pub fn set_run(&mut self, run: u64) {
        self.run = Some(run);
        self.sample = SampleState::default();
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first write error, if any occurred.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: std::io::Write> Tracer for StreamTracer<W> {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.error.is_none() && self.filter.admits(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() || !self.sample.keep(&self.filter, ev.kind()) {
            return;
        }
        let line = match self.run {
            Some(run) => format!("{{\"run\":{run},{}}}\n", ev.json_fields()),
            None => format!("{}\n", ev.to_json()),
        };
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Wake {
                slot: 3,
                stations: 2,
            },
            TraceEvent::Silence { slot: 4, slots: 10 },
            TraceEvent::Collision {
                slot: 14,
                contenders: 2,
            },
            TraceEvent::ModeSwitch {
                slot: 14,
                dense: true,
            },
            TraceEvent::Success {
                slot: 15,
                winner: StationId(7),
            },
            TraceEvent::RunEnd {
                slots: 13,
                first_success: Some(15),
            },
        ]
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(TraceKind::parse(k.name()), Some(*k));
        }
        assert_eq!(TraceKind::parse("nonsense"), None);
    }

    #[test]
    fn deterministic_kinds_are_the_channel_observables() {
        let det: Vec<TraceKind> = TraceKind::ALL
            .into_iter()
            .filter(|k| k.deterministic())
            .collect();
        assert_eq!(
            det,
            vec![
                TraceKind::Wake,
                TraceKind::Silence,
                TraceKind::Success,
                TraceKind::Collision,
                TraceKind::RunEnd,
                TraceKind::FaultErasure,
                TraceKind::FaultCapture,
                TraceKind::ChurnCrash,
                TraceKind::ChurnRewake,
            ]
        );
    }

    #[test]
    fn fault_and_churn_json_rendering() {
        assert_eq!(
            TraceEvent::FaultErasure {
                slot: 9,
                winner: StationId(4)
            }
            .to_json(),
            "{\"ev\":\"fault_erasure\",\"slot\":9,\"winner\":4}"
        );
        assert_eq!(
            TraceEvent::FaultCapture {
                slot: 10,
                winner: StationId(2),
                contenders: 3
            }
            .to_json(),
            "{\"ev\":\"fault_capture\",\"slot\":10,\"winner\":2,\"contenders\":3}"
        );
        assert_eq!(
            TraceEvent::ChurnCrash {
                slot: 11,
                id: StationId(5)
            }
            .to_json(),
            "{\"ev\":\"churn_crash\",\"slot\":11,\"id\":5}"
        );
        assert_eq!(
            TraceEvent::ChurnRewake {
                slot: 12,
                id: StationId(5)
            }
            .to_json(),
            "{\"ev\":\"churn_rewake\",\"slot\":12,\"id\":5}"
        );
    }

    #[test]
    fn json_rendering_is_flat_and_parsable_shape() {
        let ev = TraceEvent::Success {
            slot: 15,
            winner: StationId(7),
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"success\",\"slot\":15,\"winner\":7}"
        );
        let end = TraceEvent::RunEnd {
            slots: 20,
            first_success: None,
        };
        assert_eq!(
            end.to_json(),
            "{\"ev\":\"run_end\",\"slots\":20,\"first_success\":null}"
        );
    }

    #[test]
    fn filter_masks_and_strides() {
        let det = TraceFilter::deterministic();
        assert!(det.admits(TraceKind::Silence));
        assert!(!det.admits(TraceKind::ModeSwitch));
        let eng = TraceFilter::engine_only();
        assert!(!eng.admits(TraceKind::Silence));
        assert!(eng.admits(TraceKind::ModeSwitch));
        assert_eq!(TraceFilter::all().sample_every(0).stride(), 1);
    }

    #[test]
    fn ring_tracer_keeps_the_tail_and_counts_everything() {
        let mut ring = RingTracer::new(2);
        for ev in sample_events() {
            if ring.wants(ev.kind()) {
                ring.record(&ev);
            }
        }
        assert_eq!(ring.total(), 6);
        assert_eq!(ring.count(TraceKind::Silence), 1);
        assert_eq!(ring.len(), 2);
        let tail: Vec<TraceKind> = ring.events().map(|e| e.kind()).collect();
        assert_eq!(tail, vec![TraceKind::Success, TraceKind::RunEnd]);
    }

    #[test]
    fn sampling_is_a_strict_subsequence_per_kind() {
        let mut full = RecordingTracer::new();
        let mut sampled = RecordingTracer::with_filter(TraceFilter::all().sample_every(2));
        let events: Vec<TraceEvent> = (0..10)
            .map(|i| TraceEvent::Collision {
                slot: i,
                contenders: 2,
            })
            .chain((0..3).map(|i| TraceEvent::ModeSwitch {
                slot: i,
                dense: true,
            }))
            .collect();
        for ev in &events {
            full.record(ev);
            sampled.record(ev);
        }
        assert_eq!(full.events().len(), 13);
        // Every 2nd per kind: 5 collisions + 2 switches.
        assert_eq!(sampled.events().len(), 7);
        // Strict subsequence of the full stream.
        let mut it = full.events().iter();
        for s in sampled.events() {
            assert!(it.any(|f| f == s), "sampled event not in order in full");
        }
    }

    #[test]
    fn stream_tracer_writes_jsonl_with_run_tags() {
        let mut st = StreamTracer::new(Vec::new());
        st.set_run(3);
        st.record(&TraceEvent::Wake {
            slot: 0,
            stations: 4,
        });
        assert_eq!(st.lines(), 1);
        let bytes = st.into_inner();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "{\"run\":3,\"ev\":\"wake\",\"slot\":0,\"stations\":4}\n"
        );
    }

    #[test]
    fn buffer_tracer_flushes_or_discards() {
        let mut rec = RecordingTracer::new();
        let mut buf = BufferTracer::new(&mut rec);
        for ev in sample_events() {
            if buf.wants(ev.kind()) {
                buf.record(&ev);
            }
        }
        assert_eq!(buf.len(), 6);
        assert!(!buf.is_empty());
        buf.discard();
        assert!(rec.events().is_empty(), "discarded events leaked through");

        let mut buf = BufferTracer::new(&mut rec);
        for ev in sample_events() {
            if buf.wants(ev.kind()) {
                buf.record(&ev);
            }
        }
        buf.flush();
        assert_eq!(rec.events(), &sample_events()[..]);
    }

    #[test]
    fn buffer_tracer_forwards_inner_filter() {
        let mut det = RecordingTracer::with_filter(TraceFilter::deterministic());
        let buf = BufferTracer::new(&mut det);
        assert!(buf.wants(TraceKind::Silence));
        assert!(!buf.wants(TraceKind::ModeSwitch));
    }

    #[test]
    fn noop_tracer_wants_nothing() {
        let noop = NoopTracer;
        for k in TraceKind::ALL {
            assert!(!noop.wants(k));
        }
    }
}
