//! # mac-sim — a slot-synchronous multiple access channel simulator
//!
//! This crate implements, from scratch, the communication model that underlies
//! De Marco & Kowalski, *"Contention Resolution in a Non-Synchronized Multiple
//! Access Channel"* (IPDPS 2013) and the classical multiple-access-channel
//! literature (Aloha, Ethernet, packet radio):
//!
//! * time is divided into **slots**, synchronously visible to all stations
//!   (the *globally synchronous* model: every station can read the global
//!   round number);
//! * `n` stations with unique IDs from `{0, …, n-1}` share one channel;
//! * in each slot a station either **transmits** or **listens**;
//! * a slot is **successful** iff *exactly one* station transmits — then every
//!   station receives the message;
//! * if two or more stations transmit, the transmissions **collide** and are
//!   all lost. Under the paper's feedback model (no collision detection) a
//!   collision is indistinguishable from silence; an optional
//!   collision-detection model is also provided for baselines and ablations;
//! * stations **wake up spontaneously and independently** at arbitrary slots
//!   (the wake-up pattern is chosen by an adversary); at most `k ≤ n`
//!   stations ever wake.
//!
//! The **wake-up / contention-resolution problem** is solved at the first
//! slot `t ≥ s` (where `s` is the earliest wake-up) in which exactly one
//! awake station transmits. The cost of a run is the **latency** `t − s`.
//!
//! ## Crate layout
//!
//! * [`ids`] — [`StationId`] and [`Slot`] newtypes/aliases.
//! * [`channel`] — channel resolution and the two feedback models.
//! * [`station`] — the [`Station`] behaviour trait and the [`Protocol`]
//!   factory trait, plus simple adapter stations.
//! * [`engine`] — the simulator main loop ([`Simulator`]), configuration and
//!   [`Outcome`]s.
//! * [`pattern`] — wake-up pattern type and adversarial generators.
//! * [`adversary`] — a schedule-agnostic greedy *spoiler* that searches for
//!   bad wake-up patterns against a concrete protocol.
//! * [`trace`] — per-slot transcripts and model-invariant checkers.
//! * [`tracer`] — structured engine event tracing ([`Tracer`],
//!   [`TraceEvent`]): slot outcomes, mode switches, class splits, streamed
//!   or ring-buffered, compiled away by default.
//! * [`metrics`] — latency / energy (transmission-count) accounting.
//! * [`rng`] — small deterministic mixing utilities for reproducible seeding.
//!
//! ## Quick example
//!
//! ```
//! use mac_sim::prelude::*;
//!
//! /// A protocol where station `id` transmits iff `t % n == id` (round robin).
//! struct RoundRobin { n: u32 }
//! struct RoundRobinStation { id: StationId, n: u32 }
//!
//! impl Station for RoundRobinStation {
//!     fn wake(&mut self, _sigma: Slot) {}
//!     fn act(&mut self, t: Slot) -> Action {
//!         if t % self.n as Slot == self.id.0 as Slot { Action::Transmit } else { Action::Listen }
//!     }
//! }
//! impl Protocol for RoundRobin {
//!     fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
//!         Box::new(RoundRobinStation { id, n: self.n })
//!     }
//!     fn name(&self) -> String { "round-robin".into() }
//! }
//!
//! let cfg = SimConfig::new(8).with_max_slots(100);
//! let pattern = WakePattern::simultaneous(&[StationId(3), StationId(5)], 10).unwrap();
//! let outcome = Simulator::new(cfg).run(&RoundRobin { n: 8 }, &pattern, 0xDEADBEEF).unwrap();
//! assert_eq!(outcome.s, 10);
//! assert!(outcome.first_success.is_some());
//! // station 3's turn comes at slot 11 (11 % 8 == 3), alone on the channel:
//! assert_eq!(outcome.first_success.unwrap(), 11);
//! assert_eq!(outcome.latency(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod channel;
pub mod engine;
pub mod ids;
pub mod metrics;
pub mod pattern;
pub mod population;
pub mod rng;
pub mod station;
pub mod trace;
pub mod tracer;

pub use adversary::{SpoiledPattern, SpoilerSearch};
pub use channel::{ChannelFault, ChannelModel, FaultCounts, Feedback, FeedbackModel, SlotOutcome};
pub use engine::{EngineMode, Outcome, PolicyParams, SimConfig, SimError, Simulator};
pub use ids::{Slot, StationId};
pub use pattern::{ChurnEntry, ChurnError, ChurnScript, RandomChurn, WakeBlock, WakePattern};
pub use population::{
    ClassPopulation, ClassStation, ConcretePopulation, DeadClass, MemberRemoval, Members,
    Population, PopulationMode, SingletonClass, TxTally,
};
pub use station::{Action, Protocol, Station, TxHint, TxWord, Until};
pub use trace::Transcript;
pub use tracer::{
    BufferTracer, NoopTracer, RecordingTracer, RingTracer, StreamTracer, TraceEvent, TraceFilter,
    TraceKind, Tracer,
};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::adversary::{SpoiledPattern, SpoilerSearch};
    pub use crate::channel::{
        ChannelFault, ChannelModel, FaultCounts, Feedback, FeedbackModel, SlotOutcome,
    };
    pub use crate::engine::{EngineMode, Outcome, PolicyParams, SimConfig, SimError, Simulator};
    pub use crate::ids::{Slot, StationId};
    pub use crate::metrics::{EnergyStats, LatencySample, OutcomeDigest};
    pub use crate::pattern::{
        ChurnEntry, ChurnError, ChurnScript, IdChoice, RandomChurn, WakeBlock, WakePattern,
    };
    pub use crate::population::{
        ClassPopulation, ClassStation, ConcretePopulation, DeadClass, MemberRemoval, Members,
        Population, PopulationMode, SingletonClass, TxTally,
    };
    pub use crate::station::{Action, Protocol, Station, TxHint, TxWord, Until};
    pub use crate::trace::Transcript;
    pub use crate::tracer::{
        BufferTracer, NoopTracer, RecordingTracer, RingTracer, StreamTracer, TraceEvent,
        TraceFilter, TraceKind, Tracer,
    };
}
