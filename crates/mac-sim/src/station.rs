//! Station behaviour ([`Station`]) and protocol factories ([`Protocol`]).
//!
//! A *protocol* in the sense of the paper is "a collection of n transmission
//! schedules, one for each station" — here a [`Protocol`] is a factory that
//! instantiates the per-station behaviour for any ID. The engine creates a
//! [`Station`] lazily when its wake-up slot arrives and then drives it slot
//! by slot.
//!
//! All of the paper's deterministic algorithms are *oblivious*: the decision
//! to transmit at global slot `t` depends only on `(id, n, σ, t)` and never on
//! channel feedback. Such protocols ignore [`Station::feedback`]. Randomized
//! protocols (§6) additionally consume the per-station seed handed to
//! [`Protocol::station`].

use crate::channel::Feedback;
use crate::ids::{Slot, StationId};
use crate::population::{ClassStation, Members};

/// The *validity scope* of a [`TxHint`] — until when the promise holds.
///
/// PR 1's hints were unconditional ("valid forever"), which locked every
/// feedback-reactive protocol out of the sparse engine. Epoch-scoped hints
/// fix that: a station states *how long* its answer can be trusted, and the
/// engine re-queries exactly the stations whose scope an event invalidated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Until {
    /// Unconditional: the hint holds for the rest of the run regardless of
    /// channel events. Only purely oblivious schedules (a function of
    /// `(id, σ, t)` and protocol parameters) may use this scope.
    Forever,
    /// Valid until the next **successful** slot. After any success at slot
    /// `t' ≥ after`, the hint is void and the engine re-queries the station
    /// with `after = t' + 1` — having first delivered the success feedback
    /// ([`Feedback::Heard`](crate::channel::Feedback)), so the
    /// station answers from its post-success state. This is the scope for
    /// success-reactive protocols (retirement à la Komlós–Greenberg):
    /// between successes their schedule is oblivious.
    NextSuccess,
    /// Valid for slots in `[after, t)` only; the engine re-queries the
    /// station at slot `t` (a pure "call me back" — the boundary itself
    /// involves no feedback). The claim over `[after, t)` is
    /// **unconditional**: like [`Until::Forever`], it must hold regardless
    /// of any feedback (including successes) delivered meanwhile — a
    /// station that reschedules on success feedback must use
    /// [`Until::NextSuccess`] instead. Use `Slot` to bound
    /// hint-computation work: a station that has proven silence over a
    /// horizon but not located its next transmission can answer
    /// [`TxHint::Never(Until::Slot(t))`](TxHint::Never) instead of falling
    /// back to [`TxHint::Dense`]. Must satisfy `t > after`.
    Slot(Slot),
}

/// A station's answer to "when will you transmit next?" — the contract that
/// lets the engine skip provably silent slots (the sparse engine path).
///
/// Every concrete hint carries an [`Until`] scope saying how long the
/// promise holds. See [`Station::next_transmission`] for the exact
/// obligations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxHint {
    /// No hint: poll me every slot. Randomized stations (whose RNG stream
    /// advances per [`Station::act`] call) and stations reacting to
    /// feedback other than successes must return this.
    Dense,
    /// The station's next transmission is at exactly this slot; it is
    /// guaranteed silent at every slot in `[after, slot)` — as long as the
    /// scope holds. (`At(slot, Until::Slot(t))` with `slot ≥ t` promises
    /// nothing about `slot` itself and degenerates to
    /// `Never(Until::Slot(t))`.)
    At(Slot, Until),
    /// The station will not transmit at any slot `≥ after` while the scope
    /// holds (finished schedule, never participates, retired after its own
    /// success, or — with [`Until::Slot`] — silent over a proven horizon).
    Never(Until),
}

impl TxHint {
    /// An unconditional "next transmission at `slot`" —
    /// `TxHint::At(slot, Until::Forever)`.
    #[inline]
    pub fn at(slot: Slot) -> Self {
        TxHint::At(slot, Until::Forever)
    }

    /// An unconditional "never again" — `TxHint::Never(Until::Forever)`.
    #[inline]
    pub fn never() -> Self {
        TxHint::Never(Until::Forever)
    }
}

/// One 64-slot tile of planned transmissions for a single station — the
/// batch counterpart of [`TxHint`], consumed by the engine's word-level
/// (bit-parallel) slot kernel.
///
/// Bit `j` of `bits` set means "I transmit at slot `base + j`" for the tile
/// base passed to [`Station::fill_tx_word`]; a clear bit means "I listen".
/// The claim is scoped by `until` with exactly the [`TxHint`] obligations:
///
/// * [`Until::Forever`] — the word is an oblivious fact; every bit holds
///   unconditionally.
/// * [`Until::NextSuccess`] — every bit holds until the next successful
///   slot; after a success the engine discards the unconsumed remainder of
///   the tile and asks again.
/// * [`Until::Slot(t)`](Until::Slot) — only bits for slots `< t` are
///   claimed (and hold unconditionally over `[base, t)`); the engine
///   ignores bits at positions `≥ t - base` and re-queries at `t`. Must
///   satisfy `t > base`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxWord {
    /// Transmit decisions for slots `base + 0 … base + 63`, LSB first.
    pub bits: u64,
    /// How long the decisions can be trusted (see [`TxHint`] scopes).
    pub until: Until,
}

impl TxWord {
    /// An unconditional word — `until: Until::Forever`.
    #[inline]
    pub fn forever(bits: u64) -> Self {
        TxWord {
            bits,
            until: Until::Forever,
        }
    }
}

/// A station's decision for one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit a message in this slot.
    Transmit,
    /// Listen to the channel in this slot.
    Listen,
}

impl Action {
    /// Convenience: `true` ↦ [`Action::Transmit`].
    #[inline]
    pub fn from_bool(transmit: bool) -> Self {
        if transmit {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    /// `true` iff this is [`Action::Transmit`].
    #[inline]
    pub fn is_transmit(self) -> bool {
        matches!(self, Action::Transmit)
    }
}

/// The behaviour of one station, driven by the engine.
///
/// Lifecycle (all slots are global round numbers):
///
/// 1. [`wake`](Station::wake) is called exactly once, at the station's
///    spontaneous wake-up slot `σ`.
/// 2. For every slot `t ≥ σ` until the run ends, [`act`](Station::act) is
///    called exactly once; returning [`Action::Transmit`] puts the station on
///    the channel for that slot.
/// 3. After the channel resolves, [`feedback`](Station::feedback) delivers
///    what this station perceived (model-dependent).
pub trait Station {
    /// The station spontaneously wakes up at global slot `sigma`.
    fn wake(&mut self, sigma: Slot);

    /// Decide the action for global slot `t` (`t ≥ σ`; called exactly once
    /// per slot, in increasing slot order).
    fn act(&mut self, t: Slot) -> Action;

    /// Channel feedback for slot `t`, as perceived under the configured
    /// feedback model. Default: ignore (oblivious protocols).
    fn feedback(&mut self, t: Slot, fb: Feedback) {
        let _ = (t, fb);
    }

    /// When will this station transmit next, looking from slot `after`
    /// (inclusive)? The engine uses the answer to *skip* slots in which no
    /// station transmits, turning per-slot polling into per-event work.
    ///
    /// Returning anything other than [`TxHint::Dense`] is a **promise**,
    /// scoped by the hint's [`Until`]:
    ///
    /// * [`TxHint::At(t, u)`](TxHint::At) — while `u` holds, `act` would
    ///   return [`Action::Transmit`] at slot `t` and [`Action::Listen`] at
    ///   every slot in `[after, t)`;
    /// * [`TxHint::Never(u)`](TxHint::Never) — while `u` holds, `act` would
    ///   return [`Action::Listen`] at every slot `≥ after`.
    ///
    /// **What invalidates a hint, and who must re-answer:**
    ///
    /// | scope | invalidated by | engine's follow-up |
    /// |-------|----------------|--------------------|
    /// | [`Until::Forever`] | nothing | re-query only after polling you |
    /// | [`Until::NextSuccess`] | any successful slot `t'` | success feedback is delivered, then you are re-queried at `t' + 1` |
    /// | [`Until::Slot(t)`](Until::Slot) | the clock reaching `t` | you are re-queried at `t` |
    ///
    /// Obligations taken on by answering with a scope:
    ///
    /// * [`Until::Forever`] — the schedule is *oblivious*: a pure function
    ///   of `(id, σ, t)` and protocol parameters, insensitive to feedback.
    /// * [`Until::NextSuccess`] — the schedule may change **only** in
    ///   response to success feedback
    ///   ([`Feedback::Heard`](crate::channel::Feedback)); silence and
    ///   noise feedback must leave future actions unchanged, because the
    ///   sparse engine delivers non-success feedback only to stations it
    ///   polled. Between successes the schedule must be oblivious.
    /// * [`Until::Slot(t)`](Until::Slot) — the silence claim covers exactly
    ///   `[after, t)` and is **unconditional over that window**: feedback
    ///   delivered meanwhile (success broadcasts included) must not change
    ///   the station's actions before `t` — success-reactive stations must
    ///   use [`Until::NextSuccess`]; `t > after` is required (a violation
    ///   forces the dense
    ///   path — correctness first).
    ///
    /// All hint-giving stations must tolerate `act` **not** being called on
    /// slots where they listen — the sparse engine only polls a station at
    /// its hinted slots — and must tolerate arbitrary forward jumps of `t`
    /// across `act` calls (stateful row/epoch cursors are fine if they
    /// re-synchronize from `t`). Queries are non-decreasing in `after`, so
    /// `&mut self` may cache scan cursors. If **any** awake station answers
    /// [`TxHint::Dense`], the whole run falls back to dense per-slot
    /// polling.
    ///
    /// The default is [`TxHint::Dense`], which preserves exact historical
    /// behaviour for every existing station.
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let _ = after;
        TxHint::Dense
    }

    /// Plan one tile `[base, base + width)` at once (`1 ≤ width ≤ 64`): bit
    /// `j` of the returned word set iff `act(base + j)` would transmit — the
    /// batch counterpart of
    /// [`next_transmission`](Station::next_transmission), used by the
    /// engine's word-level slot kernel.
    ///
    /// The engine consumes only bits `j < width`; positions `≥ width` may be
    /// filled or left clear, whichever is cheaper. `width` is a work bound,
    /// not a semantic one — the engine narrows it when a run is young (the
    /// tile ramp) or an arrival/window boundary is near, so implementations
    /// should cap their per-slot scan at `base + width` rather than always
    /// paying for a full word. [`TxWord::until`] horizons are still absolute
    /// slots and may lie beyond the tile.
    ///
    /// Returning `Some` is a promise scoped by [`TxWord::until`] with the
    /// same obligations as the matching [`TxHint`] scope (see the table
    /// above). Additionally, a station that answers here must tolerate
    /// [`act`](Station::act) **never** being called for slots the word
    /// covers — the kernel derives transmissions from the bits and only
    /// polls stations through the scalar paths. Feedback delivery is
    /// unchanged: the kernel delivers success feedback exactly as the
    /// sparse engine does, and [`Until::NextSuccess`] words are re-queried
    /// after it.
    ///
    /// The default `None` routes the station through the kernel's generic
    /// fill, which assembles the word from `next_transmission` hints — so
    /// every hint-giving station runs under the kernel without implementing
    /// this, and protocol-specific implementations are purely an
    /// optimization (one schedule lookup per tile instead of one hint query
    /// per event).
    fn fill_tx_word(&mut self, base: Slot, width: u32) -> Option<TxWord> {
        let _ = (base, width);
        None
    }
}

/// A factory for per-station behaviour: "a collection of `n` transmission
/// schedules, one for each station".
///
/// `seed` is a per-run, per-station deterministic seed (derived by the engine
/// from the run seed and the station ID); deterministic protocols ignore it.
pub trait Protocol {
    /// Instantiate the behaviour of station `id`.
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station>;

    /// Human-readable protocol name (used in tables and transcripts).
    fn name(&self) -> String;

    /// Instantiate one class-aggregated unit covering the whole wake batch
    /// `members` (stations waking at the same slot), or `None` if this
    /// protocol has no class-aggregated form — the engine then falls back
    /// to one [`SingletonClass`](crate::population::SingletonClass) per
    /// station, with identical outcomes.
    ///
    /// Implementations must make the returned unit behave exactly like the
    /// per-member [`station`](Protocol::station)s it stands in for (see
    /// [`ClassStation`]); `run_seed` is the run seed (classes of
    /// deterministic protocols ignore it).
    fn class_station(&self, members: &Members, run_seed: u64) -> Option<Box<dyn ClassStation>> {
        let _ = (members, run_seed);
        None
    }
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        (**self).station(id, seed)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn class_station(&self, members: &Members, run_seed: u64) -> Option<Box<dyn ClassStation>> {
        (**self).class_station(members, run_seed)
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        (**self).station(id, seed)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn class_station(&self, members: &Members, run_seed: u64) -> Option<Box<dyn ClassStation>> {
        (**self).class_station(members, run_seed)
    }
}

// ---------------------------------------------------------------------------
// Adapter stations (useful for tests, baselines and composition).
// ---------------------------------------------------------------------------

/// A station that transmits in every slot once awake.
///
/// With `k = 1` this is the optimal protocol; with `k ≥ 2` simultaneous
/// wakers it never succeeds — tests use it to pin collision semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTransmit;

impl Station for AlwaysTransmit {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, _t: Slot) -> Action {
        Action::Transmit
    }
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        TxHint::at(after)
    }
}

/// A station that never transmits (pure listener).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverTransmit;

impl Station for NeverTransmit {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, _t: Slot) -> Action {
        Action::Listen
    }
    fn next_transmission(&mut self, _after: Slot) -> TxHint {
        TxHint::never()
    }
}

/// An oblivious station driven by a predicate on `(σ, t)`.
///
/// This is the bridge between *transmission schedules* (pure functions, the
/// object the paper's combinatorics talks about) and engine-driven stations.
pub struct ObliviousStation<F: FnMut(Slot, Slot) -> bool> {
    sigma: Slot,
    decide: F,
}

impl<F: FnMut(Slot, Slot) -> bool> ObliviousStation<F> {
    /// Create a station whose action at global slot `t` is
    /// `decide(sigma, t)`.
    pub fn new(decide: F) -> Self {
        ObliviousStation { sigma: 0, decide }
    }
}

impl<F: FnMut(Slot, Slot) -> bool> Station for ObliviousStation<F> {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }
    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool((self.decide)(self.sigma, t))
    }
}

/// A protocol built from a plain function `f(id, n_seed, σ, t) -> transmit?`.
///
/// Useful in tests and for wrapping schedule objects without a bespoke type.
pub struct FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync,
{
    name: String,
    f: std::sync::Arc<F>,
}

impl<F> FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send + 'static,
{
    /// Wrap `f(id, seed, sigma, t)` as a protocol named `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProtocol {
            name: name.into(),
            f: std::sync::Arc::new(f),
        }
    }
}

impl<F> Protocol for FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send + 'static,
{
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        let f = std::sync::Arc::clone(&self.f);
        Box::new(ObliviousStation::new(move |sigma, t| f(id, seed, sigma, t)))
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_from_bool() {
        assert_eq!(Action::from_bool(true), Action::Transmit);
        assert_eq!(Action::from_bool(false), Action::Listen);
        assert!(Action::Transmit.is_transmit());
        assert!(!Action::Listen.is_transmit());
    }

    #[test]
    fn always_and_never() {
        let mut a = AlwaysTransmit;
        let mut n = NeverTransmit;
        a.wake(5);
        n.wake(5);
        for t in 5..10 {
            assert_eq!(a.act(t), Action::Transmit);
            assert_eq!(n.act(t), Action::Listen);
        }
    }

    #[test]
    fn oblivious_station_sees_its_wake_slot() {
        // Transmit exactly `3` slots after waking.
        let mut s = ObliviousStation::new(|sigma, t| t == sigma + 3);
        s.wake(10);
        assert_eq!(s.act(10), Action::Listen);
        assert_eq!(s.act(12), Action::Listen);
        assert_eq!(s.act(13), Action::Transmit);
        assert_eq!(s.act(14), Action::Listen);
    }

    #[test]
    fn fn_protocol_constructs_station_per_id() {
        let p = FnProtocol::new("diag", |id: StationId, _seed, _sigma, t: Slot| {
            t % 4 == id.0 as u64
        });
        assert_eq!(p.name(), "diag");
        let mut s2 = p.station(StationId(2), 0);
        s2.wake(0);
        assert_eq!(s2.act(0), Action::Listen);
        assert_eq!(s2.act(2), Action::Transmit);
        assert_eq!(s2.act(6), Action::Transmit);
        assert_eq!(s2.act(7), Action::Listen);
    }

    #[test]
    fn protocol_is_usable_through_references_and_boxes() {
        fn takes_protocol(p: impl Protocol) -> String {
            p.name()
        }
        let p = FnProtocol::new("x", |_, _, _, _| false);
        assert_eq!(takes_protocol(&p), "x");
        let b: Box<dyn Protocol> = Box::new(p);
        assert_eq!(takes_protocol(&b), "x");
        assert_eq!(takes_protocol(b), "x");
    }
}
