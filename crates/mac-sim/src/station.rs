//! Station behaviour ([`Station`]) and protocol factories ([`Protocol`]).
//!
//! A *protocol* in the sense of the paper is "a collection of n transmission
//! schedules, one for each station" — here a [`Protocol`] is a factory that
//! instantiates the per-station behaviour for any ID. The engine creates a
//! [`Station`] lazily when its wake-up slot arrives and then drives it slot
//! by slot.
//!
//! All of the paper's deterministic algorithms are *oblivious*: the decision
//! to transmit at global slot `t` depends only on `(id, n, σ, t)` and never on
//! channel feedback. Such protocols ignore [`Station::feedback`]. Randomized
//! protocols (§6) additionally consume the per-station seed handed to
//! [`Protocol::station`].

use crate::channel::Feedback;
use crate::ids::{Slot, StationId};

/// A station's answer to "when will you transmit next?" — the contract that
/// lets the engine skip provably silent slots (the sparse engine path).
///
/// See [`Station::next_transmission`] for the exact obligations a station
/// takes on by returning [`TxHint::At`] or [`TxHint::Never`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxHint {
    /// No hint: poll me every slot (the default). Feedback-dependent
    /// (adaptive) and randomized stations must return this.
    Dense,
    /// The station's next transmission is at exactly this slot; it is
    /// guaranteed silent at every slot in `[after, slot)`.
    At(Slot),
    /// The station will never transmit at any slot `≥ after` (e.g. it has
    /// finished its schedule, or it never participates).
    Never,
}

/// A station's decision for one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit a message in this slot.
    Transmit,
    /// Listen to the channel in this slot.
    Listen,
}

impl Action {
    /// Convenience: `true` ↦ [`Action::Transmit`].
    #[inline]
    pub fn from_bool(transmit: bool) -> Self {
        if transmit {
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    /// `true` iff this is [`Action::Transmit`].
    #[inline]
    pub fn is_transmit(self) -> bool {
        matches!(self, Action::Transmit)
    }
}

/// The behaviour of one station, driven by the engine.
///
/// Lifecycle (all slots are global round numbers):
///
/// 1. [`wake`](Station::wake) is called exactly once, at the station's
///    spontaneous wake-up slot `σ`.
/// 2. For every slot `t ≥ σ` until the run ends, [`act`](Station::act) is
///    called exactly once; returning [`Action::Transmit`] puts the station on
///    the channel for that slot.
/// 3. After the channel resolves, [`feedback`](Station::feedback) delivers
///    what this station perceived (model-dependent).
pub trait Station {
    /// The station spontaneously wakes up at global slot `sigma`.
    fn wake(&mut self, sigma: Slot);

    /// Decide the action for global slot `t` (`t ≥ σ`; called exactly once
    /// per slot, in increasing slot order).
    fn act(&mut self, t: Slot) -> Action;

    /// Channel feedback for slot `t`, as perceived under the configured
    /// feedback model. Default: ignore (oblivious protocols).
    fn feedback(&mut self, t: Slot, fb: Feedback) {
        let _ = (t, fb);
    }

    /// When will this station transmit next, looking from slot `after`
    /// (inclusive)? The engine uses the answer to *skip* slots in which no
    /// station transmits, turning per-slot polling into per-event work.
    ///
    /// Returning anything other than [`TxHint::Dense`] is a **promise**:
    ///
    /// * [`TxHint::At(t)`](TxHint::At) — `act` would return
    ///   [`Action::Transmit`] at slot `t` and [`Action::Listen`] at every
    ///   slot in `[after, t)`, **regardless of channel feedback** in between;
    /// * [`TxHint::Never`] — `act` would return [`Action::Listen`] at every
    ///   slot `≥ after`, regardless of feedback.
    ///
    /// Stations that give hints must therefore be *oblivious* (their schedule
    /// is a pure function of `(id, σ, t)` and protocol parameters) and must
    /// tolerate `act` **not** being called on slots where they listen — the
    /// sparse engine only polls a station at its hinted slots. Stateful
    /// schedule walks (row/epoch cursors) remain fine as long as `act(t)`
    /// handles arbitrary forward jumps of `t`.
    ///
    /// The engine re-queries the hint after every polled slot, with
    /// `after = t + 1`, so `&mut self` may be used to cache scan cursors.
    /// If **any** awake station answers [`TxHint::Dense`], the whole run
    /// falls back to dense per-slot polling (correctness first).
    ///
    /// The default is [`TxHint::Dense`], which preserves exact historical
    /// behaviour for every existing station.
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let _ = after;
        TxHint::Dense
    }
}

/// A factory for per-station behaviour: "a collection of `n` transmission
/// schedules, one for each station".
///
/// `seed` is a per-run, per-station deterministic seed (derived by the engine
/// from the run seed and the station ID); deterministic protocols ignore it.
pub trait Protocol {
    /// Instantiate the behaviour of station `id`.
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station>;

    /// Human-readable protocol name (used in tables and transcripts).
    fn name(&self) -> String;
}

impl<P: Protocol + ?Sized> Protocol for &P {
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        (**self).station(id, seed)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        (**self).station(id, seed)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

// ---------------------------------------------------------------------------
// Adapter stations (useful for tests, baselines and composition).
// ---------------------------------------------------------------------------

/// A station that transmits in every slot once awake.
///
/// With `k = 1` this is the optimal protocol; with `k ≥ 2` simultaneous
/// wakers it never succeeds — tests use it to pin collision semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTransmit;

impl Station for AlwaysTransmit {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, _t: Slot) -> Action {
        Action::Transmit
    }
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        TxHint::At(after)
    }
}

/// A station that never transmits (pure listener).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverTransmit;

impl Station for NeverTransmit {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, _t: Slot) -> Action {
        Action::Listen
    }
    fn next_transmission(&mut self, _after: Slot) -> TxHint {
        TxHint::Never
    }
}

/// An oblivious station driven by a predicate on `(σ, t)`.
///
/// This is the bridge between *transmission schedules* (pure functions, the
/// object the paper's combinatorics talks about) and engine-driven stations.
pub struct ObliviousStation<F: FnMut(Slot, Slot) -> bool> {
    sigma: Slot,
    decide: F,
}

impl<F: FnMut(Slot, Slot) -> bool> ObliviousStation<F> {
    /// Create a station whose action at global slot `t` is
    /// `decide(sigma, t)`.
    pub fn new(decide: F) -> Self {
        ObliviousStation { sigma: 0, decide }
    }
}

impl<F: FnMut(Slot, Slot) -> bool> Station for ObliviousStation<F> {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }
    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool((self.decide)(self.sigma, t))
    }
}

/// A protocol built from a plain function `f(id, n_seed, σ, t) -> transmit?`.
///
/// Useful in tests and for wrapping schedule objects without a bespoke type.
pub struct FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync,
{
    name: String,
    f: std::sync::Arc<F>,
}

impl<F> FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send + 'static,
{
    /// Wrap `f(id, seed, sigma, t)` as a protocol named `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProtocol {
            name: name.into(),
            f: std::sync::Arc::new(f),
        }
    }
}

impl<F> Protocol for FnProtocol<F>
where
    F: Fn(StationId, u64, Slot, Slot) -> bool + Sync + Send + 'static,
{
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        let f = std::sync::Arc::clone(&self.f);
        Box::new(ObliviousStation::new(move |sigma, t| f(id, seed, sigma, t)))
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_from_bool() {
        assert_eq!(Action::from_bool(true), Action::Transmit);
        assert_eq!(Action::from_bool(false), Action::Listen);
        assert!(Action::Transmit.is_transmit());
        assert!(!Action::Listen.is_transmit());
    }

    #[test]
    fn always_and_never() {
        let mut a = AlwaysTransmit;
        let mut n = NeverTransmit;
        a.wake(5);
        n.wake(5);
        for t in 5..10 {
            assert_eq!(a.act(t), Action::Transmit);
            assert_eq!(n.act(t), Action::Listen);
        }
    }

    #[test]
    fn oblivious_station_sees_its_wake_slot() {
        // Transmit exactly `3` slots after waking.
        let mut s = ObliviousStation::new(|sigma, t| t == sigma + 3);
        s.wake(10);
        assert_eq!(s.act(10), Action::Listen);
        assert_eq!(s.act(12), Action::Listen);
        assert_eq!(s.act(13), Action::Transmit);
        assert_eq!(s.act(14), Action::Listen);
    }

    #[test]
    fn fn_protocol_constructs_station_per_id() {
        let p = FnProtocol::new("diag", |id: StationId, _seed, _sigma, t: Slot| {
            t % 4 == id.0 as u64
        });
        assert_eq!(p.name(), "diag");
        let mut s2 = p.station(StationId(2), 0);
        s2.wake(0);
        assert_eq!(s2.act(0), Action::Listen);
        assert_eq!(s2.act(2), Action::Transmit);
        assert_eq!(s2.act(6), Action::Transmit);
        assert_eq!(s2.act(7), Action::Listen);
    }

    #[test]
    fn protocol_is_usable_through_references_and_boxes() {
        fn takes_protocol(p: impl Protocol) -> String {
            p.name()
        }
        let p = FnProtocol::new("x", |_, _, _, _| false);
        assert_eq!(takes_protocol(&p), "x");
        let b: Box<dyn Protocol> = Box::new(p);
        assert_eq!(takes_protocol(&b), "x");
        assert_eq!(takes_protocol(b), "x");
    }
}
