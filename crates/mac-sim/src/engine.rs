//! The simulator: drives stations and resolves the channel, skipping
//! provably silent slots where the protocol allows it.
//!
//! [`Simulator::run`] executes one wake-up pattern against one protocol:
//!
//! 1. stations are instantiated lazily at their wake-up slots;
//! 2. the engine picks between two execution paths:
//!    * **sparse** (the default whenever every awake station answers
//!      [`Station::next_transmission`] with a concrete hint): a min-heap of
//!      per-station due slots — hinted transmissions and hint-scope
//!      boundaries — advances time directly from event to event in
//!      `O(log k)` per event, accounting the skipped gap as silent slots
//!      without polling anyone. Hints are **epoch-scoped**
//!      ([`Until`]): each re-query bumps the
//!      station's hint epoch (stale heap entries are discarded lazily), and
//!      an event re-queries *only* the stations it invalidated — the
//!      polled stations, plus, after a successful slot, every station
//!      holding an [`Until::NextSuccess`](crate::station::Until)-scoped
//!      hint (which first receives the success feedback). This is what lets
//!      feedback-reactive protocols (retirement under
//!      [`StopRule::AllResolved`]) run sparse;
//!    * **dense** (any station answers [`TxHint::Dense`], or
//!      [`SimConfig::engine`] forces it): every awake station is polled
//!      ([`Station::act`]) every slot — the exact historical semantics;
//!
//!    [`EngineMode::Auto`] is moreover **adaptive**: it tracks the *skip
//!    yield* of the sparse path online (slots skipped per unit of heap and
//!    hint work over a sliding cost window) and, when the heap stops paying
//!    for itself — burst-shaped stretches where some station is due every
//!    slot — drops into tight per-slot *dense stepping* for a bounded burst
//!    window, re-probing sparsity at window expiry and at success events
//!    (with exponential backoff while the probes keep failing). Bursts thus
//!    run at dense speed while gaps keep the full sparse speedup.
//!
//!    All paths produce **identical** [`Outcome`]s and transcripts; only
//!    the work counters ([`Outcome::polls`], [`Outcome::skipped_slots`],
//!    [`Outcome::dense_steps`], [`Outcome::mode_switches`]) reveal which
//!    path — and which adaptive schedule — ran;
//! 3. each simulated slot, the channel resolves ([`SlotOutcome::resolve`])
//!    and feedback is delivered under the configured [`FeedbackModel`];
//! 4. the run ends at the **first successful slot** (the wake-up problem is
//!    solved — "once one of the active stations manages to send its message
//!    successfully on the channel, the message is heard by all other
//!    stations") or when `max_slots` slots have elapsed since `s`.
//!
//! Latency is reported as `t − s`, matching the paper's cost measure: "the
//! number of time slots between the first spontaneous wakeup and the first
//! successful transmission".

use crate::channel::{
    ChannelFault, ChannelModel, FaultCounts, Feedback, FeedbackModel, SlotOutcome,
};
use crate::ids::{Slot, StationId};
use crate::pattern::{ChurnScript, WakePattern};
use crate::population::{
    ClassPopulation, DeadClass, MemberRemoval, Members, Population, PopulationMode, TxTally,
};
use crate::rng::{derive_seed, FAULT_STREAM, REWAKE_STREAM};
use crate::station::{NeverTransmit, Protocol, Station, TxHint, Until};
use crate::trace::{SlotRecord, Transcript};
use crate::tracer::{BufferTracer, NoopTracer, TraceEvent, TraceKind, Tracer};
use selectors::transpose64;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// When the engine ends a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StopRule {
    /// Stop at the first successful slot — the wake-up problem (default).
    #[default]
    FirstSuccess,
    /// Keep running until **every station of the pattern** has transmitted
    /// successfully at least once — the full conflict-resolution problem of
    /// Komlós & Greenberg (each of the `k` awake stations must deliver its
    /// message). Protocols are expected to retire stations on their own
    /// success (they hear `Feedback::Heard(self)`); the engine keeps
    /// delivering feedback on success slots in this mode — on the sparse
    /// path, success feedback goes to **every** awake station (a success is
    /// heard by all), after which every
    /// [`Until::NextSuccess`](crate::station::Until)-scoped hint is
    /// re-queried.
    AllResolved,
}

/// Which execution path the engine may take.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Use the sparse slot-skipping path whenever every awake station
    /// provides a [`TxHint`], adaptively dropping to per-slot dense
    /// stepping on burst-shaped stretches where skipping yields nothing
    /// (see the module docs); falls back to dense polling permanently when
    /// any station answers [`TxHint::Dense`] (the default).
    #[default]
    Auto,
    /// Always poll every awake station every slot (the historical engine).
    /// Useful as a ground-truth reference and for measuring the sparse
    /// speedup.
    Dense,
    /// Force the word-level (bit-parallel) slot kernel for every simulated
    /// slot: transmit decisions are gathered as 64-slot bit columns per
    /// station ([`Station::fill_tx_word`], with a generic fill from
    /// [`Station::next_transmission`] hints for everyone else), transposed
    /// into per-slot words, and each slot resolves from a popcount —
    /// `0` → silence, `1` → success via `trailing_zeros`, `≥ 2` →
    /// collision. Outcomes, transcripts and the channel-tier trace are
    /// bit-identical to [`EngineMode::Dense`]; only the work counters
    /// ([`Outcome::word_slots`]) differ. Falls back to scalar dense polling
    /// permanently when any station answers [`TxHint::Dense`]. Under
    /// [`EngineMode::Auto`] the same kernel powers the adaptive policy's
    /// dense burst windows once a window survives its scalar warmup
    /// ([`PolicyParams::kernel_warmup`]); this mode exists to force it
    /// everywhere (benchmark baselines, equivalence tests).
    Bitslab,
}

/// Configuration of one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Total number of stations attached to the channel (IDs are `0..n`).
    pub n: u32,
    /// Feedback model (default: the paper's no-collision-detection model).
    pub feedback: FeedbackModel,
    /// Give up after this many slots counted from the first wake-up `s`.
    pub max_slots: u64,
    /// Record a full per-slot transcript (off by default: transcripts of
    /// long runs are large).
    pub record_transcript: bool,
    /// When to end the run (default: first success).
    pub stop: StopRule,
    /// Engine path selection (default: [`EngineMode::Auto`]).
    pub engine: EngineMode,
    /// Which population the engine simulates (default: one concrete
    /// [`Station`] per woken station; [`PopulationMode::Classes`] groups
    /// stations in identical protocol state into weighted equivalence
    /// classes — O(classes) memory, identical outcomes).
    pub population: PopulationMode,
    /// Track per-station transmission counts
    /// ([`Outcome::per_station_tx`], on by default). Turn **off** for mega
    /// runs: the table is O(k) in both engines, and with it off both
    /// engines leave it empty — outcomes stay comparable per config.
    pub per_station_detail: bool,
    /// Constants of the adaptive [`EngineMode::Auto`] policy (hint-query
    /// cost, burst-window floors, …). Defaults to the hand-tuned
    /// [`PolicyParams::default`]; [`PolicyParams::calibrated`] measures
    /// them against the actual protocol on the actual machine. Outcomes
    /// are policy-independent — only work counters move.
    pub policy: PolicyParams,
    /// Split budget of the class engine ([`PopulationMode::Classes`]): when
    /// the number of live simulation units exceeds this, the class run is
    /// abandoned and the engine re-runs the pattern concretely — a
    /// population fragmenting into Ω(members) singleton classes pays per-
    /// unit split bookkeeping *on top of* per-station work, so wholesale
    /// concrete is strictly cheaper. `None` (default) picks
    /// `max(4096, k/2)` for a `k`-station pattern; `Some(u64::MAX)`
    /// disables the guard. Outcomes are identical either way — the flip
    /// shows only in the work counters ([`Outcome::peak_units`] etc.).
    pub split_budget: Option<u64>,
    /// Channel fault model ([`ChannelModel::ideal`] by default — every
    /// ground-truth [`SlotOutcome`] is delivered verbatim). Faults are
    /// drawn per slot from the run seed
    /// (`derive_seed(run_seed, FAULT_STREAM)`), so the same
    /// `(protocol, pattern, run_seed)` triple perturbs the same slots on
    /// every engine path — outcomes and the deterministic trace tier stay
    /// bit-identical across Dense/Sparse/Bitslab/Classes.
    pub channel: ChannelModel,
    /// Population churn ([`ChurnScript::none`] by default — the classical
    /// model where the awake set only grows). Crash and re-wake slots are
    /// a pure function of `(run_seed, id, wake)`, shared by every engine
    /// path. A crashed station falls permanently silent (it is replaced by
    /// an inert listener); a re-wake admits a **fresh** protocol instance
    /// of the same ID, seeded from `derive_seed(run_seed, REWAKE_STREAM)`.
    pub churn: ChurnScript,
}

impl SimConfig {
    /// A configuration for `n` stations with defaults: no collision
    /// detection, `max_slots = 64·n·(log n + 1)²` (comfortably above every
    /// upper bound proved in the paper), no transcript.
    pub fn new(n: u32) -> Self {
        let log_n = (64 - u64::from(n.max(2) - 1).leading_zeros()) as u64; // ceil(log2 n)
        SimConfig {
            n,
            feedback: FeedbackModel::NoCollisionDetection,
            max_slots: 64 * u64::from(n.max(1)) * (log_n + 1) * (log_n + 1),
            record_transcript: false,
            stop: StopRule::FirstSuccess,
            engine: EngineMode::Auto,
            population: PopulationMode::default(),
            per_station_detail: true,
            policy: PolicyParams::default(),
            split_budget: None,
            channel: ChannelModel::ideal(),
            churn: ChurnScript::none(),
        }
    }

    /// Run until every pattern station has transmitted successfully
    /// (conflict resolution à la Komlós–Greenberg) instead of stopping at
    /// the first success.
    pub fn until_all_resolved(mut self) -> Self {
        self.stop = StopRule::AllResolved;
        self
    }

    /// Set the slot cap (counted from `s`).
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = max_slots;
        self
    }

    /// Set the feedback model.
    pub fn with_feedback(mut self, feedback: FeedbackModel) -> Self {
        self.feedback = feedback;
        self
    }

    /// Enable transcript recording.
    pub fn with_transcript(mut self) -> Self {
        self.record_transcript = true;
        self
    }

    /// Select the engine path ([`EngineMode::Dense`] forces per-slot
    /// polling; [`EngineMode::Auto`] skips silent slots when possible).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Select the population ([`PopulationMode::Classes`] simulates
    /// weighted equivalence classes instead of individual stations).
    pub fn with_population(mut self, population: PopulationMode) -> Self {
        self.population = population;
        self
    }

    /// Shorthand for `with_population(PopulationMode::Classes)`.
    pub fn with_classes(self) -> Self {
        self.with_population(PopulationMode::Classes)
    }

    /// Drop per-station transmission accounting
    /// ([`Outcome::per_station_tx`] stays empty) — required for O(classes)
    /// memory at mega scale.
    pub fn without_per_station_detail(mut self) -> Self {
        self.per_station_detail = false;
        self
    }

    /// Replace the adaptive-policy constants (e.g. with a
    /// [`PolicyParams::calibrated`] set).
    pub fn with_policy(mut self, policy: PolicyParams) -> Self {
        self.policy = policy;
        self
    }

    /// Set the class engine's split budget (`Some(u64::MAX)` disables the
    /// flip-to-concrete guard; see [`SimConfig::split_budget`]).
    pub fn with_split_budget(mut self, budget: Option<u64>) -> Self {
        self.split_budget = budget;
        self
    }

    /// Set the channel fault model (see [`SimConfig::channel`]).
    pub fn with_channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Set the population churn script (see [`SimConfig::churn`]).
    pub fn with_churn(mut self, churn: ChurnScript) -> Self {
        self.churn = churn;
        self
    }
}

/// Errors validating a run before it starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The pattern wakes a station with ID ≥ n.
    StationOutOfRange {
        /// The offending station.
        id: StationId,
        /// The configured number of stations.
        n: u32,
    },
    /// `n` is zero.
    NoStations,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::StationOutOfRange { id, n } => {
                write!(f, "pattern wakes station {id} but n = {n}")
            }
            SimError::NoStations => write!(f, "configuration has n = 0 stations"),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of one simulated run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The first wake-up slot `s` of the pattern.
    pub s: Slot,
    /// The slot of the first successful transmission, if any occurred within
    /// the cap.
    pub first_success: Option<Slot>,
    /// The station that transmitted alone at `first_success`.
    pub winner: Option<StationId>,
    /// Number of slots actually simulated (from `s`, inclusive).
    pub slots_simulated: u64,
    /// Total number of transmissions over the run (the *energy* cost).
    pub transmissions: u64,
    /// Per-station transmission counts, for stations that woke.
    pub per_station_tx: Vec<(StationId, u64)>,
    /// Number of collision slots.
    pub collisions: u64,
    /// Number of silent slots.
    pub silent_slots: u64,
    /// Number of [`Station::act`] calls made over the run — the engine's
    /// work measure. Dense runs poll every awake station every slot
    /// (`≈ slots × k`); sparse runs poll only at transmission events.
    pub polls: u64,
    /// Slots the engine advanced over in bulk (silent by the stations' own
    /// [`TxHint`] promises, or dead air before a wake-up) instead of
    /// simulating individually. Dead-air jumps aside, always 0 on the dense
    /// path. Skipped slots still count into
    /// [`slots_simulated`](Outcome::slots_simulated) (and, for gaps while
    /// stations are awake, [`silent_slots`](Outcome::silent_slots)) so
    /// outcomes are identical across paths.
    pub skipped_slots: u64,
    /// Slots simulated by polling **every** awake station (per-slot dense
    /// stepping): all slots of an [`EngineMode::Dense`] run, plus, under
    /// [`EngineMode::Auto`], the slots the adaptive policy chose to step
    /// densely — burst windows where the sparse heap was not paying for
    /// itself, and everything after a [`TxHint::Dense`] fallback. Every
    /// simulated slot is either skipped in bulk, dense-stepped,
    /// word-resolved, or a sparse event (which polls at least one
    /// station), so `skipped_slots + dense_steps + word_slots ≤
    /// slots_simulated ≤ skipped_slots + dense_steps + word_slots + polls`.
    pub dense_steps: u64,
    /// Slots resolved by the word-level (bit-parallel) kernel: transmit
    /// bits for up to 64 slots × every awake station gathered into bitset
    /// words, transposed, and each slot settled by a popcount instead of
    /// per-station polling. All slots of an [`EngineMode::Bitslab`] run
    /// (until a [`TxHint::Dense`] fallback), plus, under
    /// [`EngineMode::Auto`], the burst-window slots the kernel stepped in
    /// place of scalar dense stepping. Disjoint from
    /// [`dense_steps`](Outcome::dense_steps).
    pub word_slots: u64,
    /// Number of sparse↔dense transitions the adaptive [`EngineMode::Auto`]
    /// policy made (0 on the pure paths: a run that never leaves the sparse
    /// path, a forced-dense run, or a permanent [`TxHint::Dense`] fallback).
    pub mode_switches: u64,
    /// Maximum number of simultaneously live simulation units over the run:
    /// awake stations under [`PopulationMode::Concrete`], equivalence
    /// classes under [`PopulationMode::Classes`]. The engine's memory
    /// measure — `k / peak_units` is the class-aggregation ratio. Like the
    /// work counters, this is **not** part of cross-engine outcome
    /// equivalence.
    pub peak_units: u64,
    /// Full transcript, if recording was enabled.
    pub transcript: Option<Transcript>,
    /// Stations that transmitted successfully at least once, with the slot
    /// of their first own success (in success order). Under
    /// [`StopRule::FirstSuccess`] this holds at most the winner.
    pub resolved: Vec<(StationId, Slot)>,
    /// Slot at which the **last** pattern station had its first success —
    /// set only under [`StopRule::AllResolved`] when everyone resolved
    /// within the cap.
    pub all_resolved_at: Option<Slot>,
    /// Channel-fault and churn event counts over the run (all zero under
    /// the default ideal channel and empty churn script). Erasure, capture
    /// and churn counts are engine-path-independent;
    /// [`FaultCounts::false_collisions`] counts only *materialized* silent
    /// slots and is therefore path-dependent, like
    /// [`polls`](Outcome::polls).
    pub faults: FaultCounts,
}

impl Outcome {
    /// Latency `t − s` of the run, the paper's cost measure. `None` when the
    /// run hit the cap without a success.
    #[inline]
    pub fn latency(&self) -> Option<u64> {
        self.first_success.map(|t| t - self.s)
    }

    /// `true` iff the wake-up problem was solved within the cap.
    #[inline]
    pub fn solved(&self) -> bool {
        self.first_success.is_some()
    }

    /// Full-resolution latency `t_all − s`: slots from the first wake-up
    /// until every pattern station had delivered its message.
    #[inline]
    pub fn full_resolution_latency(&self) -> Option<u64> {
        self.all_resolved_at.map(|t| t - self.s)
    }
}

/// What the engine does when a station's heap entry comes due.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Due {
    /// Poll the station ([`Station::act`]) — a hinted transmission slot.
    Poll,
    /// Re-query the station's hint — an [`Until::Slot`] scope boundary.
    Requery,
}

/// Per-station sparse-path bookkeeping. The hint *epoch* stamps heap
/// entries so entries superseded by a re-query are discarded lazily.
#[derive(Clone, Copy, Debug)]
struct HintState {
    epoch: u64,
    due: Due,
    success_scoped: bool,
}

impl HintState {
    fn new() -> Self {
        HintState {
            epoch: 0,
            due: Due::Poll,
            success_scoped: false,
        }
    }
}

/// A per-station claim cached by the word kernel between consecutive tiles
/// of one dense burst: the station's next transmission (if any) as learned
/// at an earlier tile base, scoped like the originating [`TxHint`]. A memo
/// is consumed ([`WordMemo::Stale`]) when its transmission slot is reached,
/// when its scope expires, or wholesale when tiles stop being contiguous.
#[derive(Clone, Copy, Debug)]
enum WordMemo {
    /// No usable claim — query the station at the next tile base.
    Stale,
    /// A normalized `next_transmission` answer: silent up to `next`
    /// (transmitting exactly there when `Some`), valid per `until`. When
    /// `until` is [`Until::Slot`], `next` is `None` or strictly before the
    /// boundary.
    Hint { next: Option<Slot>, until: Until },
}

/// Result of one class-engine attempt under a live-unit budget (see
/// [`SimConfig::split_budget`]).
enum ClassRun {
    /// The attempt ran to completion (boxed: the variant would otherwise
    /// dwarf `BudgetExceeded`).
    Done(Box<Outcome>),
    /// Live units crossed the budget — or a churn crash hit a class that
    /// does not support member removal
    /// ([`MemberRemoval::Unsupported`]): abandon the attempt and re-run
    /// the pattern on the concrete engine, which handles churn natively.
    BudgetExceeded,
}

/// The low `width` bits set (`width ≥ 64` saturates to all ones).
#[inline]
fn low_mask(width: u64) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Constants of the adaptive [`EngineMode::Auto`] policy. The defaults are
/// hand-tuned for a typical x86 box; [`PolicyParams::calibrated`] measures
/// them against a concrete protocol on the machine actually running the
/// sweep. Outcomes never depend on these — they steer only *which path*
/// simulates each slot, so miscalibration costs time, not correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyParams {
    /// Cost of one [`Station::next_transmission`] query relative to one
    /// [`Station::act`] poll. Hint queries scan schedules (PRF gap jumps,
    /// position walks) and are typically several times the cost of a poll.
    pub hint_cost: u64,
    /// What one dense-stepped slot costs per awake station in the same
    /// units: one poll plus one feedback delivery.
    pub dense_slot_cost: u64,
    /// The policy evaluates the skip yield every time this much sparse work
    /// (polls + weighted hint queries) has accumulated since the window
    /// start.
    pub eval_cost: u64,
    /// Minimum skippable gap (in slots) a re-probe must see ahead to resume
    /// the sparse path; anything closer and the heap would be churning
    /// again within a few slots. Also the wake-time burst test: a batch
    /// arrival whose earliest obligation is due within this gap has nothing
    /// to skip.
    pub resume_gap: u64,
    /// Minimum dense burst-window length in slots — long enough to amortize
    /// the k hint queries a re-probe costs.
    pub burst_floor: u64,
    /// Scalar-dense slots a burst window must survive before the word
    /// kernel takes over ([`EngineMode::Auto`] only). Bursts that resolve
    /// within a handful of slots — the no-skip adversarial shape — never
    /// pay for a tile fill they cannot amortize; bursts that outlive the
    /// warmup switch to word-level stepping for the remainder of the
    /// window. [`EngineMode::Bitslab`] ignores this and always runs the
    /// kernel.
    pub kernel_warmup: u64,
}

impl Default for PolicyParams {
    fn default() -> Self {
        PolicyParams {
            hint_cost: 3,
            dense_slot_cost: 2,
            eval_cost: 64,
            resume_gap: 4,
            burst_floor: 64,
            kernel_warmup: 16,
        }
    }
}

impl PolicyParams {
    /// Measure the policy constants against `protocol` on this machine: a
    /// few hundred timed [`Station::act`] polls and
    /// [`Station::next_transmission`] queries on scratch stations (the
    /// "first few hundred events" of a sweep, executed up front so every
    /// run of the ensemble shares one deterministic parameter set). The
    /// measured hint/poll cost ratio replaces the hand-tuned
    /// [`hint_cost`](PolicyParams::hint_cost), and the evaluation cadence
    /// and burst floor scale with it. All ratios are clamped to sane
    /// ranges; degenerate measurements (e.g. a resolution-starved clock)
    /// fall back to the defaults. Calibration never changes outcomes —
    /// only the adaptive schedule, hence the work counters.
    pub fn calibrated(protocol: &dyn Protocol, n: u32) -> PolicyParams {
        use std::hint::black_box;
        use std::time::Instant;

        const ROUNDS: u64 = 256;
        let ids = (0..8u32.min(n.max(1))).map(StationId).collect::<Vec<_>>();

        // Poll cost: act() across the first few hundred slots.
        let mut stations: Vec<_> = ids
            .iter()
            .map(|&id| protocol.station(id, derive_seed(0xCA11_B8A7E, u64::from(id.0))))
            .collect();
        for st in stations.iter_mut() {
            st.wake(0);
        }
        // lint: allow(wall-clock) — calibration probe measures real act() cost; result steers mode choice, never transcripts
        let start = Instant::now();
        for t in 0..ROUNDS {
            for st in stations.iter_mut() {
                black_box(st.act(t));
            }
        }
        let act_ns = start.elapsed().as_nanos().max(1) as u64;

        // Hint cost: next_transmission() at non-decreasing slots on fresh
        // stations (the scratch stations above already consumed act calls).
        let mut stations: Vec<_> = ids
            .iter()
            .map(|&id| protocol.station(id, derive_seed(0xCA11_B8A7E, u64::from(id.0))))
            .collect();
        for st in stations.iter_mut() {
            st.wake(0);
        }
        // lint: allow(wall-clock) — calibration probe measures real next_transmission() cost; never transcripts
        let start = Instant::now();
        for t in 0..ROUNDS {
            for st in stations.iter_mut() {
                black_box(st.next_transmission(t));
            }
        }
        let hint_ns = start.elapsed().as_nanos() as u64;

        if act_ns < 100 || hint_ns < 100 {
            return PolicyParams::default(); // clock resolution too coarse
        }
        let hint_cost = hint_ns.div_ceil(act_ns).clamp(1, 16);
        PolicyParams {
            hint_cost,
            // One poll plus one feedback delivery per station per slot.
            dense_slot_cost: 2,
            // Keep the default's cadence of ~21 polls' worth of work per
            // hint-cost unit, re-expressed in measured units.
            eval_cost: (21 * hint_cost).clamp(32, 512),
            resume_gap: 4,
            // A burst must outlast ~16 hint queries' worth of slots for the
            // re-probe to amortize.
            burst_floor: (16 * hint_cost).clamp(32, 256),
            kernel_warmup: 16,
        }
    }
}

/// The adaptive sparse↔dense policy of [`EngineMode::Auto`]: a sliding cost
/// window over the sparse path's work, compared against what dense stepping
/// would have cost over the same simulated slots.
#[derive(Clone, Copy, Debug)]
struct Adaptive {
    /// The policy constants ([`SimConfig::policy`]).
    p: PolicyParams,
    /// Sparse work (polls + `hint_cost`·hint queries) since the window
    /// started.
    win_cost: u64,
    /// `slots_simulated` at the window start.
    win_start: u64,
    /// Current dense burst-window length in slots (doubled while re-probes
    /// keep failing, reset when a probe finds a skippable gap).
    burst_len: u64,
    /// Slots left in the active burst window (meaningful in dense stepping).
    burst_remaining: u64,
}

impl Adaptive {
    fn new(p: PolicyParams) -> Self {
        Adaptive {
            p,
            win_cost: 0,
            win_start: 0,
            burst_len: 0,
            burst_remaining: 0,
        }
    }

    /// Evaluate the window: `true` iff the sparse path has done more work
    /// over the window than dense stepping would have
    /// (`dense_slot_cost · awake` per slot) — time to drop into a burst
    /// window. A window that passes the yield test resets so old gaps
    /// cannot subsidize a later burst forever.
    fn should_burst(&mut self, slots_now: u64, awake: usize) -> bool {
        if self.win_cost < self.p.eval_cost {
            return false;
        }
        let win_slots = (slots_now - self.win_start).max(1);
        if self.win_cost > self.p.dense_slot_cost * awake as u64 * win_slots {
            true
        } else {
            self.win_cost = 0;
            self.win_start = slots_now;
            false
        }
    }

    /// Start (or restart) a dense burst window sized to the floor: long
    /// enough to amortize the k hint queries a re-probe costs.
    fn start_burst(&mut self, awake: usize) {
        self.burst_len = (4 * awake as u64).max(self.p.burst_floor);
        self.burst_remaining = self.burst_len;
    }

    /// A re-probe failed (no skippable gap ahead): stay dense for a doubled
    /// window, capped so sparsity is still re-tested periodically.
    fn backoff(&mut self, awake: usize) {
        let cap = (64 * awake as u64).max(64 * self.p.burst_floor);
        self.burst_len = (self.burst_len * 2).clamp(self.p.burst_floor, cap);
        self.burst_remaining = self.burst_len;
    }

    /// Has the active burst window survived its scalar warmup? The word
    /// kernel only takes over once `kernel_warmup` slots of the window have
    /// been dense-stepped — a burst that resolves faster never pays for a
    /// tile fill it cannot amortize.
    fn kernel_warm(&self) -> bool {
        self.burst_len.saturating_sub(self.burst_remaining) >= self.p.kernel_warmup
    }

    /// A re-probe succeeded: back to the sparse path with a fresh window.
    fn resume_sparse(&mut self, slots_now: u64) {
        self.win_cost = 0;
        self.win_start = slots_now;
        self.burst_len = 0;
        self.burst_remaining = 0;
    }
}

/// Install a fresh [`TxHint`] for unit `idx` looking from `after`: bump the
/// hint epoch (superseding any live heap entry), push the new heap entry
/// and update scope flags. Shared by the concrete and class engines — the
/// scope semantics are identical; only the hint's *source* (a station or a
/// whole class) differs. Returns the due slot of the installed entry
/// (`None` for an unconditional silence promise), or `Err(())` when the
/// answer ([`TxHint::Dense`] or a malformed scope boundary) forces the
/// dense path.
fn install_hint(
    hint: TxHint,
    idx: usize,
    after: Slot,
    heap: &mut BinaryHeap<Reverse<(Slot, usize, u64)>>,
    states: &mut [HintState],
    scoped: &mut Vec<usize>,
) -> Result<Option<Slot>, ()> {
    let st = &mut states[idx];
    st.epoch += 1; // supersede any live heap entry
    let was_scoped = st.success_scoped;
    let (entry, now_scoped) = match hint {
        TxHint::Dense => return Err(()),
        TxHint::At(slot, until) => {
            let slot = slot.max(after);
            match until {
                Until::Forever => (Some((Due::Poll, slot)), false),
                Until::NextSuccess => (Some((Due::Poll, slot)), true),
                // A validity boundary at or before `after` carries no
                // silence claim at all: fall back to dense rather than
                // trust it (correctness first).
                Until::Slot(tb) if tb <= after => return Err(()),
                Until::Slot(tb) if slot < tb => (Some((Due::Poll, slot)), false),
                Until::Slot(tb) => (Some((Due::Requery, tb)), false),
            }
        }
        TxHint::Never(until) => match until {
            Until::Forever => (None, false),
            Until::NextSuccess => (None, true),
            Until::Slot(tb) if tb <= after => return Err(()),
            Until::Slot(tb) => (Some((Due::Requery, tb)), false),
        },
    };
    st.success_scoped = now_scoped;
    if now_scoped && !was_scoped {
        scoped.push(idx);
    }
    let due_slot = entry.map(|(_, slot)| slot);
    if let Some((due, slot)) = entry {
        st.due = due;
        heap.push(Reverse((slot, idx, st.epoch)));
    }
    Ok(due_slot)
}

/// Engine-side trace emission helper, generic over the tracer so the
/// default [`NoopTracer`] path monomorphizes to nothing. Its one piece of
/// state is the silence coalescer: consecutive silent slots — whether
/// skipped in bulk by the sparse path or polled one by one by the dense
/// path — accumulate into a single pending run, flushed ahead of the next
/// deterministic event. That is what makes the deterministic event stream
/// (wakes, silence runs, successes, collisions, run end) bit-identical
/// across engine and population modes.
struct TraceCtx<'a, T: Tracer + ?Sized> {
    tracer: &'a mut T,
    silent_from: Slot,
    silent_len: u64,
}

impl<'a, T: Tracer + ?Sized> TraceCtx<'a, T> {
    fn new(tracer: &'a mut T) -> Self {
        TraceCtx {
            tracer,
            silent_from: 0,
            silent_len: 0,
        }
    }

    /// Hot-path gate, forwarded so emission sites can skip payload work.
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.tracer.wants(kind)
    }

    /// Account `count` silent slots starting at `from` (merged into the
    /// pending run when contiguous).
    #[inline]
    fn silence(&mut self, from: Slot, count: u64) {
        if count == 0 || !self.tracer.wants(TraceKind::Silence) {
            return;
        }
        if self.silent_len > 0 && self.silent_from + self.silent_len == from {
            self.silent_len += count;
        } else {
            self.flush_silence();
            self.silent_from = from;
            self.silent_len = count;
        }
    }

    fn flush_silence(&mut self) {
        if self.silent_len > 0 {
            self.tracer.record(&TraceEvent::Silence {
                slot: self.silent_from,
                slots: self.silent_len,
            });
            self.silent_len = 0;
        }
    }

    #[inline]
    fn wake(&mut self, slot: Slot, stations: u64) {
        if stations > 0 && self.tracer.wants(TraceKind::Wake) {
            self.flush_silence();
            self.tracer.record(&TraceEvent::Wake { slot, stations });
        }
    }

    #[inline]
    fn success(&mut self, slot: Slot, winner: StationId) {
        if self.tracer.wants(TraceKind::Success) {
            self.flush_silence();
            self.tracer.record(&TraceEvent::Success { slot, winner });
        }
    }

    #[inline]
    fn collision(&mut self, slot: Slot, contenders: u64) {
        if self.tracer.wants(TraceKind::Collision) {
            self.flush_silence();
            self.tracer
                .record(&TraceEvent::Collision { slot, contenders });
        }
    }

    /// A success erased by the channel (deterministic tier: fault draws are
    /// keyed by slot, so every engine path erases the same slots).
    #[inline]
    fn fault_erasure(&mut self, slot: Slot, winner: StationId) {
        if self.tracer.wants(TraceKind::FaultErasure) {
            self.flush_silence();
            self.tracer
                .record(&TraceEvent::FaultErasure { slot, winner });
        }
    }

    /// A collision resolved by capture (deterministic tier).
    #[inline]
    fn fault_capture(&mut self, slot: Slot, winner: StationId, contenders: u64) {
        if self.tracer.wants(TraceKind::FaultCapture) {
            self.flush_silence();
            self.tracer.record(&TraceEvent::FaultCapture {
                slot,
                winner,
                contenders,
            });
        }
    }

    /// A station crashing out of the run (deterministic tier: crash slots
    /// are materialized events on every engine path).
    #[inline]
    fn churn_crash(&mut self, slot: Slot, id: StationId) {
        if self.tracer.wants(TraceKind::ChurnCrash) {
            self.flush_silence();
            self.tracer.record(&TraceEvent::ChurnCrash { slot, id });
        }
    }

    /// A crashed station re-waking as a fresh instance (deterministic tier).
    #[inline]
    fn churn_rewake(&mut self, slot: Slot, id: StationId) {
        if self.tracer.wants(TraceKind::ChurnRewake) {
            self.flush_silence();
            self.tracer.record(&TraceEvent::ChurnRewake { slot, id });
        }
    }

    /// Final event of every run; also flushes any trailing silence.
    fn run_end(&mut self, slots: u64, first_success: Option<Slot>) {
        self.flush_silence();
        if self.tracer.wants(TraceKind::RunEnd) {
            self.tracer.record(&TraceEvent::RunEnd {
                slots,
                first_success,
            });
        }
    }

    /// Emit an engine-specific event (never flushes silence: these live on
    /// the non-deterministic tier and may interleave differently per path).
    #[inline]
    fn engine_event(&mut self, ev: TraceEvent) {
        if self.tracer.wants(ev.kind()) {
            self.tracer.record(&ev);
        }
    }
}

/// Apply the configured channel-fault model to one resolved slot: returns
/// the *effective* outcome heard on the channel, counting and tracing any
/// fault. `truth` is the ground-truth resolution of the transmitter set;
/// under the default ideal channel it passes through untouched (and no
/// fault draw is made). Shared by every engine path — fault draws are a
/// pure function of `(fault_seed, slot)`, so paths that materialize the
/// same busy slots perturb them identically.
fn apply_channel<T: Tracer + ?Sized>(
    channel: &ChannelModel,
    fault_seed: u64,
    slot: Slot,
    truth: SlotOutcome,
    faults: &mut FaultCounts,
    trace: &mut TraceCtx<'_, T>,
) -> SlotOutcome {
    let (effective, fault) = channel.apply(fault_seed, slot, truth);
    match fault {
        Some(ChannelFault::Erasure { winner }) => {
            faults.erasures += 1;
            trace.fault_erasure(slot, winner);
        }
        Some(ChannelFault::Capture { winner, contenders }) => {
            faults.captures += 1;
            trace.fault_capture(slot, winner, contenders.len() as u64);
        }
        None => {}
    }
    effective
}

/// Resolve one slot from the tally: exact IDs in the collecting regime
/// (identical to the concrete engine's [`SlotOutcome::resolve`]), weighted
/// counts otherwise (collision IDs are not materialized — O(1) memory at
/// mega scale; the sole transmitter of a success always carries its ID).
fn slot_outcome(tally: &mut TxTally) -> SlotOutcome {
    if tally.collect_ids() {
        SlotOutcome::resolve(tally.sorted_ids().to_vec())
    } else {
        match tally.total() {
            0 => SlotOutcome::Silence,
            1 => SlotOutcome::Success(tally.winner().expect("sole transmitter carries its ID")),
            _ => SlotOutcome::Collision(Vec::new()),
        }
    }
}

/// The simulator. Stateless between runs; holds only the configuration.
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Create a simulator with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run `protocol` against `pattern`.
    ///
    /// `run_seed` determinizes every random choice: per-station seeds are
    /// derived as `derive_seed(run_seed, id)`, so the same
    /// `(protocol, pattern, run_seed)` triple always reproduces the same run.
    ///
    /// Dispatches on [`SimConfig::population`]: the historical per-station
    /// engine, or the class-aggregated engine (identical outcomes, memory
    /// O(classes)).
    pub fn run(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
    ) -> Result<Outcome, SimError> {
        // Monomorphized over NoopTracer: every trace emission site compiles
        // away, so the untraced path pays nothing for the subsystem.
        self.run_traced_impl(protocol, pattern, run_seed, &mut NoopTracer)
    }

    /// [`run`](Simulator::run) with a [`Tracer`] attached: structured
    /// [`TraceEvent`]s are emitted from the engine hot paths as the run
    /// executes. The returned [`Outcome`] (and transcript) is bit-identical
    /// to the untraced run — tracing observes, never steers.
    pub fn run_traced(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Outcome, SimError> {
        self.run_traced_impl(protocol, pattern, run_seed, tracer)
    }

    fn run_traced_impl<T: Tracer + ?Sized>(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
        tracer: &mut T,
    ) -> Result<Outcome, SimError> {
        match self.cfg.population {
            PopulationMode::Concrete => self.run_concrete(protocol, pattern, run_seed, tracer),
            PopulationMode::Classes => {
                self.run_with_population(protocol, pattern, run_seed, &mut ClassPopulation, tracer)
            }
        }
    }

    /// Pre-run validation shared by both engines.
    fn validate(&self, pattern: &WakePattern) -> Result<(), SimError> {
        if self.cfg.n == 0 {
            return Err(SimError::NoStations);
        }
        if let Some(id) = pattern.out_of_range(self.cfg.n) {
            return Err(SimError::StationOutOfRange { id, n: self.cfg.n });
        }
        Ok(())
    }

    /// The historical engine: one boxed [`Station`] per woken station.
    /// Block patterns are materialized up front (O(k) — the documented cost
    /// of running a mega pattern concretely).
    fn run_concrete<T: Tracer + ?Sized>(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
        tracer: &mut T,
    ) -> Result<Outcome, SimError> {
        self.validate(pattern)?;
        let mut trace = TraceCtx::new(tracer);

        let s = pattern.s();
        let wakes = pattern.materialize();
        let wakes: &[(StationId, Slot)] = &wakes;
        let mut next_wake = 0usize; // index into `wakes`
        let mut awake: Vec<(StationId, Box<dyn Station>, u64)> = Vec::new(); // (id, station, tx count)
        let mut transcript = self.cfg.record_transcript.then(Transcript::new);

        let mut transmissions = 0u64;
        let mut collisions = 0u64;
        let mut silent_slots = 0u64;
        let mut first_success = None;
        let mut winner = None;
        let mut slots_simulated = 0u64;
        let mut polls = 0u64;
        let mut skipped_slots = 0u64;
        let mut dense_steps = 0u64;
        let mut word_slots = 0u64;
        let mut mode_switches = 0u64;
        let mut peak_units = 0u64;
        // Trace watermarks (only advanced when a tracer wants them).
        let (mut wm_heap, mut wm_units) = (0u64, 0u64);
        let mut transmitters: Vec<StationId> = Vec::new();
        let mut transmitted_flags: Vec<bool> = Vec::new();
        let mut resolved: Vec<(StationId, Slot)> = Vec::new();
        let mut all_resolved_at = None;
        let total_stations = wakes.len();

        // Channel-fault plumbing. Draws are keyed by (fault_seed, slot) so
        // every engine path perturbs the same slots; under the ideal
        // channel apply_channel is the identity and no draw is made.
        let fault_seed = derive_seed(run_seed, FAULT_STREAM);
        let mishear_armed = self.cfg.channel.false_collision_ppm > 0
            && self.cfg.feedback == FeedbackModel::CollisionDetection;
        let mut faults = FaultCounts::default();

        // Churn fates, materialized up front from the pattern (a pure
        // function of (run_seed, id, wake) — engine-path-independent).
        // Crash and re-wake slots become sparse events below so both
        // engine paths process them at exactly their slot.
        let mut crashes: Vec<(Slot, StationId)> = Vec::new();
        let mut rewakes: Vec<(Slot, StationId)> = Vec::new();
        if !self.cfg.churn.is_empty() {
            for &(id, sigma) in wakes.iter() {
                if let Some((crash, rewake)) = self.cfg.churn.fate(run_seed, id, sigma) {
                    crashes.push((crash, id));
                    if let Some(r) = rewake {
                        rewakes.push((r, id));
                    }
                }
            }
            crashes.sort_unstable();
            rewakes.sort_unstable();
        }
        let rewake_seed = derive_seed(run_seed, REWAKE_STREAM);
        let mut next_crash = 0usize; // index into `crashes`
        let mut next_rewake = 0usize; // index into `rewakes`

        // Sparse until any station answers TxHint::Dense (or a malformed
        // scope), which locks dense polling permanently, or until the
        // adaptive policy drops into a dense burst window (from which a
        // re-probe can return to sparse).
        let mut sparse = self.cfg.engine == EngineMode::Auto;
        let mut locked = matches!(self.cfg.engine, EngineMode::Dense | EngineMode::Bitslab);
        let mut policy = Adaptive::new(self.cfg.policy);
        // Word-kernel state (EngineMode::Bitslab always; Auto burst windows
        // until a TxHint::Dense answer): per-station claim memos reusable
        // across consecutive tiles, per-tile fill plumbing, and the slot the
        // memos are coherent from. `kernel_dead` records a station that the
        // kernel cannot plan for (TxHint::Dense or a malformed scope) — the
        // engine then steps scalar dense, exactly like the sparse path's
        // permanent dense lock.
        let mut kernel_dead = false;
        let mut word_memos: Vec<WordMemo> = Vec::new();
        let mut word_generic: Vec<bool> = Vec::new();
        let mut word_cols: Vec<u64> = Vec::new();
        let mut word_blocks: Vec<[u64; 64]> = Vec::new();
        let mut word_tx_idx: Vec<usize> = Vec::new();
        let mut word_cont: Slot = Slot::MAX;
        // Tile-width ramp: a fresh kernel engagement starts with a narrow
        // tile and doubles on every contiguous follow-up, so a run that ends
        // a handful of slots into a burst never pays for a full 64-slot fill
        // (the overshoot is bounded by the width of the last tile), while a
        // long burst reaches full-word tiles after three doublings.
        const WORD_RAMP_SEED: u64 = 8;
        let mut word_ramp: u64 = WORD_RAMP_SEED;
        // Min-heap of (due slot, index into `awake`, hint epoch). A station
        // has at most one *live* entry: re-querying bumps its hint epoch,
        // and entries whose epoch is stale are discarded lazily on pop.
        // Stations with an unconditional `Never` hint have no entry.
        let mut heap: BinaryHeap<Reverse<(Slot, usize, u64)>> =
            BinaryHeap::with_capacity(if sparse { wakes.len() + 1 } else { 0 });
        // Per-station hint bookkeeping, parallel to `awake`.
        let mut hint_states: Vec<HintState> = Vec::with_capacity(wakes.len());
        // Indices holding an Until::NextSuccess-scoped hint (may contain
        // stale entries; the `success_scoped` flag is authoritative).
        let mut success_scoped: Vec<usize> = Vec::new();
        let mut polled: Vec<usize> = Vec::new();
        let mut requery: Vec<usize> = Vec::new();

        /// Ask station `idx` for a fresh hint looking from `after` and
        /// install it (heap entry + scope flags). Returns the due slot of
        /// the installed heap entry (`None` for an unconditional silence
        /// promise), or `Err(())` when the answer forces the dense path.
        fn arm(
            station: &mut dyn Station,
            idx: usize,
            after: Slot,
            heap: &mut BinaryHeap<Reverse<(Slot, usize, u64)>>,
            states: &mut [HintState],
            scoped: &mut Vec<usize>,
        ) -> Result<Option<Slot>, ()> {
            install_hint(
                station.next_transmission(after),
                idx,
                after,
                heap,
                states,
                scoped,
            )
        }

        /// Drop from the sparse path into a dense burst window: discard the
        /// heap and success-scope bookkeeping (a later re-probe rebuilds
        /// both from fresh hints).
        fn clear_sparse_state(
            heap: &mut BinaryHeap<Reverse<(Slot, usize, u64)>>,
            states: &mut [HintState],
            scoped: &mut Vec<usize>,
        ) {
            heap.clear();
            for st in states.iter_mut() {
                st.success_scoped = false;
            }
            scoped.clear();
        }

        // Append `count` silent-slot records starting at `from`.
        fn record_silence(transcript: &mut Option<Transcript>, from: Slot, count: u64) {
            if let Some(tr) = transcript.as_mut() {
                for slot in from..from + count {
                    tr.push(SlotRecord {
                        slot,
                        transmitters: Vec::new(),
                        outcome: SlotOutcome::Silence,
                    });
                }
            }
        }

        let mut t = s;
        'slots: while slots_simulated < self.cfg.max_slots {
            // Wake newly arriving stations (wakes are sorted by slot).
            let batch_start = awake.len();
            while next_wake < wakes.len() && wakes[next_wake].1 <= t {
                let (id, sigma) = wakes[next_wake];
                let mut station = protocol.station(id, derive_seed(run_seed, u64::from(id.0)));
                station.wake(sigma);
                hint_states.push(HintState::new());
                if sparse {
                    policy.win_cost += policy.p.hint_cost;
                    match arm(
                        station.as_mut(),
                        awake.len(),
                        t,
                        &mut heap,
                        &mut hint_states,
                        &mut success_scoped,
                    ) {
                        Err(()) => {
                            sparse = false;
                            locked = true;
                            heap.clear();
                            trace.engine_event(TraceEvent::ModeSwitch {
                                slot: t,
                                dense: true,
                            });
                        }
                        // Wake-time burst detection, short-circuited: a
                        // *batch* arrival (≥ 2 stations this slot) whose
                        // member is due immediately has nothing to skip —
                        // drop straight into dense stepping instead of
                        // paying hint queries for the rest of the batch.
                        Ok(Some(due))
                            if due <= t + 1
                                && (awake.len() > batch_start
                                    || wakes.get(next_wake + 1).is_some_and(|&(_, w)| w <= t)) =>
                        {
                            sparse = false;
                            mode_switches += 1;
                            policy.start_burst(awake.len() + 1);
                            trace.engine_event(TraceEvent::ModeSwitch {
                                slot: t,
                                dense: true,
                            });
                            trace.engine_event(TraceEvent::BurstOpen {
                                slot: t,
                                window: policy.burst_len,
                            });
                            clear_sparse_state(&mut heap, &mut hint_states, &mut success_scoped);
                        }
                        Ok(_) => {}
                    }
                }
                awake.push((id, station, 0));
                next_wake += 1;
            }
            if awake.len() > batch_start {
                trace.wake(t, (awake.len() - batch_start) as u64);
            }
            // Crash stations fated to die at or before t: the station is
            // replaced by an inert listener (no dead-flag checks on the hot
            // paths) and its live hint entry is superseded. A crash never
            // shrinks `awake`, so indices stay stable.
            while let Some(&(cslot, cid)) = crashes.get(next_crash) {
                if cslot > t {
                    break;
                }
                next_crash += 1;
                if let Some(idx) = awake.iter().rposition(|(aid, _, _)| *aid == cid) {
                    if let Some(entry) = awake.get_mut(idx) {
                        entry.1 = Box::new(NeverTransmit);
                    }
                    if let Some(memo) = word_memos.get_mut(idx) {
                        *memo = WordMemo::Stale;
                    }
                    // Supersede any live heap entry; an inert listener
                    // needs no new one.
                    if let Some(hs) = hint_states.get_mut(idx) {
                        hs.epoch += 1;
                        hs.success_scoped = false;
                    }
                    faults.churn_crashes += 1;
                    trace.churn_crash(cslot, cid);
                }
            }
            // Re-wake crashed stations fated to return at or before t, as
            // fresh protocol instances under the re-wake seed stream (the
            // old instance's state died with it).
            while let Some(&(rslot, rid)) = rewakes.get(next_rewake) {
                if rslot > t {
                    break;
                }
                next_rewake += 1;
                let mut station = protocol.station(rid, derive_seed(rewake_seed, u64::from(rid.0)));
                station.wake(rslot);
                hint_states.push(HintState::new());
                if sparse {
                    policy.win_cost += policy.p.hint_cost;
                    if arm(
                        station.as_mut(),
                        awake.len(),
                        t,
                        &mut heap,
                        &mut hint_states,
                        &mut success_scoped,
                    )
                    .is_err()
                    {
                        sparse = false;
                        locked = true;
                        heap.clear();
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t,
                            dense: true,
                        });
                    }
                }
                awake.push((rid, station, 0));
                faults.churn_rewakes += 1;
                trace.churn_rewake(rslot, rid);
            }
            peak_units = peak_units.max(awake.len() as u64);
            if trace.wants(TraceKind::Watermark) {
                let (h, u) = (heap.len() as u64, awake.len() as u64);
                if h > wm_heap || u > wm_units {
                    wm_heap = wm_heap.max(h);
                    wm_units = wm_units.max(u);
                    trace.engine_event(TraceEvent::Watermark {
                        slot: t,
                        heap: wm_heap,
                        units: wm_units,
                    });
                }
            }
            // Full-batch burst test: after a batch arrival, if the earliest
            // live obligation in the heap is due within resume_gap slots,
            // the heap has nothing to skip right now — run the burst dense.
            if sparse && awake.len() - batch_start >= 2 {
                while let Some(&Reverse((_, idx, epoch))) = heap.peek() {
                    if hint_states[idx].epoch == epoch {
                        break;
                    }
                    heap.pop();
                }
                if let Some(&Reverse((due, _, _))) = heap.peek() {
                    if due < t + policy.p.resume_gap {
                        sparse = false;
                        mode_switches += 1;
                        policy.start_burst(awake.len());
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t,
                            dense: true,
                        });
                        trace.engine_event(TraceEvent::BurstOpen {
                            slot: t,
                            window: policy.burst_len,
                        });
                        clear_sparse_state(&mut heap, &mut hint_states, &mut success_scoped);
                    }
                }
            }

            // Fast-forward: if nobody is awake, jump to the next wake-up —
            // but never past the slot cap. (Cannot happen before the first
            // success since `s` is the first wake and stations stay awake,
            // but keep the engine total.)
            if awake.is_empty() {
                match wakes.get(next_wake) {
                    Some(&(_, sigma)) => {
                        let gap = sigma - t;
                        let remaining = self.cfg.max_slots - slots_simulated;
                        if gap >= remaining {
                            trace.silence(t, remaining);
                            slots_simulated += remaining;
                            skipped_slots += remaining;
                            break 'slots;
                        }
                        trace.silence(t, gap);
                        slots_simulated += gap;
                        skipped_slots += gap;
                        t = sigma;
                        continue 'slots;
                    }
                    None => break 'slots,
                }
            }

            if sparse {
                // Drop heap entries superseded by a newer hint epoch so the
                // peeked due slot is a live one.
                while let Some(&Reverse((_, idx, epoch))) = heap.peek() {
                    if hint_states[idx].epoch == epoch {
                        break;
                    }
                    heap.pop();
                }
                // Next event: the earliest due entry, arrival, or churn
                // event (crash/re-wake slots are processed at the loop top,
                // so they must be landed on exactly — never skipped over).
                let next_due = heap.peek().map(|&Reverse((slot, _, _))| slot);
                let next_arrival = wakes.get(next_wake).map(|&(_, sigma)| sigma);
                let next_churn = crashes
                    .get(next_crash)
                    .map(|&(slot, _)| slot)
                    .into_iter()
                    .chain(rewakes.get(next_rewake).map(|&(slot, _)| slot))
                    .min();
                let event = match next_due
                    .into_iter()
                    .chain(next_arrival)
                    .chain(next_churn)
                    .min()
                {
                    Some(e) => e,
                    None => {
                        // No due entries, nobody else wakes, and no churn
                        // pending: no station will transmit, so no event —
                        // not even a success that could void a
                        // NextSuccess-scoped hint — can occur. The rest of
                        // the run is provably silent.
                        let remaining = self.cfg.max_slots - slots_simulated;
                        record_silence(&mut transcript, t, remaining);
                        trace.silence(t, remaining);
                        slots_simulated += remaining;
                        silent_slots += remaining;
                        skipped_slots += remaining;
                        break 'slots;
                    }
                };
                debug_assert!(event >= t, "event {event} behind clock {t}");
                if event > t {
                    // Skip the provably silent gap [t, event), respecting
                    // the cap. Silence cannot void any scope: NextSuccess
                    // hints survive (no transmission ⇒ no success) and
                    // Slot(t') boundaries are themselves heap entries.
                    let gap = event - t;
                    let remaining = self.cfg.max_slots - slots_simulated;
                    let take = gap.min(remaining);
                    record_silence(&mut transcript, t, take);
                    trace.silence(t, take);
                    slots_simulated += take;
                    silent_slots += take;
                    skipped_slots += take;
                    t += take;
                    continue 'slots; // re-checks the cap / wakes arrivals
                }

                // Event at t: serve the due entries. A re-query may install
                // a hint due at t again (e.g. a scope boundary answering
                // "transmitting right now"), so iterate to a fixpoint.
                transmitters.clear();
                transmitted_flags.clear();
                polled.clear();
                loop {
                    requery.clear();
                    while let Some(&Reverse((slot, idx, epoch))) = heap.peek() {
                        if slot != t {
                            break;
                        }
                        heap.pop();
                        if hint_states[idx].epoch != epoch {
                            continue; // stale entry
                        }
                        match hint_states[idx].due {
                            Due::Poll => polled.push(idx),
                            Due::Requery => requery.push(idx),
                        }
                    }
                    if requery.is_empty() {
                        break;
                    }
                    trace.engine_event(TraceEvent::HintRequery {
                        slot: t,
                        queries: requery.len() as u64,
                    });
                    for &idx in &requery {
                        policy.win_cost += policy.p.hint_cost;
                        if arm(
                            awake[idx].1.as_mut(),
                            idx,
                            t,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                        {
                            sparse = false;
                            locked = true;
                            heap.clear();
                            break;
                        }
                    }
                    if !sparse {
                        break;
                    }
                }
                if !sparse {
                    continue 'slots; // dense path simulates slot t itself
                }
                if polled.is_empty() {
                    // Pure re-query event: nobody claimed a transmission at
                    // t after all, so the slot joins the next silent gap
                    // instead of being simulated individually. Re-query
                    // storms still count as sparse work, so a protocol that
                    // calls back every slot trips the yield test too.
                    if policy.should_burst(slots_simulated, awake.len()) {
                        sparse = false;
                        mode_switches += 1;
                        policy.start_burst(awake.len());
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t,
                            dense: true,
                        });
                        trace.engine_event(TraceEvent::BurstOpen {
                            slot: t,
                            window: policy.burst_len,
                        });
                        clear_sparse_state(&mut heap, &mut hint_states, &mut success_scoped);
                    }
                    continue 'slots;
                }

                // Transmission event at t: poll exactly the scheduled
                // stations (everyone else is silent by promise).
                policy.win_cost += polled.len() as u64;
                for &idx in &polled {
                    let (id, station, tx_count) = &mut awake[idx];
                    polls += 1;
                    let transmit = station.act(t).is_transmit();
                    transmitted_flags.push(transmit);
                    if transmit {
                        transmitters.push(*id);
                        *tx_count += 1;
                        transmissions += 1;
                    }
                }
                transmitters.sort_unstable();
                let outcome = apply_channel(
                    &self.cfg.channel,
                    fault_seed,
                    t,
                    SlotOutcome::resolve(transmitters.clone()),
                    &mut faults,
                    &mut trace,
                );
                let mishear = mishear_armed
                    && outcome == SlotOutcome::Silence
                    && self.cfg.channel.mishears_silence(fault_seed, t);
                if mishear {
                    faults.false_collisions += 1;
                }

                if let Some(tr) = transcript.as_mut() {
                    tr.push(SlotRecord {
                        slot: t,
                        transmitters: transmitters.clone(),
                        outcome: outcome.clone(),
                    });
                }

                slots_simulated += 1;
                if let Some(w) = outcome.success_id() {
                    trace.success(t, w);
                    if first_success.is_none() {
                        first_success = Some(t);
                        winner = Some(w);
                    }
                    if !resolved.iter().any(|&(id, _)| id == w) {
                        resolved.push((w, t));
                    }
                    if self.cfg.stop == StopRule::FirstSuccess {
                        break 'slots; // matches dense: no feedback delivered
                    }

                    // AllResolved: a success is heard by every station, so
                    // feedback goes to the whole floor (matching dense; a
                    // non-polled station cannot have transmitted).
                    for (j, (_, station, _)) in awake.iter_mut().enumerate() {
                        let transmitted = polled
                            .iter()
                            .position(|&idx| idx == j)
                            .is_some_and(|p| transmitted_flags[p]);
                        let fb = self.cfg.feedback.perceive(&outcome, transmitted);
                        station.feedback(t, fb);
                    }
                    if resolved.len() == total_stations && next_wake == wakes.len() {
                        all_resolved_at = Some(t);
                        break 'slots;
                    }

                    // The success event invalidates every NextSuccess-scoped
                    // hint; re-query exactly those stations (plus the polled
                    // ones, whose entries were consumed) from t + 1.
                    requery.clear();
                    for idx in success_scoped.drain(..) {
                        if hint_states[idx].success_scoped {
                            hint_states[idx].success_scoped = false;
                            requery.push(idx);
                        }
                    }
                    requery.extend(polled.iter().copied());
                    requery.sort_unstable();
                    requery.dedup();
                    trace.engine_event(TraceEvent::HintRequery {
                        slot: t + 1,
                        queries: requery.len() as u64,
                    });
                    for &idx in &requery {
                        if arm(
                            awake[idx].1.as_mut(),
                            idx,
                            t + 1,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                        {
                            sparse = false;
                            locked = true;
                            heap.clear();
                            break;
                        }
                    }

                    // A success reshapes the hint landscape (retirement,
                    // rescheduling): restart the yield observation window
                    // rather than letting pre-success burstiness linger —
                    // and the broadcast re-arms above are the mandatory
                    // price of the event, not per-slot overhead, so they
                    // are not charged to the window either.
                    policy.win_cost = 0;
                    policy.win_start = slots_simulated;
                    t += 1;
                    continue 'slots;
                }

                match &outcome {
                    SlotOutcome::Collision(_) => {
                        collisions += 1;
                        trace.collision(t, transmitters.len() as u64);
                    }
                    SlotOutcome::Silence => {
                        silent_slots += 1;
                        trace.silence(t, 1);
                    }
                    SlotOutcome::Success(_) => unreachable!("handled above"),
                }

                // Non-success feedback goes only to the polled stations:
                // Forever-scoped stations are oblivious, NextSuccess-scoped
                // ones must ignore anything but a success, by contract.
                for (&idx, &transmitted) in polled.iter().zip(transmitted_flags.iter()) {
                    let fb = if mishear {
                        Feedback::Noise
                    } else {
                        self.cfg.feedback.perceive(&outcome, transmitted)
                    };
                    awake[idx].1.feedback(t, fb);
                }

                // Re-arm the polled stations' hints (their entries were
                // consumed); nothing else was invalidated.
                trace.engine_event(TraceEvent::HintRequery {
                    slot: t + 1,
                    queries: polled.len() as u64,
                });
                for &idx in &polled {
                    policy.win_cost += policy.p.hint_cost;
                    if arm(
                        awake[idx].1.as_mut(),
                        idx,
                        t + 1,
                        &mut heap,
                        &mut hint_states,
                        &mut success_scoped,
                    )
                    .is_err()
                    {
                        sparse = false;
                        locked = true;
                        heap.clear();
                        break;
                    }
                }

                if sparse && policy.should_burst(slots_simulated, awake.len()) {
                    sparse = false;
                    mode_switches += 1;
                    policy.start_burst(awake.len());
                    trace.engine_event(TraceEvent::ModeSwitch {
                        slot: t + 1,
                        dense: true,
                    });
                    trace.engine_event(TraceEvent::BurstOpen {
                        slot: t + 1,
                        window: policy.burst_len,
                    });
                    clear_sparse_state(&mut heap, &mut hint_states, &mut success_scoped);
                }
                t += 1;
                continue 'slots;
            }

            // Dense stepping. When the word kernel is live — always under
            // EngineMode::Bitslab, and in Auto burst windows that survived
            // their scalar warmup, until a TxHint::Dense answer — whole
            // tiles of up to 64 slots are
            // resolved by popcount over transposed per-station bit columns,
            // materializing feedback/trace only on real channel events.
            // Otherwise one scalar slot is polled. Both converge on the
            // shared adaptive tail below.
            let kernel_live = !kernel_dead
                && match self.cfg.engine {
                    EngineMode::Bitslab => true,
                    EngineMode::Auto => !locked && policy.kernel_warm(),
                    EngineMode::Dense => false,
                };
            let mut stepped = 1u64; // slots consumed by this iteration
            let mut step_success = false;
            let mut ran_tile = false;
            if kernel_live {
                // Tile horizon: the ramp width, then stop at the next
                // arrival (the wake loop at the top of 'slots admits
                // batches), the slot cap, and — under Auto — the burst
                // window's own expiry.
                word_ramp = if word_cont == t {
                    (word_ramp * 2).min(64)
                } else {
                    WORD_RAMP_SEED
                };
                let mut tile_h = t + word_ramp;
                if let Some(&(_, sigma)) = wakes.get(next_wake) {
                    tile_h = tile_h.min(sigma);
                }
                // Churn events are processed at the loop top: never tile
                // past a pending crash or re-wake slot.
                if let Some(&(crash, _)) = crashes.get(next_crash) {
                    tile_h = tile_h.min(crash);
                }
                if let Some(&(rewake, _)) = rewakes.get(next_rewake) {
                    tile_h = tile_h.min(rewake);
                }
                tile_h = tile_h.min(t + (self.cfg.max_slots - slots_simulated));
                if self.cfg.engine == EngineMode::Auto {
                    tile_h = tile_h.min(t + policy.burst_remaining.max(1));
                }

                // Memos are claims carried over from earlier tiles; they
                // are coherent only when this tile starts exactly where the
                // previous one ended (no sparse interlude, no re-probe).
                if word_cont != t {
                    word_memos.clear();
                }
                word_memos.resize(awake.len(), WordMemo::Stale);
                word_generic.clear();
                word_generic.resize(awake.len(), false);
                word_cols.clear();
                word_cols.resize(awake.len(), 0);

                // Fill one column of transmit bits per station. Each claim
                // is scoped per the TxHint obligations, and `tile_h` shrinks
                // to the first slot not covered by some station's claim —
                // one query per station per tile, never a lookahead (the
                // `after` arguments of `next_transmission` must stay
                // non-decreasing even if a mid-tile success re-probes).
                let mut fill_err = false;
                for (idx, (_, station, _)) in awake.iter_mut().enumerate() {
                    // A still-valid claim from a previous tile?
                    let mut claim = match word_memos[idx] {
                        WordMemo::Hint { next, until } => {
                            let live = match until {
                                Until::Forever | Until::NextSuccess => true,
                                Until::Slot(tb) => t < tb,
                            };
                            debug_assert!(
                                next.is_none_or(|p| p >= t),
                                "stale word memo: next={next:?} at tile base {t}"
                            );
                            live.then_some((next, until))
                        }
                        WordMemo::Stale => None,
                    };
                    if claim.is_none() {
                        // Protocol-level batch fill first…
                        if let Some(w) = station.fill_tx_word(t, (tile_h - t) as u32) {
                            let (mask, horizon) = match w.until {
                                Until::Slot(tb) if tb <= t => {
                                    fill_err = true;
                                    break;
                                }
                                Until::Slot(tb) => (low_mask(tb - t), tb),
                                Until::Forever | Until::NextSuccess => (u64::MAX, t + 64),
                            };
                            word_cols[idx] = w.bits & mask;
                            tile_h = tile_h.min(horizon);
                            continue;
                        }
                        // …generic per-station fill from the hint protocol.
                        claim = match station.next_transmission(t) {
                            TxHint::Dense => {
                                fill_err = true;
                                break;
                            }
                            TxHint::At(p, until) => {
                                let p = p.max(t);
                                match until {
                                    Until::Slot(tb) if tb <= t => {
                                        fill_err = true;
                                        break;
                                    }
                                    // Scope boundary before the claimed
                                    // transmission: only the silence up to
                                    // `tb` is usable.
                                    Until::Slot(tb) if p >= tb => Some((None, until)),
                                    _ => Some((Some(p), until)),
                                }
                            }
                            TxHint::Never(until) => match until {
                                Until::Slot(tb) if tb <= t => {
                                    fill_err = true;
                                    break;
                                }
                                _ => Some((None, until)),
                            },
                        };
                    }
                    let (next, until) = claim.unwrap();
                    word_generic[idx] = true;
                    word_memos[idx] = WordMemo::Hint { next, until };
                    match next {
                        Some(p) => {
                            if p - t < 64 {
                                word_cols[idx] = 1u64 << (p - t);
                            }
                            // Nothing is claimed past the transmission.
                            tile_h = tile_h.min(p + 1);
                        }
                        None => {
                            if let Until::Slot(tb) = until {
                                tile_h = tile_h.min(tb);
                            }
                        }
                    }
                }

                if fill_err {
                    // Same permanent lock as a TxHint::Dense answer on the
                    // sparse path: scalar dense polling from here on.
                    locked = true;
                    kernel_dead = true;
                    heap.clear();
                } else {
                    ran_tile = true;
                    let w = (tile_h - t) as usize;
                    debug_assert!(0 < w && w <= 64, "tile width {w}");
                    let wmask = low_mask(w as u64);
                    // Transpose station-major columns into slot-major rows:
                    // after transposing each 64-station block, word `j` of a
                    // block holds that block's transmit bits for slot t + j.
                    let nblocks = awake.len().div_ceil(64);
                    word_blocks.clear();
                    word_blocks.resize(nblocks, [0u64; 64]);
                    for (i, &col) in word_cols.iter().enumerate() {
                        word_blocks[i / 64][i % 64] = col & wmask;
                    }
                    for blk in word_blocks.iter_mut() {
                        transpose64(blk);
                    }

                    let mut tile_end = t + w as u64;
                    let mut silent_from = t;
                    let mut silent_run = 0u64;
                    let mut j = 0usize;
                    'tile: while j < w {
                        let slot = t + j as u64;
                        let mut busy = 0u32;
                        for blk in word_blocks.iter() {
                            busy += blk[j].count_ones();
                        }
                        if busy == 0 {
                            if silent_run == 0 {
                                silent_from = slot;
                            }
                            silent_run += 1;
                            j += 1;
                            continue 'tile;
                        }
                        // A real channel event: flush the silent prefix,
                        // then materialize exactly this slot.
                        if silent_run > 0 {
                            record_silence(&mut transcript, silent_from, silent_run);
                            trace.silence(silent_from, silent_run);
                            slots_simulated += silent_run;
                            silent_slots += silent_run;
                            word_slots += silent_run;
                            silent_run = 0;
                        }
                        transmitters.clear();
                        word_tx_idx.clear();
                        for (b, blk) in word_blocks.iter().enumerate() {
                            let mut bits = blk[j];
                            while bits != 0 {
                                let idx = b * 64 + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                word_tx_idx.push(idx);
                            }
                        }
                        for &idx in &word_tx_idx {
                            let (id, station, tx_count) = &mut awake[idx];
                            if word_generic[idx] {
                                // The generic fill promised a transmission
                                // here: give the station its act() call
                                // (the sparse path's lifecycle) and consume
                                // the claim.
                                polls += 1;
                                let acted = station.act(slot).is_transmit();
                                debug_assert!(acted, "hinted transmission at {slot} not acted on");
                                let _ = acted;
                                word_memos[idx] = WordMemo::Stale;
                            }
                            transmitters.push(*id);
                            *tx_count += 1;
                            transmissions += 1;
                        }
                        transmitters.sort_unstable();
                        let outcome = apply_channel(
                            &self.cfg.channel,
                            fault_seed,
                            slot,
                            SlotOutcome::resolve(transmitters.clone()),
                            &mut faults,
                            &mut trace,
                        );
                        if let Some(tr) = transcript.as_mut() {
                            tr.push(SlotRecord {
                                slot,
                                transmitters: transmitters.clone(),
                                outcome: outcome.clone(),
                            });
                        }
                        slots_simulated += 1;
                        word_slots += 1;
                        match &outcome {
                            SlotOutcome::Success(wid) => {
                                let wid = *wid;
                                trace.success(slot, wid);
                                if first_success.is_none() {
                                    first_success = Some(slot);
                                    winner = Some(wid);
                                }
                                if !resolved.iter().any(|&(id, _)| id == wid) {
                                    resolved.push((wid, slot));
                                }
                                step_success = true;
                                if self.cfg.stop == StopRule::FirstSuccess {
                                    break 'slots; // matches scalar: no feedback
                                }
                                // AllResolved: the success is heard by the
                                // whole floor (matching both scalar paths).
                                let widx = word_tx_idx[0];
                                for (i2, (_, station, _)) in awake.iter_mut().enumerate() {
                                    let fb = self.cfg.feedback.perceive(&outcome, i2 == widx);
                                    station.feedback(slot, fb);
                                }
                                if resolved.len() == total_stations && next_wake == wakes.len() {
                                    all_resolved_at = Some(slot);
                                    break 'slots;
                                }
                                // The success voids every NextSuccess-scoped
                                // claim; close the tile so the next one
                                // refills from slot + 1.
                                for m in word_memos.iter_mut() {
                                    if let WordMemo::Hint {
                                        until: Until::NextSuccess,
                                        ..
                                    } = m
                                    {
                                        *m = WordMemo::Stale;
                                    }
                                }
                                tile_end = slot + 1;
                                break 'tile;
                            }
                            SlotOutcome::Collision(_) => {
                                collisions += 1;
                                trace.collision(slot, transmitters.len() as u64);
                                // Non-success feedback goes only to the
                                // transmitters (the sparse-path contract;
                                // everyone else ignores it by scope).
                                for &idx in &word_tx_idx {
                                    let fb = self.cfg.feedback.perceive(&outcome, true);
                                    awake[idx].1.feedback(slot, fb);
                                }
                            }
                            SlotOutcome::Silence => {
                                // busy > 0, yet silence: an erased success.
                                // The slot is heard silent; the transmitter
                                // gets silence feedback and the run goes on.
                                silent_slots += 1;
                                trace.silence(slot, 1);
                                let mishear = mishear_armed
                                    && self.cfg.channel.mishears_silence(fault_seed, slot);
                                if mishear {
                                    faults.false_collisions += 1;
                                }
                                for &idx in &word_tx_idx {
                                    let fb = if mishear {
                                        Feedback::Noise
                                    } else {
                                        self.cfg.feedback.perceive(&outcome, true)
                                    };
                                    if let Some(entry) = awake.get_mut(idx) {
                                        entry.1.feedback(slot, fb);
                                    }
                                }
                            }
                        }
                        j += 1;
                    }
                    if silent_run > 0 {
                        record_silence(&mut transcript, silent_from, silent_run);
                        trace.silence(silent_from, silent_run);
                        slots_simulated += silent_run;
                        silent_slots += silent_run;
                        word_slots += silent_run;
                    }
                    stepped = tile_end - t;
                    t = tile_end;
                    word_cont = tile_end;
                }
            }
            if !ran_tile {
                // Scalar dense slot: poll every awake station.
                transmitters.clear();
                transmitted_flags.clear();
                for (id, station, tx_count) in awake.iter_mut() {
                    polls += 1;
                    let transmit = station.act(t).is_transmit();
                    transmitted_flags.push(transmit);
                    if transmit {
                        transmitters.push(*id);
                        *tx_count += 1;
                        transmissions += 1;
                    }
                }
                transmitters.sort_unstable();
                let outcome = apply_channel(
                    &self.cfg.channel,
                    fault_seed,
                    t,
                    SlotOutcome::resolve(transmitters.clone()),
                    &mut faults,
                    &mut trace,
                );
                let mishear = mishear_armed
                    && outcome == SlotOutcome::Silence
                    && self.cfg.channel.mishears_silence(fault_seed, t);
                if mishear {
                    faults.false_collisions += 1;
                }

                if let Some(tr) = transcript.as_mut() {
                    tr.push(SlotRecord {
                        slot: t,
                        transmitters: transmitters.clone(),
                        outcome: outcome.clone(),
                    });
                }

                slots_simulated += 1;
                dense_steps += 1;
                match &outcome {
                    SlotOutcome::Success(w) => {
                        step_success = true;
                        trace.success(t, *w);
                        if first_success.is_none() {
                            first_success = Some(t);
                            winner = Some(*w);
                        }
                        if !resolved.iter().any(|&(id, _)| id == *w) {
                            resolved.push((*w, t));
                        }
                        match self.cfg.stop {
                            StopRule::FirstSuccess => break 'slots,
                            StopRule::AllResolved => {
                                if resolved.len() == total_stations && next_wake == wakes.len() {
                                    all_resolved_at = Some(t);
                                    // Deliver the final feedback so the winner
                                    // learns of its own success, then stop.
                                    for ((_, station, _), &transmitted) in
                                        awake.iter_mut().zip(transmitted_flags.iter())
                                    {
                                        let fb = self.cfg.feedback.perceive(&outcome, transmitted);
                                        station.feedback(t, fb);
                                    }
                                    break 'slots;
                                }
                            }
                        }
                    }
                    SlotOutcome::Collision(_) => {
                        collisions += 1;
                        trace.collision(t, transmitters.len() as u64);
                    }
                    SlotOutcome::Silence => {
                        silent_slots += 1;
                        trace.silence(t, 1);
                    }
                }

                // Deliver feedback to every awake station.
                for ((_, station, _), &transmitted) in
                    awake.iter_mut().zip(transmitted_flags.iter())
                {
                    let fb = if mishear {
                        Feedback::Noise
                    } else {
                        self.cfg.feedback.perceive(&outcome, transmitted)
                    };
                    station.feedback(t, fb);
                }

                t += 1;
            }

            // Adaptive burst window bookkeeping (never when dense is locked
            // by EngineMode::Dense / EngineMode::Bitslab or a TxHint::Dense
            // answer): at window expiry — and early at success events, which
            // reshape the hint landscape (retirement) — re-probe whether
            // sparsity pays again.
            if !locked {
                policy.burst_remaining = policy.burst_remaining.saturating_sub(stepped);
                if policy.burst_remaining == 0 || step_success {
                    // Re-query every awake station for a fresh hint from t.
                    clear_sparse_state(&mut heap, &mut hint_states, &mut success_scoped);
                    trace.engine_event(TraceEvent::HintRequery {
                        slot: t,
                        queries: awake.len() as u64,
                    });
                    let mut hints_ok = true;
                    for (idx, (_, station, _)) in awake.iter_mut().enumerate() {
                        if arm(
                            station.as_mut(),
                            idx,
                            t,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                        {
                            hints_ok = false;
                            break;
                        }
                    }
                    if !hints_ok {
                        locked = true;
                        heap.clear();
                    } else {
                        while let Some(&Reverse((_, idx, epoch))) = heap.peek() {
                            if hint_states[idx].epoch == epoch {
                                break;
                            }
                            heap.pop();
                        }
                        let next_due = heap.peek().map(|&Reverse((slot, _, _))| slot);
                        let next_arrival = wakes.get(next_wake).map(|&(_, sigma)| sigma);
                        let event = match (next_due, next_arrival) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        // Resume sparse only when there is an actual gap to
                        // skip (or provable silence to the cap).
                        if event.is_none_or(|e| e >= t + policy.p.resume_gap) {
                            sparse = true;
                            mode_switches += 1;
                            policy.resume_sparse(slots_simulated);
                            trace.engine_event(TraceEvent::BurstClose { slot: t });
                            trace.engine_event(TraceEvent::ModeSwitch {
                                slot: t,
                                dense: false,
                            });
                        } else {
                            policy.backoff(awake.len());
                            heap.clear();
                            trace.engine_event(TraceEvent::BurstOpen {
                                slot: t,
                                window: policy.burst_len,
                            });
                        }
                    }
                }
            }
        }

        trace.run_end(slots_simulated, first_success);
        Ok(Outcome {
            s,
            first_success,
            winner,
            slots_simulated,
            transmissions,
            per_station_tx: if self.cfg.per_station_detail {
                if rewakes.is_empty() {
                    awake.iter().map(|(id, _, tx)| (*id, *tx)).collect()
                } else {
                    // Re-wakes duplicate IDs in `awake`: merge each ID's
                    // counts into its first occurrence (wake order).
                    let mut merged: Vec<(StationId, u64)> = Vec::with_capacity(awake.len());
                    for (id, _, tx) in awake.iter() {
                        match merged.iter_mut().find(|(mid, _)| mid == id) {
                            Some((_, count)) => *count += *tx,
                            None => merged.push((*id, *tx)),
                        }
                    }
                    merged
                }
            } else {
                Vec::new()
            },
            collisions,
            silent_slots,
            polls,
            skipped_slots,
            dense_steps,
            word_slots,
            mode_switches,
            peak_units,
            transcript,
            resolved,
            all_resolved_at,
            faults,
        })
    }

    /// Run `protocol` against `pattern` under an explicit [`Population`]
    /// strategy — the **class engine**. Stations waking at the same slot
    /// are admitted as weighted units ([`ClassStation`]s); the run loop
    /// mirrors the concrete engine's sparse event discipline (epoch-stamped
    /// min-heap of per-unit due slots, fixpoint re-query at events, success
    /// broadcast under [`StopRule::AllResolved`]) with one entry per *unit*
    /// rather than per station, and falls back to per-slot dense polling
    /// permanently when any unit answers [`TxHint::Dense`]. No adaptive
    /// burst policy runs here — outcomes are path-independent, so only the
    /// work counters differ from the concrete engine.
    ///
    /// Outcomes and transcripts are bit-identical to
    /// [`run`](Simulator::run) under [`PopulationMode::Concrete`] for the
    /// same config; memory is O(live units), reported via
    /// [`Outcome::peak_units`].
    ///
    /// **Split-budget guard.** A class run whose population fragments into
    /// Ω(members) singletons pays per-unit split bookkeeping *on top of*
    /// per-station work; past [`SimConfig::split_budget`] live units the
    /// attempt is abandoned wholesale and the pattern re-runs on the
    /// concrete engine. Outcomes are identical either way; trace output is
    /// transactional (the abandoned attempt leaves no events), and only the
    /// work counters show the flip ([`Outcome::peak_units`] ≤ the budget,
    /// no class splits).
    ///
    /// [`ClassStation`]: crate::population::ClassStation
    pub fn run_with_population<T: Tracer + ?Sized>(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
        population: &mut dyn Population,
        tracer: &mut T,
    ) -> Result<Outcome, SimError> {
        let budget = self
            .cfg
            .split_budget
            .unwrap_or_else(|| (pattern.k() as u64 / 2).max(4096));
        let mut buffer = BufferTracer::new(tracer);
        match self.run_classes(protocol, pattern, run_seed, population, &mut buffer, budget)? {
            ClassRun::Done(out) => {
                buffer.flush();
                Ok(*out)
            }
            ClassRun::BudgetExceeded => {
                buffer.discard();
                self.run_concrete(protocol, pattern, run_seed, tracer)
            }
        }
    }

    /// The class engine proper: one attempt under a live-unit `budget`.
    /// Returns [`ClassRun::BudgetExceeded`] the moment the unit count
    /// crosses the budget — at batch admission or at any split site — so
    /// the wrapper can fall back to the concrete engine.
    fn run_classes<T: Tracer + ?Sized>(
        &self,
        protocol: &dyn Protocol,
        pattern: &WakePattern,
        run_seed: u64,
        population: &mut dyn Population,
        tracer: &mut T,
        budget: u64,
    ) -> Result<ClassRun, SimError> {
        use crate::population::ClassStation;

        self.validate(pattern)?;
        let mut trace = TraceCtx::new(tracer);
        let (mut wm_heap, mut wm_units) = (0u64, 0u64);

        let s = pattern.s();
        let batches = pattern.batches_by_slot();
        let total_stations = pattern.k();
        let mut next_batch = 0usize; // index into `batches`
        let mut units: Vec<Box<dyn ClassStation>> = Vec::new();
        let mut transcript = self.cfg.record_transcript.then(Transcript::new);
        let detail = self.cfg.per_station_detail;
        // Transcripts and per-station detail need individual transmitter
        // IDs — as does capture, whose winner is drawn from the contender
        // list; mega runs use weighted counts only.
        let mut tally =
            TxTally::new(detail || self.cfg.record_transcript || self.cfg.channel.capture_ppm > 0);

        let mut transmissions = 0u64;
        let mut collisions = 0u64;
        let mut silent_slots = 0u64;
        let mut first_success = None;
        let mut winner = None;
        let mut slots_simulated = 0u64;
        let mut polls = 0u64;
        let mut skipped_slots = 0u64;
        let mut dense_steps = 0u64;
        let mut peak_units = 0u64;
        let mut resolved: Vec<(StationId, Slot)> = Vec::new();
        let mut all_resolved_at = None;

        // Channel-fault and churn plumbing — same derivations as the
        // concrete engine, so both perturb identical slots and process
        // identical crash/re-wake events.
        let fault_seed = derive_seed(run_seed, FAULT_STREAM);
        let mishear_armed = self.cfg.channel.false_collision_ppm > 0
            && self.cfg.feedback == FeedbackModel::CollisionDetection;
        let mut faults = FaultCounts::default();
        let mut crashes: Vec<(Slot, StationId)> = Vec::new();
        let mut rewakes: Vec<(Slot, StationId)> = Vec::new();
        if !self.cfg.churn.is_empty() {
            for (sigma, members) in batches.iter() {
                for id in members.iter() {
                    if let Some((crash, rewake)) = self.cfg.churn.fate(run_seed, id, *sigma) {
                        crashes.push((crash, id));
                        if let Some(r) = rewake {
                            rewakes.push((r, id));
                        }
                    }
                }
            }
            crashes.sort_unstable();
            rewakes.sort_unstable();
        }
        let rewake_seed = derive_seed(run_seed, REWAKE_STREAM);
        let mut next_crash = 0usize;
        let mut next_rewake = 0usize;

        // Per-station transmission counts in wake order (detail mode only —
        // the table is O(k) by nature).
        let mut tx_counts: Vec<(StationId, u64)> = Vec::new();
        // lint: allow(default-hash-state) — lookup-only index into the wake-ordered tx_counts vec; never iterated
        let mut tx_index: HashMap<StationId, usize> = HashMap::new();

        // Sparse until any unit answers TxHint::Dense or a malformed scope,
        // which locks dense polling permanently (no adaptive policy here).
        let mut sparse = self.cfg.engine == EngineMode::Auto;
        // Min-heap of (due slot, index into `units`, hint epoch) — exactly
        // the concrete engine's discipline, one entry per unit.
        let mut heap: BinaryHeap<Reverse<(Slot, usize, u64)>> = BinaryHeap::new();
        let mut hint_states: Vec<HintState> = Vec::new();
        let mut success_scoped: Vec<usize> = Vec::new();
        let mut polled: Vec<usize> = Vec::new();
        let mut requery: Vec<usize> = Vec::new();

        // Append `count` silent-slot records starting at `from`.
        fn record_silence(transcript: &mut Option<Transcript>, from: Slot, count: u64) {
            if let Some(tr) = transcript.as_mut() {
                for slot in from..from + count {
                    tr.push(SlotRecord {
                        slot,
                        transmitters: Vec::new(),
                        outcome: SlotOutcome::Silence,
                    });
                }
            }
        }

        let mut t = s;
        'slots: while slots_simulated < self.cfg.max_slots {
            // Admit batches due at or before t (batches are slot-sorted).
            while next_batch < batches.len() && batches[next_batch].0 <= t {
                let (sigma, members) = &batches[next_batch];
                trace.wake(t, members.count());
                if detail {
                    for id in members.iter() {
                        tx_index.insert(id, tx_counts.len());
                        tx_counts.push((id, 0));
                    }
                }
                for mut unit in population.admit(protocol, members, run_seed) {
                    unit.wake(*sigma);
                    let idx = units.len();
                    hint_states.push(HintState::new());
                    if sparse
                        && install_hint(
                            unit.next_transmission(t),
                            idx,
                            t,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                    {
                        sparse = false;
                        heap.clear();
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t,
                            dense: true,
                        });
                    }
                    units.push(unit);
                }
                next_batch += 1;
            }
            // Crash stations fated to die at or before t: remove the member
            // from its class. Classes that cannot (protocol-owned
            // aggregates answer [`MemberRemoval::Unsupported`]) abandon the
            // attempt wholesale — the concrete engine handles churn
            // natively. An emptied unit is replaced by an inert
            // [`DeadClass`] so indices stay stable.
            while let Some(&(cslot, cid)) = crashes.get(next_crash) {
                if cslot > t {
                    break;
                }
                next_crash += 1;
                let mut hit = None;
                for (idx, unit) in units.iter_mut().enumerate() {
                    match unit.remove_member(cid) {
                        MemberRemoval::NotMember => {}
                        MemberRemoval::Removed { emptied } => {
                            hit = Some((idx, emptied));
                            break;
                        }
                        MemberRemoval::Unsupported => return Ok(ClassRun::BudgetExceeded),
                    }
                }
                if let Some((idx, emptied)) = hit {
                    if let Some(unit) = units.get_mut(idx) {
                        if emptied {
                            *unit = Box::new(DeadClass);
                        }
                        if sparse {
                            // The unit's schedule changed: supersede its
                            // hint and re-arm it from t.
                            if install_hint(
                                unit.next_transmission(t),
                                idx,
                                t,
                                &mut heap,
                                &mut hint_states,
                                &mut success_scoped,
                            )
                            .is_err()
                            {
                                sparse = false;
                                heap.clear();
                                trace.engine_event(TraceEvent::ModeSwitch {
                                    slot: t,
                                    dense: true,
                                });
                            }
                        } else if let Some(hs) = hint_states.get_mut(idx) {
                            hs.epoch += 1;
                            hs.success_scoped = false;
                        }
                    }
                }
                // Count and trace the crash even when no unit held the
                // member (it already retired out of its class): the
                // concrete engine keeps retired stations in `awake`, so it
                // counts the crash — fault accounting is engine-path-
                // independent.
                faults.churn_crashes += 1;
                trace.churn_crash(cslot, cid);
            }
            // Re-wake crashed stations as fresh single-member units under
            // the re-wake seed stream (matching the concrete engine's
            // re-wake instances). Transmission counts accumulate into the
            // station's original detail row.
            while let Some(&(rslot, rid)) = rewakes.get(next_rewake) {
                if rslot > t {
                    break;
                }
                next_rewake += 1;
                if detail && !tx_index.contains_key(&rid) {
                    tx_index.insert(rid, tx_counts.len());
                    tx_counts.push((rid, 0));
                }
                let members = Members::from_sorted_ids(&[rid]);
                for mut unit in population.admit(protocol, &members, rewake_seed) {
                    unit.wake(rslot);
                    let idx = units.len();
                    hint_states.push(HintState::new());
                    if sparse
                        && install_hint(
                            unit.next_transmission(t),
                            idx,
                            t,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                    {
                        sparse = false;
                        heap.clear();
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t,
                            dense: true,
                        });
                    }
                    units.push(unit);
                }
                faults.churn_rewakes += 1;
                trace.churn_rewake(rslot, rid);
            }
            if units.len() as u64 > budget {
                return Ok(ClassRun::BudgetExceeded);
            }
            peak_units = peak_units.max(units.len() as u64);
            if trace.wants(TraceKind::Watermark) {
                let (h, u) = (heap.len() as u64, units.len() as u64);
                if h > wm_heap || u > wm_units {
                    wm_heap = wm_heap.max(h);
                    wm_units = wm_units.max(u);
                    trace.engine_event(TraceEvent::Watermark {
                        slot: t,
                        heap: wm_heap,
                        units: wm_units,
                    });
                }
            }

            // Fast-forward: if nobody is awake, jump to the next batch —
            // but never past the slot cap.
            if units.is_empty() {
                match batches.get(next_batch) {
                    Some(&(sigma, _)) => {
                        let gap = sigma - t;
                        let remaining = self.cfg.max_slots - slots_simulated;
                        if gap >= remaining {
                            trace.silence(t, remaining);
                            slots_simulated += remaining;
                            skipped_slots += remaining;
                            break 'slots;
                        }
                        trace.silence(t, gap);
                        slots_simulated += gap;
                        skipped_slots += gap;
                        t = sigma;
                        continue 'slots;
                    }
                    None => break 'slots,
                }
            }

            if sparse {
                // Drop heap entries superseded by a newer hint epoch.
                while let Some(&Reverse((_, idx, epoch))) = heap.peek() {
                    if hint_states[idx].epoch == epoch {
                        break;
                    }
                    heap.pop();
                }
                let next_due = heap.peek().map(|&Reverse((slot, _, _))| slot);
                let next_arrival = batches.get(next_batch).map(|&(sigma, _)| sigma);
                let next_churn = crashes
                    .get(next_crash)
                    .map(|&(slot, _)| slot)
                    .into_iter()
                    .chain(rewakes.get(next_rewake).map(|&(slot, _)| slot))
                    .min();
                let event = match next_due
                    .into_iter()
                    .chain(next_arrival)
                    .chain(next_churn)
                    .min()
                {
                    Some(e) => e,
                    None => {
                        // No due entries, nobody else wakes, no churn
                        // pending: the rest of the run is provably silent.
                        let remaining = self.cfg.max_slots - slots_simulated;
                        record_silence(&mut transcript, t, remaining);
                        trace.silence(t, remaining);
                        slots_simulated += remaining;
                        silent_slots += remaining;
                        skipped_slots += remaining;
                        break 'slots;
                    }
                };
                debug_assert!(event >= t, "event {event} behind clock {t}");
                if event > t {
                    // Skip the provably silent gap [t, event).
                    let gap = event - t;
                    let remaining = self.cfg.max_slots - slots_simulated;
                    let take = gap.min(remaining);
                    record_silence(&mut transcript, t, take);
                    trace.silence(t, take);
                    slots_simulated += take;
                    silent_slots += take;
                    skipped_slots += take;
                    t += take;
                    continue 'slots; // re-checks the cap / batch arrivals
                }

                // Event at t: serve the due entries to a fixpoint (a
                // re-query may install a hint due at t again).
                tally.clear();
                polled.clear();
                loop {
                    requery.clear();
                    while let Some(&Reverse((slot, idx, epoch))) = heap.peek() {
                        if slot != t {
                            break;
                        }
                        heap.pop();
                        if hint_states[idx].epoch != epoch {
                            continue; // stale entry
                        }
                        match hint_states[idx].due {
                            Due::Poll => polled.push(idx),
                            Due::Requery => requery.push(idx),
                        }
                    }
                    if requery.is_empty() {
                        break;
                    }
                    trace.engine_event(TraceEvent::HintRequery {
                        slot: t,
                        queries: requery.len() as u64,
                    });
                    for &idx in &requery {
                        if install_hint(
                            units[idx].next_transmission(t),
                            idx,
                            t,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                        {
                            sparse = false;
                            heap.clear();
                            trace.engine_event(TraceEvent::ModeSwitch {
                                slot: t,
                                dense: true,
                            });
                            break;
                        }
                    }
                    if !sparse {
                        break;
                    }
                }
                if !sparse {
                    continue 'slots; // dense path simulates slot t itself
                }
                if polled.is_empty() {
                    // Pure re-query event: the slot joins the next silent
                    // gap instead of being simulated individually.
                    continue 'slots;
                }

                // Transmission event at t: poll exactly the scheduled units
                // (everyone else is silent by promise).
                for &idx in &polled {
                    polls += 1;
                    units[idx].act(t, &mut tally);
                }
                let contenders = tally.total();
                transmissions += contenders;
                let outcome = apply_channel(
                    &self.cfg.channel,
                    fault_seed,
                    t,
                    slot_outcome(&mut tally),
                    &mut faults,
                    &mut trace,
                );
                let mishear = mishear_armed
                    && outcome == SlotOutcome::Silence
                    && self.cfg.channel.mishears_silence(fault_seed, t);
                if mishear {
                    faults.false_collisions += 1;
                }

                if let Some(tr) = transcript.as_mut() {
                    tr.push(SlotRecord {
                        slot: t,
                        transmitters: tally.sorted_ids().to_vec(),
                        outcome: outcome.clone(),
                    });
                }
                if detail {
                    for &id in tally.sorted_ids() {
                        tx_counts[tx_index[&id]].1 += 1;
                    }
                }

                slots_simulated += 1;
                if let Some(w) = outcome.success_id() {
                    trace.success(t, w);
                    if first_success.is_none() {
                        first_success = Some(t);
                        winner = Some(w);
                    }
                    if !resolved.iter().any(|&(id, _)| id == w) {
                        resolved.push((w, t));
                    }
                    if self.cfg.stop == StopRule::FirstSuccess {
                        break 'slots; // matches concrete: no feedback
                    }

                    // AllResolved: a success is heard by every unit, and
                    // classes may split on it (the winner retires out).
                    // Feedback is uniform across stations, so one perceive
                    // covers the whole floor.
                    let fb = self.cfg.feedback.perceive(&outcome, false);
                    let mut born: Vec<Box<dyn ClassStation>> = Vec::new();
                    for unit in units.iter_mut() {
                        born.append(&mut unit.feedback(t, fb));
                    }
                    let first_new = units.len();
                    for nu in born {
                        hint_states.push(HintState::new());
                        units.push(nu);
                    }
                    if units.len() > first_new {
                        trace.engine_event(TraceEvent::ClassSplit {
                            slot: t,
                            born: (units.len() - first_new) as u64,
                        });
                    }
                    if units.len() as u64 > budget {
                        return Ok(ClassRun::BudgetExceeded);
                    }
                    peak_units = peak_units.max(units.len() as u64);
                    if resolved.len() == total_stations && next_batch == batches.len() {
                        all_resolved_at = Some(t);
                        break 'slots;
                    }

                    // The success invalidates every NextSuccess-scoped
                    // hint; re-query those, the polled units (entries
                    // consumed), and newborn splits, from t + 1.
                    requery.clear();
                    for idx in success_scoped.drain(..) {
                        if hint_states[idx].success_scoped {
                            hint_states[idx].success_scoped = false;
                            requery.push(idx);
                        }
                    }
                    requery.extend(polled.iter().copied());
                    requery.extend(first_new..units.len());
                    requery.sort_unstable();
                    requery.dedup();
                    trace.engine_event(TraceEvent::HintRequery {
                        slot: t + 1,
                        queries: requery.len() as u64,
                    });
                    for &idx in &requery {
                        if install_hint(
                            units[idx].next_transmission(t + 1),
                            idx,
                            t + 1,
                            &mut heap,
                            &mut hint_states,
                            &mut success_scoped,
                        )
                        .is_err()
                        {
                            sparse = false;
                            heap.clear();
                            trace.engine_event(TraceEvent::ModeSwitch {
                                slot: t + 1,
                                dense: true,
                            });
                            break;
                        }
                    }
                    t += 1;
                    continue 'slots;
                }

                match &outcome {
                    SlotOutcome::Collision(_) => {
                        collisions += 1;
                        trace.collision(t, contenders);
                    }
                    SlotOutcome::Silence => {
                        silent_slots += 1;
                        trace.silence(t, 1);
                    }
                    SlotOutcome::Success(_) => unreachable!("handled above"),
                }

                // Non-success feedback goes only to the polled units (the
                // concrete sparse contract); splits are possible here too.
                let fb = if mishear {
                    Feedback::Noise
                } else {
                    self.cfg.feedback.perceive(&outcome, false)
                };
                let mut born: Vec<Box<dyn ClassStation>> = Vec::new();
                for &idx in &polled {
                    born.append(&mut units[idx].feedback(t, fb));
                }
                let first_new = units.len();
                for nu in born {
                    hint_states.push(HintState::new());
                    units.push(nu);
                }
                if units.len() > first_new {
                    trace.engine_event(TraceEvent::ClassSplit {
                        slot: t,
                        born: (units.len() - first_new) as u64,
                    });
                }
                if units.len() as u64 > budget {
                    return Ok(ClassRun::BudgetExceeded);
                }
                peak_units = peak_units.max(units.len() as u64);

                // Re-arm the polled units (entries consumed) and newborn
                // splits from t + 1; nothing else was invalidated.
                requery.clear();
                requery.extend(polled.iter().copied());
                requery.extend(first_new..units.len());
                trace.engine_event(TraceEvent::HintRequery {
                    slot: t + 1,
                    queries: requery.len() as u64,
                });
                for &idx in &requery {
                    if install_hint(
                        units[idx].next_transmission(t + 1),
                        idx,
                        t + 1,
                        &mut heap,
                        &mut hint_states,
                        &mut success_scoped,
                    )
                    .is_err()
                    {
                        sparse = false;
                        heap.clear();
                        trace.engine_event(TraceEvent::ModeSwitch {
                            slot: t + 1,
                            dense: true,
                        });
                        break;
                    }
                }
                t += 1;
                continue 'slots;
            }

            // Dense path: poll every unit every slot.
            tally.clear();
            for unit in units.iter_mut() {
                polls += 1;
                unit.act(t, &mut tally);
            }
            let contenders = tally.total();
            transmissions += contenders;
            let outcome = apply_channel(
                &self.cfg.channel,
                fault_seed,
                t,
                slot_outcome(&mut tally),
                &mut faults,
                &mut trace,
            );
            let mishear = mishear_armed
                && outcome == SlotOutcome::Silence
                && self.cfg.channel.mishears_silence(fault_seed, t);
            if mishear {
                faults.false_collisions += 1;
            }

            if let Some(tr) = transcript.as_mut() {
                tr.push(SlotRecord {
                    slot: t,
                    transmitters: tally.sorted_ids().to_vec(),
                    outcome: outcome.clone(),
                });
            }
            if detail {
                for &id in tally.sorted_ids() {
                    tx_counts[tx_index[&id]].1 += 1;
                }
            }

            slots_simulated += 1;
            dense_steps += 1;
            let fb = if mishear {
                Feedback::Noise
            } else {
                self.cfg.feedback.perceive(&outcome, false)
            };
            match &outcome {
                SlotOutcome::Success(w) => {
                    trace.success(t, *w);
                    if first_success.is_none() {
                        first_success = Some(t);
                        winner = Some(*w);
                    }
                    if !resolved.iter().any(|&(id, _)| id == *w) {
                        resolved.push((*w, t));
                    }
                    match self.cfg.stop {
                        StopRule::FirstSuccess => break 'slots,
                        StopRule::AllResolved => {
                            if resolved.len() == total_stations && next_batch == batches.len() {
                                all_resolved_at = Some(t);
                                // Deliver the final feedback so the winner
                                // learns of its own success, then stop.
                                for unit in units.iter_mut() {
                                    let _ = unit.feedback(t, fb);
                                }
                                break 'slots;
                            }
                        }
                    }
                }
                SlotOutcome::Collision(_) => {
                    collisions += 1;
                    trace.collision(t, contenders);
                }
                SlotOutcome::Silence => {
                    silent_slots += 1;
                    trace.silence(t, 1);
                }
            }

            // Deliver feedback to every unit; append any splits (they are
            // polled from the next slot, like everyone else on the dense
            // path — the members they carry already received this slot's
            // feedback through their parent).
            let mut born: Vec<Box<dyn ClassStation>> = Vec::new();
            for unit in units.iter_mut() {
                born.append(&mut unit.feedback(t, fb));
            }
            let first_new = units.len();
            for nu in born {
                hint_states.push(HintState::new());
                units.push(nu);
            }
            if units.len() > first_new {
                trace.engine_event(TraceEvent::ClassSplit {
                    slot: t,
                    born: (units.len() - first_new) as u64,
                });
            }
            if units.len() as u64 > budget {
                return Ok(ClassRun::BudgetExceeded);
            }
            peak_units = peak_units.max(units.len() as u64);
            t += 1;
        }

        trace.run_end(slots_simulated, first_success);
        Ok(ClassRun::Done(Box::new(Outcome {
            s,
            first_success,
            winner,
            slots_simulated,
            transmissions,
            per_station_tx: tx_counts,
            collisions,
            silent_slots,
            polls,
            skipped_slots,
            dense_steps,
            word_slots: 0,
            mode_switches: 0,
            peak_units,
            transcript,
            resolved,
            all_resolved_at,
            faults,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::{Action, AlwaysTransmit, FnProtocol, NeverTransmit, TxHint};

    struct ConstProtocol<S: Station + Clone + 'static>(S);
    impl<S: Station + Clone + 'static> Protocol for ConstProtocol<S> {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(self.0.clone())
        }
        fn name(&self) -> String {
            "const".into()
        }
    }

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn single_always_transmitter_succeeds_immediately() {
        let cfg = SimConfig::new(4).with_max_slots(10);
        let pattern = WakePattern::simultaneous(&ids(&[2]), 7).unwrap();
        let out = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap();
        assert_eq!(out.first_success, Some(7));
        assert_eq!(out.winner, Some(StationId(2)));
        assert_eq!(out.latency(), Some(0));
        assert_eq!(out.transmissions, 1);
        assert!(out.solved());
    }

    #[test]
    fn two_always_transmitters_collide_forever() {
        let cfg = SimConfig::new(4).with_max_slots(50).with_transcript();
        let pattern = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let out = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap();
        assert_eq!(out.first_success, None);
        assert!(!out.solved());
        assert_eq!(out.collisions, 50);
        assert_eq!(out.slots_simulated, 50);
        assert_eq!(out.transmissions, 100);
        let tr = out.transcript.unwrap();
        assert_eq!(tr.ascii_strip(), "x".repeat(50));
        assert!(tr.check_invariants().is_empty());
    }

    #[test]
    fn pure_listeners_never_succeed() {
        let cfg = SimConfig::new(4).with_max_slots(20);
        let pattern = WakePattern::simultaneous(&ids(&[0, 3]), 5).unwrap();
        let out = Simulator::new(cfg)
            .run(&ConstProtocol(NeverTransmit), &pattern, 0)
            .unwrap();
        assert_eq!(out.first_success, None);
        assert_eq!(out.silent_slots, 20);
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn staggered_wake_breaks_symmetry() {
        // Both stations always transmit, but the second wakes 3 slots later:
        // the first is alone on the channel at its wake slot.
        let cfg = SimConfig::new(4).with_max_slots(50);
        let pattern = WakePattern::staggered(&ids(&[0, 1]), 10, 3).unwrap();
        let out = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap();
        assert_eq!(out.first_success, Some(10));
        assert_eq!(out.winner, Some(StationId(0)));
    }

    #[test]
    fn run_stops_exactly_at_first_success() {
        // Round-robin over 4 stations: stations 1 and 2 wake at slot 0;
        // slot 1 belongs to station 1 ⇒ success at slot 1, latency 1.
        let p = FnProtocol::new("rr4", |id: StationId, _s, _sig, t: Slot| {
            t % 4 == id.0 as u64
        });
        let cfg = SimConfig::new(4).with_max_slots(50).with_transcript();
        let pattern = WakePattern::simultaneous(&ids(&[1, 2]), 0).unwrap();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        assert_eq!(out.first_success, Some(1));
        assert_eq!(out.winner, Some(StationId(1)));
        let tr = out.transcript.unwrap();
        assert_eq!(tr.len(), 2); // slot 0 (silence), slot 1 (success)
        assert!(tr.check_invariants().is_empty());
        assert_eq!(tr.ascii_strip(), ".!");
    }

    #[test]
    fn validates_station_range() {
        let cfg = SimConfig::new(4);
        let pattern = WakePattern::simultaneous(&ids(&[7]), 0).unwrap();
        let err = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::StationOutOfRange {
                id: StationId(7),
                n: 4
            }
        );
    }

    #[test]
    fn validates_nonzero_n() {
        let cfg = SimConfig::new(0);
        let pattern = WakePattern::simultaneous(&ids(&[0]), 0).unwrap();
        let err = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap_err();
        assert_eq!(err, SimError::NoStations);
    }

    #[test]
    fn latency_is_measured_from_s_not_zero() {
        let p = FnProtocol::new("rr8", |id: StationId, _s, _sig, t: Slot| {
            t % 8 == id.0 as u64
        });
        let cfg = SimConfig::new(8).with_max_slots(100);
        // Station 2 wakes at slot 11; its turn comes at t=18 (18 % 8 == 2).
        let pattern = WakePattern::simultaneous(&ids(&[2]), 11).unwrap();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        assert_eq!(out.s, 11);
        assert_eq!(out.first_success, Some(18));
        assert_eq!(out.latency(), Some(7));
    }

    #[test]
    fn per_station_tx_counts_are_tracked() {
        let p = FnProtocol::new("odd-even", |id: StationId, _s, _sig, t: Slot| {
            // Station 0 transmits on even slots, station 1 on odd slots —
            // but both wake at 0, so slot 0 is a solo success by station 0.
            (t % 2) == id.0 as u64
        });
        let cfg = SimConfig::new(2).with_max_slots(10);
        let pattern = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        assert_eq!(out.first_success, Some(0));
        assert_eq!(
            out.per_station_tx,
            vec![(StationId(0), 1), (StationId(1), 0)]
        );
    }

    #[test]
    fn deterministic_across_reruns() {
        let p = FnProtocol::new("prf", |id: StationId, seed, _sig, t: Slot| {
            // Pseudo-random schedule driven by the per-station seed.
            crate::rng::derive_seed(seed, t) % 3 == u64::from(id.0) % 3
        });
        let cfg = SimConfig::new(16).with_max_slots(500);
        let pattern = WakePattern::staggered(&ids(&[3, 7, 11]), 5, 2).unwrap();
        let sim = Simulator::new(cfg);
        let a = sim.run(&p, &pattern, 999).unwrap();
        let b = sim.run(&p, &pattern, 999).unwrap();
        assert_eq!(a.first_success, b.first_success);
        assert_eq!(a.transmissions, b.transmissions);
        // A different run seed gives different per-station seeds.
        let c = sim.run(&p, &pattern, 1000).unwrap();
        // (Very likely different; if equal, the schedules coincided — accept
        // either but ensure the run completed.)
        assert!(c.slots_simulated > 0);
    }

    #[test]
    fn default_config_cap_scales_with_n() {
        let small = SimConfig::new(16).max_slots;
        let large = SimConfig::new(1024).max_slots;
        assert!(large > small);
        // Cap must dominate the paper's worst bound O(k log n log log n) ≤
        // O(n log n log log n): for n = 1024, that's ≈ 1024·10·4 ≈ 41k.
        assert!(large > 41_000);
    }

    #[test]
    fn feedback_is_delivered_under_the_configured_model() {
        use crate::channel::Feedback;
        use std::cell::RefCell;
        use std::rc::Rc;

        // A listener that records what it perceives.
        struct Recorder {
            log: Rc<RefCell<Vec<Feedback>>>,
        }
        impl Station for Recorder {
            fn wake(&mut self, _s: Slot) {}
            fn act(&mut self, _t: Slot) -> Action {
                Action::Listen
            }
            fn feedback(&mut self, _t: Slot, fb: Feedback) {
                self.log.borrow_mut().push(fb);
            }
        }
        struct P {
            log: Rc<RefCell<Vec<Feedback>>>,
        }
        impl Protocol for P {
            fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
                if id.0 == 0 {
                    Box::new(Recorder {
                        log: Rc::clone(&self.log),
                    })
                } else {
                    Box::new(AlwaysTransmit)
                }
            }
            fn name(&self) -> String {
                "recorder".into()
            }
        }

        // Two always-transmitters collide; the recorder should hear Noise
        // under CD and Silence under no-CD.
        for (model, expected) in [
            (FeedbackModel::CollisionDetection, Feedback::Noise),
            (FeedbackModel::NoCollisionDetection, Feedback::Silence),
        ] {
            let log = Rc::new(RefCell::new(Vec::new()));
            let p = P {
                log: Rc::clone(&log),
            };
            let cfg = SimConfig::new(4).with_max_slots(3).with_feedback(model);
            let pattern = WakePattern::simultaneous(&ids(&[0, 1, 2]), 0).unwrap();
            let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
            assert!(!out.solved());
            assert_eq!(&*log.borrow(), &vec![expected; 3]);
        }
    }

    // -----------------------------------------------------------------
    // StopRule::AllResolved (full conflict resolution support).
    // -----------------------------------------------------------------

    /// Round-robin with retirement: transmit on own turn until the station
    /// hears its own message back.
    struct RetiringRr {
        n: u32,
    }
    struct RetiringRrStation {
        id: StationId,
        n: u32,
        done: bool,
    }
    impl Station for RetiringRrStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(!self.done && t % u64::from(self.n) == u64::from(self.id.0))
        }
        fn feedback(&mut self, _t: Slot, fb: crate::channel::Feedback) {
            if fb == crate::channel::Feedback::Heard(self.id) {
                self.done = true;
            }
        }
    }
    impl Protocol for RetiringRr {
        fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(RetiringRrStation {
                id,
                n: self.n,
                done: false,
            })
        }
        fn name(&self) -> String {
            "retiring-rr".into()
        }
    }

    #[test]
    fn all_resolved_runs_past_first_success() {
        let n = 8u32;
        let cfg = SimConfig::new(n).until_all_resolved().with_transcript();
        let pattern = WakePattern::simultaneous(&ids(&[1, 4, 6]), 0).unwrap();
        let out = Simulator::new(cfg)
            .run(&RetiringRr { n }, &pattern, 0)
            .unwrap();
        // First success at slot 1 (station 1), but the run continues.
        assert_eq!(out.first_success, Some(1));
        assert_eq!(out.winner, Some(StationId(1)));
        assert_eq!(out.resolved.len(), 3);
        assert_eq!(out.all_resolved_at, Some(6)); // station 6's turn
        assert_eq!(out.full_resolution_latency(), Some(6));
        // Resolution order follows the turns: 1, 4, 6.
        assert_eq!(
            out.resolved,
            vec![(StationId(1), 1), (StationId(4), 4), (StationId(6), 6)]
        );
        let tr = out.transcript.unwrap();
        assert!(tr.check_invariants_multi_success().is_empty());
        assert_eq!(tr.successes().len(), 3);
    }

    #[test]
    fn all_resolved_waits_for_late_wakers() {
        let n = 8u32;
        let cfg = SimConfig::new(n).until_all_resolved();
        // Station 2 wakes long after station 1 resolved.
        let pattern = WakePattern::new(vec![(StationId(1), 0), (StationId(2), 20)]).unwrap();
        let out = Simulator::new(cfg)
            .run(&RetiringRr { n }, &pattern, 0)
            .unwrap();
        assert_eq!(out.resolved.len(), 2);
        // Station 2's first turn at/after slot 20 is slot 26 (26 % 8 == 2).
        assert_eq!(out.all_resolved_at, Some(26));
    }

    #[test]
    fn all_resolved_censors_if_somebody_never_succeeds() {
        let n = 4u32;
        let cfg = SimConfig::new(n).with_max_slots(100).until_all_resolved();
        // Two always-transmitters collide forever after both awake; the
        // staggered start resolves only the first.
        let pattern = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let out = Simulator::new(cfg)
            .run(&ConstProtocol(AlwaysTransmit), &pattern, 0)
            .unwrap();
        assert!(out.all_resolved_at.is_none());
        assert!(out.resolved.is_empty());
        assert_eq!(out.slots_simulated, 100);
    }

    // -----------------------------------------------------------------
    // Sparse slot-skipping path.
    // -----------------------------------------------------------------

    /// A station that transmits every `period` slots starting at `phase`,
    /// and (optionally) advertises that schedule through `next_transmission`.
    struct Pulse {
        period: u64,
        phase: u64,
        hinted: bool,
    }
    struct PulseStation {
        period: u64,
        phase: u64,
        hinted: bool,
    }
    impl Station for PulseStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(t % self.period == self.phase)
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            if !self.hinted {
                return TxHint::Dense;
            }
            let r = after % self.period;
            let next = if r <= self.phase {
                after + (self.phase - r)
            } else {
                after + (self.period - r) + self.phase
            };
            TxHint::at(next)
        }
    }
    impl Protocol for Pulse {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(PulseStation {
                period: self.period,
                phase: self.phase,
                hinted: self.hinted,
            })
        }
        fn name(&self) -> String {
            "pulse".into()
        }
    }

    #[test]
    fn sparse_and_dense_agree_and_sparse_skips() {
        // One station pulsing every 997 slots: the sparse engine should jump
        // straight to the pulse while the dense engine polls every slot.
        let p = Pulse {
            period: 997,
            phase: 500,
            hinted: true,
        };
        let pattern = WakePattern::simultaneous(&ids(&[3]), 7).unwrap();
        let auto = Simulator::new(SimConfig::new(8).with_transcript())
            .run(&p, &pattern, 0)
            .unwrap();
        let dense = Simulator::new(
            SimConfig::new(8)
                .with_transcript()
                .with_engine(EngineMode::Dense),
        )
        .run(&p, &pattern, 0)
        .unwrap();
        assert_eq!(auto.first_success, Some(500));
        assert_eq!(auto.first_success, dense.first_success);
        assert_eq!(auto.winner, dense.winner);
        assert_eq!(auto.slots_simulated, dense.slots_simulated);
        assert_eq!(auto.silent_slots, dense.silent_slots);
        assert_eq!(auto.transmissions, dense.transmissions);
        assert_eq!(auto.transcript, dense.transcript);
        // Work accounting: dense polled each of the 494 slots, sparse once.
        assert_eq!(dense.polls, dense.slots_simulated);
        assert_eq!(dense.skipped_slots, 0);
        assert_eq!(auto.polls, 1);
        assert_eq!(auto.skipped_slots, auto.slots_simulated - 1);
    }

    #[test]
    fn unhinted_station_forces_dense_path() {
        let p = Pulse {
            period: 13,
            phase: 4,
            hinted: false,
        };
        let pattern = WakePattern::simultaneous(&ids(&[0]), 0).unwrap();
        let out = Simulator::new(SimConfig::new(4))
            .run(&p, &pattern, 0)
            .unwrap();
        assert_eq!(out.first_success, Some(4));
        assert_eq!(out.skipped_slots, 0);
        assert_eq!(out.polls, out.slots_simulated);
    }

    #[test]
    fn sparse_skip_to_hinted_slot_respects_max_slots() {
        // The station's next pulse lies far beyond the cap: the engine must
        // stop exactly at the cap, not overshoot it while skipping.
        let p = Pulse {
            period: 1_000_000,
            phase: 999_999,
            hinted: true,
        };
        let pattern = WakePattern::simultaneous(&ids(&[1]), 0).unwrap();
        let out = Simulator::new(SimConfig::new(4).with_max_slots(75))
            .run(&p, &pattern, 0)
            .unwrap();
        assert!(!out.solved());
        assert_eq!(out.slots_simulated, 75);
        assert_eq!(out.silent_slots, 75);
        assert_eq!(out.skipped_slots, 75);
        assert_eq!(out.polls, 0);
    }

    #[test]
    fn sparse_skip_to_next_wake_respects_max_slots() {
        // Regression for the fast-forward overshoot: a silent early station
        // plus an arrival far past the cap must not push slots_simulated
        // beyond max_slots.
        let pattern = WakePattern::new(vec![(StationId(0), 0), (StationId(1), 10_000)]).unwrap();
        let out = Simulator::new(SimConfig::new(4).with_max_slots(50))
            .run(&ConstProtocol(NeverTransmit), &pattern, 0)
            .unwrap();
        assert!(!out.solved());
        assert_eq!(out.slots_simulated, 50);
        assert_eq!(out.silent_slots, 50);
        // Dense reference: identical outcome, maximal polling.
        let dense = Simulator::new(
            SimConfig::new(4)
                .with_max_slots(50)
                .with_engine(EngineMode::Dense),
        )
        .run(&ConstProtocol(NeverTransmit), &pattern, 0)
        .unwrap();
        assert_eq!(dense.slots_simulated, 50);
        assert_eq!(dense.silent_slots, 50);
        assert_eq!(dense.polls, 50);
        assert_eq!(out.polls, 0);
    }

    #[test]
    fn never_hints_fast_forward_to_cap() {
        // All-listener runs collapse to a single bulk skip.
        let pattern = WakePattern::simultaneous(&ids(&[0, 3]), 5).unwrap();
        let out = Simulator::new(SimConfig::new(4).with_max_slots(1_000_000))
            .run(&ConstProtocol(NeverTransmit), &pattern, 0)
            .unwrap();
        assert_eq!(out.silent_slots, 1_000_000);
        assert_eq!(out.skipped_slots, 1_000_000);
        assert_eq!(out.polls, 0);
    }

    #[test]
    fn sparse_transcript_is_contiguous_and_valid() {
        let p = Pulse {
            period: 37,
            phase: 11,
            hinted: true,
        };
        let pattern = WakePattern::simultaneous(&ids(&[2]), 3).unwrap();
        let out = Simulator::new(SimConfig::new(4).with_transcript())
            .run(&p, &pattern, 0)
            .unwrap();
        let tr = out.transcript.unwrap();
        assert!(tr.check_invariants().is_empty());
        assert_eq!(tr.records().first().unwrap().slot, 3);
        assert_eq!(tr.records().last().unwrap().slot, 11);
    }

    #[test]
    fn late_sparse_arrivals_are_woken_exactly_on_time() {
        // Two pulse stations with different phases and a late waker: the
        // sparse engine must wake the second station at its sigma (not skip
        // past it) so its first pulse is on schedule.
        struct TwoPhase;
        impl Protocol for TwoPhase {
            fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
                Box::new(PulseStation {
                    period: 100,
                    phase: u64::from(id.0) * 50,
                    hinted: true,
                })
            }
            fn name(&self) -> String {
                "two-phase".into()
            }
        }
        // Station 1 (phase 50) wakes at 40; station 0 (phase 0) wakes at 0
        // but its pulses at 0, 100, … collide with nobody, so slot 0 wins.
        let pattern = WakePattern::new(vec![(StationId(0), 1), (StationId(1), 40)]).unwrap();
        let out = Simulator::new(SimConfig::new(4))
            .run(&TwoPhase, &pattern, 0)
            .unwrap();
        // Station 1's first pulse at 50 vs station 0's next pulse at 100.
        assert_eq!(out.first_success, Some(50));
        assert_eq!(out.winner, Some(StationId(1)));
    }

    // -----------------------------------------------------------------
    // Epoch-scoped hints: NextSuccess and Slot validity.
    // -----------------------------------------------------------------

    use crate::station::Until;

    /// Retiring round-robin that also advertises its schedule with
    /// success-scoped hints — the shape of the Komlós–Greenberg resolvers.
    struct HintedRetiringRr {
        n: u32,
    }
    struct HintedRetiringRrStation {
        id: StationId,
        n: u32,
        done: bool,
    }
    impl Station for HintedRetiringRrStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(!self.done && t % u64::from(self.n) == u64::from(self.id.0))
        }
        fn feedback(&mut self, _t: Slot, fb: crate::channel::Feedback) {
            if fb.is_own_success(self.id) {
                self.done = true;
            }
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            if self.done {
                return TxHint::never();
            }
            let n = u64::from(self.n);
            let r = after % n;
            let turn = after + (u64::from(self.id.0) + n - r) % n;
            TxHint::At(turn, Until::NextSuccess)
        }
    }
    impl Protocol for HintedRetiringRr {
        fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(HintedRetiringRrStation {
                id,
                n: self.n,
                done: false,
            })
        }
        fn name(&self) -> String {
            "hinted-retiring-rr".into()
        }
    }

    #[test]
    fn all_resolved_runs_sparse_with_success_scoped_hints() {
        let n = 128u32;
        let pattern = WakePattern::simultaneous(&ids(&[5, 70, 126]), 3).unwrap();
        let mk = |mode| {
            Simulator::new(
                SimConfig::new(n)
                    .until_all_resolved()
                    .with_transcript()
                    .with_engine(mode),
            )
            .run(&HintedRetiringRr { n }, &pattern, 0)
            .unwrap()
        };
        let auto = mk(EngineMode::Auto);
        let dense = mk(EngineMode::Dense);
        assert_eq!(auto.first_success, dense.first_success);
        assert_eq!(auto.resolved, dense.resolved);
        assert_eq!(auto.all_resolved_at, dense.all_resolved_at);
        assert_eq!(auto.transcript, dense.transcript);
        assert_eq!(auto.transmissions, dense.transmissions);
        assert_eq!(auto.slots_simulated, dense.slots_simulated);
        // The sparse path carried the run: all long silent gaps between the
        // turns were skipped and polling collapsed versus dense. (The
        // adaptive policy may dense-step the first contested slots — station
        // 5's turn is two slots after the batch wake — before the success
        // re-probe resumes sparse; the work counters account for it.)
        assert!(auto.skipped_slots > 0, "sparse path did not engage");
        assert!(dense.polls > 10 * auto.polls);
        let stepped = auto.skipped_slots + auto.dense_steps + auto.word_slots;
        assert!(stepped <= auto.slots_simulated);
        assert!(stepped + auto.polls >= auto.slots_simulated);
    }

    /// A station that stays silent until it hears *any* success, then
    /// transmits `delay` slots after it — feedback-reactive behaviour that
    /// is expressible sparsely only through `Until::NextSuccess`.
    struct EchoChaser {
        delay: u64,
    }
    struct EchoChaserStation {
        id: StationId,
        delay: u64,
        fire_at: Option<Slot>,
        done: bool,
    }
    impl Station for EchoChaserStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(!self.done && self.fire_at == Some(t))
        }
        fn feedback(&mut self, t: Slot, fb: crate::channel::Feedback) {
            if fb.is_own_success(self.id) {
                self.done = true;
            } else if matches!(fb, crate::channel::Feedback::Heard(_)) && self.fire_at.is_none() {
                self.fire_at = Some(t + self.delay);
            }
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            if self.done {
                return TxHint::never();
            }
            match self.fire_at {
                Some(f) => TxHint::At(f.max(after), Until::NextSuccess),
                None => TxHint::Never(Until::NextSuccess),
            }
        }
    }
    impl Protocol for EchoChaser {
        fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
            if id.0 == 0 {
                // Station 0 paces the run: retiring round-robin over 16.
                Box::new(HintedRetiringRrStation {
                    id,
                    n: 16,
                    done: false,
                })
            } else {
                Box::new(EchoChaserStation {
                    id,
                    delay: self.delay,
                    fire_at: None,
                    done: false,
                })
            }
        }
        fn name(&self) -> String {
            "echo-chaser".into()
        }
    }

    #[test]
    fn never_next_success_hints_are_requeried_after_a_success() {
        // Station 0 succeeds at its round-robin turn (slot 16); station 9
        // reacts to that success and fires `delay` slots later. The sparse
        // engine must wake station 9's hint exactly once — at the success —
        // and still match the dense run bit for bit.
        let pattern = WakePattern::simultaneous(&ids(&[0, 9]), 1).unwrap();
        let mk = |mode| {
            Simulator::new(
                SimConfig::new(16)
                    .until_all_resolved()
                    .with_transcript()
                    .with_engine(mode),
            )
            .run(&EchoChaser { delay: 7 }, &pattern, 0)
            .unwrap()
        };
        let auto = mk(EngineMode::Auto);
        let dense = mk(EngineMode::Dense);
        assert_eq!(auto.resolved, dense.resolved);
        assert_eq!(auto.all_resolved_at, dense.all_resolved_at);
        assert_eq!(auto.transcript, dense.transcript);
        assert_eq!(auto.resolved.len(), 2);
        // Success at 16, echo at 23.
        assert_eq!(auto.all_resolved_at, Some(23));
        assert!(auto.skipped_slots > 0);
        assert!(auto.polls < dense.polls);
    }

    /// A pulse station that only reveals its schedule one bounded horizon
    /// at a time (`Until::Slot` re-query callbacks).
    struct ChunkedPulse {
        period: u64,
        phase: u64,
        horizon: u64,
    }
    impl Station for ChunkedPulse {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(t % self.period == self.phase)
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            let r = after % self.period;
            let next = if r <= self.phase {
                after + (self.phase - r)
            } else {
                after + (self.period - r) + self.phase
            };
            let boundary = after + self.horizon;
            if next < boundary {
                TxHint::At(next, Until::Slot(boundary))
            } else {
                TxHint::Never(Until::Slot(boundary))
            }
        }
    }
    struct ChunkedPulseProtocol {
        period: u64,
        phase: u64,
        horizon: u64,
    }
    impl Protocol for ChunkedPulseProtocol {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(ChunkedPulse {
                period: self.period,
                phase: self.phase,
                horizon: self.horizon,
            })
        }
        fn name(&self) -> String {
            "chunked-pulse".into()
        }
    }

    #[test]
    fn slot_scoped_hints_requery_at_the_boundary() {
        // Pulse at slot 900 revealed through horizon-100 windows: the
        // engine re-queries at 100, 200, …, then polls exactly once at 900.
        let p = ChunkedPulseProtocol {
            period: 1000,
            phase: 900,
            horizon: 100,
        };
        let pattern = WakePattern::simultaneous(&ids(&[2]), 0).unwrap();
        let auto = Simulator::new(SimConfig::new(4).with_transcript())
            .run(&p, &pattern, 0)
            .unwrap();
        let dense = Simulator::new(
            SimConfig::new(4)
                .with_transcript()
                .with_engine(EngineMode::Dense),
        )
        .run(&p, &pattern, 0)
        .unwrap();
        assert_eq!(auto.first_success, Some(900));
        assert_eq!(auto.first_success, dense.first_success);
        assert_eq!(auto.transcript, dense.transcript);
        assert_eq!(auto.slots_simulated, dense.slots_simulated);
        assert_eq!(auto.polls, 1); // re-queries are not polls
        assert_eq!(auto.skipped_slots, auto.slots_simulated - 1);
    }

    #[test]
    fn slot_scoped_hints_respect_the_cap_between_boundaries() {
        let p = ChunkedPulseProtocol {
            period: 1_000_000,
            phase: 999_999,
            horizon: 64,
        };
        let pattern = WakePattern::simultaneous(&ids(&[0]), 0).unwrap();
        let out = Simulator::new(SimConfig::new(4).with_max_slots(200))
            .run(&p, &pattern, 0)
            .unwrap();
        assert!(!out.solved());
        assert_eq!(out.slots_simulated, 200);
        assert_eq!(out.silent_slots, 200);
        assert_eq!(out.polls, 0);
    }

    /// A hint whose validity boundary is not in the future — malformed; the
    /// engine must fall back to dense polling rather than trust it.
    #[derive(Clone)]
    struct StuckBoundary;
    impl Station for StuckBoundary {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(t % 5 == 3)
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            TxHint::Never(Until::Slot(after)) // claims nothing
        }
    }

    #[test]
    fn malformed_slot_scope_forces_dense() {
        let out = Simulator::new(SimConfig::new(4))
            .run(
                &ConstProtocol(StuckBoundary),
                &WakePattern::simultaneous(&ids(&[1]), 0).unwrap(),
                0,
            )
            .unwrap();
        assert_eq!(out.first_success, Some(3));
        assert_eq!(out.skipped_slots, 0);
        assert_eq!(out.polls, out.slots_simulated);
    }

    #[test]
    fn first_success_mode_records_single_resolution() {
        let n = 8u32;
        let pattern = WakePattern::simultaneous(&ids(&[3, 5]), 0).unwrap();
        let out = Simulator::new(SimConfig::new(n).with_max_slots(50))
            .run(&RetiringRr { n }, &pattern, 0)
            .unwrap();
        assert_eq!(out.resolved, vec![(StationId(3), 3)]);
        assert!(out.all_resolved_at.is_none());
    }

    /// A protocol whose class fragments into singletons on the very first
    /// feedback — the worst case the split-budget guard exists for.
    /// Stations all transmit at their wake slot (collision), then each at
    /// `σ + 1 + id` (staggered successes); the class mirrors that exactly
    /// but splits off every member past the first after the collision.
    struct Fragmenting;
    struct FragStation {
        id: StationId,
        s: Slot,
    }
    impl Station for FragStation {
        fn wake(&mut self, sigma: Slot) {
            self.s = sigma;
        }
        fn act(&mut self, t: Slot) -> Action {
            Action::from_bool(t == self.s || t == self.s + 1 + u64::from(self.id.0))
        }
    }
    struct FragClass {
        members: Vec<StationId>,
        s: Slot,
        split_done: bool,
    }
    impl crate::population::ClassStation for FragClass {
        fn weight(&self) -> u64 {
            self.members.len() as u64
        }
        fn wake(&mut self, sigma: Slot) {
            self.s = sigma;
        }
        fn act(&mut self, t: Slot, tally: &mut TxTally) {
            for &id in &self.members {
                if t == self.s || t == self.s + 1 + u64::from(id.0) {
                    tally.push(id);
                }
            }
        }
        fn feedback(
            &mut self,
            _t: Slot,
            _fb: crate::channel::Feedback,
        ) -> Vec<Box<dyn crate::population::ClassStation>> {
            if self.split_done {
                return Vec::new();
            }
            self.split_done = true;
            let s = self.s;
            self.members
                .drain(1..)
                .map(|id| {
                    Box::new(FragClass {
                        members: vec![id],
                        s,
                        split_done: true,
                    }) as Box<dyn crate::population::ClassStation>
                })
                .collect()
        }
    }
    impl Protocol for Fragmenting {
        fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(FragStation { id, s: 0 })
        }
        fn class_station(
            &self,
            members: &crate::population::Members,
            _run_seed: u64,
        ) -> Option<Box<dyn crate::population::ClassStation>> {
            Some(Box::new(FragClass {
                members: members.iter().collect(),
                s: 0,
                split_done: false,
            }))
        }
        fn name(&self) -> String {
            "fragmenting".into()
        }
    }

    #[test]
    fn split_budget_flips_fragmenting_class_run_to_concrete() {
        use crate::tracer::RecordingTracer;
        let n = 16u32;
        let k: Vec<StationId> = (0..8).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&k, 5).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(64).with_transcript();

        let concrete = Simulator::new(cfg.clone())
            .run(&Fragmenting, &pattern, 0)
            .unwrap();

        // Unguarded class run: the collision feedback fragments the class
        // into 8 singletons, visible as a ClassSplit trace event.
        let mut unguarded_trace = RecordingTracer::new();
        let unguarded =
            Simulator::new(cfg.clone().with_classes().with_split_budget(Some(u64::MAX)))
                .run_traced(&Fragmenting, &pattern, 0, &mut unguarded_trace)
                .unwrap();
        assert_eq!(unguarded.peak_units, 8);
        assert!(
            unguarded_trace
                .events()
                .iter()
                .any(|e| e.kind() == TraceKind::ClassSplit),
            "fragmentation did not split"
        );

        // Guarded run: 8 units exceed a budget of 4, the class attempt is
        // abandoned and the concrete engine produces the outcome. The
        // abandoned attempt must leave no trace events behind.
        let mut guarded_trace = RecordingTracer::new();
        let guarded = Simulator::new(cfg.with_classes().with_split_budget(Some(4)))
            .run_traced(&Fragmenting, &pattern, 0, &mut guarded_trace)
            .unwrap();
        assert_eq!(guarded.first_success, concrete.first_success);
        assert_eq!(guarded.winner, concrete.winner);
        assert_eq!(guarded.transmissions, concrete.transmissions);
        assert_eq!(guarded.per_station_tx, concrete.per_station_tx);
        assert_eq!(guarded.transcript, concrete.transcript);
        assert_eq!(guarded.polls, concrete.polls);
        assert!(
            guarded_trace
                .events()
                .iter()
                .all(|e| e.kind() != TraceKind::ClassSplit),
            "abandoned class attempt leaked trace events"
        );
        // The deterministic (channel) streams agree between the flipped run
        // and the unguarded class run — the flip is work-counter-only.
        let det = |tr: &RecordingTracer| {
            tr.events()
                .iter()
                .copied()
                .filter(|e| e.kind().deterministic())
                .collect::<Vec<_>>()
        };
        assert_eq!(det(&guarded_trace), det(&unguarded_trace));
    }

    #[test]
    fn split_budget_exceeded_at_admission_flips_too() {
        // A protocol with no class form falls back to one singleton per
        // station: admission alone crosses a small budget.
        let n = 8u32;
        let pattern = WakePattern::simultaneous(&ids(&[0, 1, 2, 3, 4]), 0).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(32).with_transcript();
        let concrete = Simulator::new(cfg.clone())
            .run(&RetiringRr { n }, &pattern, 0)
            .unwrap();
        let guarded = Simulator::new(cfg.with_classes().with_split_budget(Some(2)))
            .run(&RetiringRr { n }, &pattern, 0)
            .unwrap();
        assert_eq!(guarded.first_success, concrete.first_success);
        assert_eq!(guarded.transcript, concrete.transcript);
        assert_eq!(guarded.per_station_tx, concrete.per_station_tx);
    }

    #[test]
    fn default_split_budget_leaves_small_class_runs_alone() {
        // None → max(4096, k/2): a small fragmenting run stays classed.
        let n = 16u32;
        let k: Vec<StationId> = (0..8).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&k, 0).unwrap();
        let out = Simulator::new(SimConfig::new(n).with_max_slots(64).with_classes())
            .run(&Fragmenting, &pattern, 0)
            .unwrap();
        assert_eq!(out.peak_units, 8, "small run should not flip");
    }
}
