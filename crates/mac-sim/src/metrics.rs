//! Latency and energy accounting across runs.
//!
//! A single [`Outcome`] describes one run; this
//! module aggregates many runs into the quantities the experiments report:
//! latency samples (the paper's `t − s` cost) and energy statistics
//! (transmission counts — the cost measure of the authors' power-sensitive
//! line of work, implemented here as an extension metric).

use crate::channel::FaultCounts;
use crate::engine::Outcome;

/// One latency observation, possibly censored by the slot cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencySample {
    /// The run solved wake-up with this latency (`t − s`).
    Solved(u64),
    /// The run hit the cap after this many slots without a success.
    Censored(u64),
}

impl LatencySample {
    /// Extract the sample from an outcome.
    pub fn from_outcome(out: &Outcome) -> Self {
        match out.latency() {
            Some(l) => LatencySample::Solved(l),
            None => LatencySample::Censored(out.slots_simulated),
        }
    }

    /// The latency if solved.
    pub fn solved(self) -> Option<u64> {
        match self {
            LatencySample::Solved(l) => Some(l),
            LatencySample::Censored(_) => None,
        }
    }

    /// A pessimistic value usable in worst-case maxima: the latency if
    /// solved, otherwise the censoring bound (a lower bound on the truth).
    pub fn pessimistic(self) -> u64 {
        match self {
            LatencySample::Solved(l) | LatencySample::Censored(l) => l,
        }
    }
}

/// A compact, `Copy` summary of one run — everything ensemble aggregation
/// needs, with the variable-size parts of [`Outcome`] (per-station counts,
/// transcript) already reduced. Ensembles ship digests across worker
/// threads instead of full outcomes, so a million-run sweep moves a few
/// dozen bytes per run rather than per-station vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutcomeDigest {
    /// The run's latency observation (solved or censored).
    pub sample: LatencySample,
    /// Slots covered (`Outcome::slots_simulated`).
    pub slots: u64,
    /// `Station::act` calls made (`Outcome::polls`).
    pub polls: u64,
    /// Slots advanced in bulk by the sparse engine (`Outcome::skipped_slots`).
    pub skipped: u64,
    /// Slots stepped densely — every awake station polled
    /// (`Outcome::dense_steps`).
    pub dense_steps: u64,
    /// Slots resolved by the bit-parallel word kernel
    /// (`Outcome::word_slots`).
    pub word_slots: u64,
    /// Sparse↔dense transitions of the adaptive engine policy
    /// (`Outcome::mode_switches`).
    pub mode_switches: u64,
    /// Peak simultaneous simulation units (`Outcome::peak_units`) — the
    /// memory proxy of the class-aggregated engine.
    pub peak_units: u64,
    /// Total transmissions (the energy cost).
    pub transmissions: u64,
    /// Maximum transmissions by any single station.
    pub max_station_tx: u64,
    /// Collision slots.
    pub collisions: u64,
    /// Channel-fault and churn event counters (`Outcome::faults`).
    pub faults: FaultCounts,
}

impl OutcomeDigest {
    /// Reduce an outcome to its digest.
    pub fn of(out: &Outcome) -> Self {
        OutcomeDigest {
            sample: LatencySample::from_outcome(out),
            slots: out.slots_simulated,
            polls: out.polls,
            skipped: out.skipped_slots,
            dense_steps: out.dense_steps,
            word_slots: out.word_slots,
            mode_switches: out.mode_switches,
            peak_units: out.peak_units,
            transmissions: out.transmissions,
            max_station_tx: out
                .per_station_tx
                .iter()
                .map(|&(_, c)| c)
                .max()
                .unwrap_or(0),
            collisions: out.collisions,
            faults: out.faults,
        }
    }
}

impl From<&Outcome> for OutcomeDigest {
    fn from(out: &Outcome) -> Self {
        OutcomeDigest::of(out)
    }
}

/// Aggregated energy (transmission-count) statistics over runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyStats {
    /// Number of runs aggregated.
    pub runs: u64,
    /// Total transmissions over all runs.
    pub total_transmissions: u64,
    /// Maximum transmissions by any single station in any run.
    pub max_per_station: u64,
    /// Total collision slots over all runs.
    pub total_collisions: u64,
}

impl EnergyStats {
    /// Create empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one outcome into the statistics.
    pub fn absorb(&mut self, out: &Outcome) {
        self.runs += 1;
        self.total_transmissions += out.transmissions;
        self.total_collisions += out.collisions;
        let station_max = out
            .per_station_tx
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0);
        self.max_per_station = self.max_per_station.max(station_max);
    }

    /// Fold one digest into the statistics — same totals as
    /// [`absorb`](EnergyStats::absorb) on the digest's source outcome.
    pub fn absorb_digest(&mut self, d: &OutcomeDigest) {
        self.runs += 1;
        self.total_transmissions += d.transmissions;
        self.total_collisions += d.collisions;
        self.max_per_station = self.max_per_station.max(d.max_station_tx);
    }

    /// Merge another accumulator. All fields are associative (sums and a
    /// max), so partial accumulators — e.g. per-worker pre-folds — merge in
    /// any grouping without changing the result.
    pub fn merge(&mut self, other: &EnergyStats) {
        self.runs += other.runs;
        self.total_transmissions += other.total_transmissions;
        self.total_collisions += other.total_collisions;
        self.max_per_station = self.max_per_station.max(other.max_per_station);
    }

    /// Mean transmissions per run.
    pub fn mean_transmissions(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_transmissions as f64 / self.runs as f64
        }
    }

    /// Mean collision slots per run.
    pub fn mean_collisions(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_collisions as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StationId;

    fn outcome(latency: Option<u64>, slots: u64, tx: u64, collisions: u64) -> Outcome {
        Outcome {
            s: 10,
            first_success: latency.map(|l| 10 + l),
            winner: latency.map(|_| StationId(0)),
            slots_simulated: slots,
            transmissions: tx,
            per_station_tx: vec![(StationId(0), tx)],
            collisions,
            silent_slots: slots - collisions,
            polls: slots,
            skipped_slots: 0,
            dense_steps: slots,
            word_slots: 0,
            mode_switches: 0,
            peak_units: 1,
            transcript: None,
            resolved: latency
                .map(|l| (StationId(0), 10 + l))
                .into_iter()
                .collect(),
            all_resolved_at: None,
            faults: crate::channel::FaultCounts::default(),
        }
    }

    #[test]
    fn latency_sample_solved() {
        let s = LatencySample::from_outcome(&outcome(Some(5), 6, 3, 1));
        assert_eq!(s, LatencySample::Solved(5));
        assert_eq!(s.solved(), Some(5));
        assert_eq!(s.pessimistic(), 5);
    }

    #[test]
    fn latency_sample_censored() {
        let s = LatencySample::from_outcome(&outcome(None, 100, 7, 50));
        assert_eq!(s, LatencySample::Censored(100));
        assert_eq!(s.solved(), None);
        assert_eq!(s.pessimistic(), 100);
    }

    #[test]
    fn energy_stats_aggregate() {
        let mut e = EnergyStats::new();
        e.absorb(&outcome(Some(3), 4, 10, 2));
        e.absorb(&outcome(None, 50, 30, 20));
        assert_eq!(e.runs, 2);
        assert_eq!(e.total_transmissions, 40);
        assert_eq!(e.max_per_station, 30);
        assert_eq!(e.total_collisions, 22);
        assert!((e.mean_transmissions() - 20.0).abs() < 1e-12);
        assert!((e.mean_collisions() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let e = EnergyStats::new();
        assert_eq!(e.mean_transmissions(), 0.0);
        assert_eq!(e.mean_collisions(), 0.0);
    }

    #[test]
    fn digest_matches_outcome_absorption() {
        let outs = [outcome(Some(3), 4, 10, 2), outcome(None, 50, 30, 20)];
        let mut via_outcome = EnergyStats::new();
        let mut via_digest = EnergyStats::new();
        for o in &outs {
            via_outcome.absorb(o);
            via_digest.absorb_digest(&OutcomeDigest::of(o));
        }
        assert_eq!(via_outcome, via_digest);
        let d = OutcomeDigest::of(&outs[0]);
        assert_eq!(d.sample, LatencySample::Solved(3));
        assert_eq!(d.slots, 4);
        assert_eq!(d.polls, 4);
        assert_eq!(d.max_station_tx, 10);
    }
}
