//! Equivalence-class populations: simulate many same-state stations as one
//! unit.
//!
//! The paper's deterministic protocols differ across stations only by
//! `(id, schedule row, wake slot)` — a wake batch of a million round-robin
//! stations is a million boxed objects in *identical* protocol state. The
//! concrete engine therefore pays O(k) memory and wake-time work even when
//! the whole batch could be described by one value. This module introduces
//! the abstractions that let [`Simulator::run`](crate::engine::Simulator)
//! simulate one **representative per equivalence class** with a
//! multiplicity count instead:
//!
//! * [`Members`] — a compact, run-length encoded set of station IDs (a wake
//!   batch, or the live members of a class);
//! * [`ClassStation`] — the class-aggregated counterpart of
//!   [`Station`]: it answers for *all* its members
//!   at once (weighted transmission counts, aggregate
//!   [`TxHint`]s) and **splits lazily** when
//!   feedback makes members diverge (e.g. one member succeeds and retires
//!   while the rest stay contending);
//! * [`Population`] — the partitioning strategy: how a wake batch becomes
//!   simulation units. [`ConcretePopulation`] produces one
//!   [`SingletonClass`] per station (the historical semantics, unit by
//!   unit); [`ClassPopulation`] asks the protocol for a class-aggregated
//!   unit via [`Protocol::class_station`](crate::station::Protocol) and
//!   falls back to singletons when the protocol has none.
//!
//! Outcomes and transcripts are **bit-identical** across populations; only
//! the work/memory counters ([`Outcome::polls`](crate::engine::Outcome),
//! [`Outcome::peak_units`](crate::engine::Outcome)) reveal which one ran.
//! This is what makes `n = 2^24` sweeps feasible on one box: a
//! simultaneous-wake round-robin pattern is a single class, so the engine
//! holds O(classes) state instead of O(n) boxed stations.

use crate::channel::Feedback;
use crate::ids::{Slot, StationId};
use crate::rng::derive_seed;
use crate::station::{Protocol, Station, TxHint};

// ---------------------------------------------------------------------------
// Members: run-length encoded station sets
// ---------------------------------------------------------------------------

/// A set of station IDs, stored as sorted disjoint half-open runs
/// `[lo, hi)`. A contiguous mega-batch (`0..2^24` waking together) is one
/// run — O(1) memory — while arbitrary explicit batches cost one run per
/// maximal ID interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Members {
    /// Sorted, disjoint, non-empty, non-adjacent runs.
    runs: Vec<(u32, u32)>,
    /// Total number of IDs across runs.
    count: u64,
}

impl Members {
    /// Build from sorted, duplicate-free IDs (consecutive IDs coalesce).
    ///
    /// Panics if `ids` is unsorted or contains duplicates.
    pub fn from_sorted_ids(ids: &[StationId]) -> Self {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &StationId(id) in ids {
            match runs.last_mut() {
                Some(&mut (_, ref mut hi)) if *hi == id => *hi = id + 1,
                Some(&mut (_, hi)) if id < hi => panic!("Members: ids unsorted or duplicated"),
                _ => runs.push((id, id + 1)),
            }
        }
        let count = ids.len() as u64;
        Members { runs, count }
    }

    /// The single run `[lo, hi)`.
    ///
    /// Panics if `lo >= hi`.
    pub fn range(lo: u32, hi: u32) -> Self {
        assert!(lo < hi, "Members::range: empty range {lo}..{hi}");
        Members {
            runs: vec![(lo, hi)],
            count: u64::from(hi - lo),
        }
    }

    /// Build directly from sorted disjoint runs (each `lo < hi`); adjacent
    /// runs coalesce so equal sets compare equal.
    pub fn from_runs(runs: Vec<(u32, u32)>) -> Self {
        let mut count = 0u64;
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(runs.len());
        for (lo, hi) in runs {
            assert!(lo < hi, "Members::from_runs: empty run {lo}..{hi}");
            count += u64::from(hi - lo);
            match merged.last_mut() {
                Some(&mut (_, ref mut p)) if *p == lo => *p = hi,
                Some(&mut (_, p)) => {
                    assert!(lo > p, "Members::from_runs: runs unsorted or overlapping");
                    merged.push((lo, hi));
                }
                None => merged.push((lo, hi)),
            }
        }
        Members {
            runs: merged,
            count,
        }
    }

    /// Number of member IDs.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<u32> {
        self.runs.first().map(|&(lo, _)| lo)
    }

    /// The largest member, if any.
    pub fn last(&self) -> Option<u32> {
        self.runs.last().map(|&(_, hi)| hi - 1)
    }

    /// Membership test, O(log runs).
    pub fn contains(&self, id: u32) -> bool {
        let i = self.runs.partition_point(|&(_, hi)| hi <= id);
        self.runs.get(i).is_some_and(|&(lo, _)| lo <= id)
    }

    /// The smallest member `≥ x`, O(log runs).
    pub fn next_at_or_after(&self, x: u32) -> Option<u32> {
        let i = self.runs.partition_point(|&(_, hi)| hi <= x);
        self.runs.get(i).map(|&(lo, _)| lo.max(x))
    }

    /// Remove one ID (a member retiring after its own success — the lazy
    /// split of a class into "resolved" and "still contending"). Returns
    /// `false` if `id` was not a member.
    pub fn remove(&mut self, id: u32) -> bool {
        let i = self.runs.partition_point(|&(_, hi)| hi <= id);
        let Some(&(lo, hi)) = self.runs.get(i) else {
            return false;
        };
        if id < lo {
            return false;
        }
        match (id == lo, id + 1 == hi) {
            (true, true) => {
                self.runs.remove(i);
            }
            (true, false) => self.runs[i].0 = id + 1,
            (false, true) => self.runs[i].1 = id,
            (false, false) => {
                self.runs[i].1 = id;
                self.runs.insert(i + 1, (id + 1, hi));
            }
        }
        self.count -= 1;
        true
    }

    /// The runs, sorted and disjoint.
    #[inline]
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Iterate all member IDs in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = StationId> + '_ {
        self.runs
            .iter()
            .flat_map(|&(lo, hi)| (lo..hi).map(StationId))
    }
}

// ---------------------------------------------------------------------------
// TxTally: weighted transmitter accounting for one slot
// ---------------------------------------------------------------------------

/// Accumulates the transmitters of one slot across all polled units.
///
/// Two regimes:
///
/// * **ID-collecting** (transcript recording or per-station detail on):
///   every transmitter ID is pushed individually — O(transmitters) per
///   slot, exactly like the concrete engine;
/// * **count-only** (mega runs): classes report a weighted count via
///   [`add_anonymous`](TxTally::add_anonymous); only a successful slot's
///   sole transmitter carries an ID. Collision slots at `n = 2^24` then
///   cost O(1) memory instead of materializing 2^24 IDs.
#[derive(Debug)]
pub struct TxTally {
    total: u64,
    /// The sole transmitter — valid iff `total == 1`.
    witness: Option<StationId>,
    /// Collected transmitter IDs (`Some` iff the run needs them).
    ids: Option<Vec<StationId>>,
}

impl TxTally {
    /// New tally; `collect_ids` turns on the ID-collecting regime.
    pub fn new(collect_ids: bool) -> Self {
        TxTally {
            total: 0,
            witness: None,
            ids: collect_ids.then(Vec::new),
        }
    }

    /// `true` iff transmitter IDs must be reported individually (via
    /// [`push`](TxTally::push)); classes may only use
    /// [`add_anonymous`](TxTally::add_anonymous) when this is `false`.
    #[inline]
    pub fn collect_ids(&self) -> bool {
        self.ids.is_some()
    }

    /// Record one transmitter by ID.
    pub fn push(&mut self, id: StationId) {
        self.total += 1;
        self.witness = (self.total == 1).then_some(id);
        if let Some(ids) = self.ids.as_mut() {
            ids.push(id);
        }
    }

    /// Record `count ≥ 2` transmitters without materializing their IDs.
    ///
    /// Panics in the ID-collecting regime (the caller must
    /// [`push`](TxTally::push) there) and on `count == 1` (a sole
    /// transmitter is a potential winner and must carry its ID).
    pub fn add_anonymous(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        assert!(
            self.ids.is_none(),
            "TxTally: anonymous bulk add while collecting IDs"
        );
        assert!(count >= 2, "TxTally: a sole transmitter must carry its ID");
        self.total += count;
        self.witness = None;
    }

    /// Total transmitter count so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The winner of the slot: the sole transmitter, if exactly one.
    #[inline]
    pub fn winner(&self) -> Option<StationId> {
        if self.total == 1 {
            self.witness
        } else {
            None
        }
    }

    /// The collected IDs, sorted (ID-collecting regime only).
    pub fn sorted_ids(&mut self) -> &[StationId] {
        let ids = self
            .ids
            .as_mut()
            .expect("TxTally::sorted_ids in count-only regime");
        ids.sort_unstable();
        ids
    }

    /// Reset for the next slot.
    pub fn clear(&mut self) {
        self.total = 0;
        self.witness = None;
        if let Some(ids) = self.ids.as_mut() {
            ids.clear();
        }
    }

    /// Record every member of `members` for which `transmits` holds — the
    /// standard body of a class's [`ClassStation::act`]: exact IDs in the
    /// collecting regime, a weighted count otherwise (with the sole
    /// transmitter's ID preserved, as a potential winner must carry it).
    pub fn record_members(&mut self, members: &Members, mut transmits: impl FnMut(u32) -> bool) {
        if self.collect_ids() {
            for id in members.iter() {
                if transmits(id.0) {
                    self.push(id);
                }
            }
        } else {
            let mut count = 0u64;
            let mut witness = None;
            for id in members.iter() {
                if transmits(id.0) {
                    count += 1;
                    witness = Some(id);
                }
            }
            match count {
                0 => {}
                1 => self.push(witness.expect("count == 1 has a witness")),
                _ => self.add_anonymous(count),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ClassStation: one equivalence class of stations
// ---------------------------------------------------------------------------

/// The class-aggregated counterpart of [`Station`]: one simulation unit
/// standing in for every member of an equivalence class (stations in
/// identical protocol state, keyed by schedule structure and wake slot).
///
/// The lifecycle mirrors [`Station`]: [`wake`](ClassStation::wake) once at
/// the batch's wake slot, then [`act`](ClassStation::act) /
/// [`feedback`](ClassStation::feedback) /
/// [`next_transmission`](ClassStation::next_transmission) under exactly the
/// same slot discipline and [`TxHint`] scope contract — with every answer
/// ranging over **all** live members:
///
/// * `act` reports every member that transmits at `t` into the slot's
///   [`TxTally`] (weighted count, or individual IDs when the tally
///   collects them);
/// * `next_transmission` promises silence of the **whole class**: the hint
///   slot is the earliest slot at which *any* member may transmit;
/// * `feedback` receives what every member perceives (feedback is uniform
///   across stations — see
///   [`FeedbackModel::perceive`](crate::channel::FeedbackModel::perceive))
///   and may **split** the class when members diverge: the returned units
///   are appended to the population (already awake; they are polled and
///   re-queried from `t + 1`). A member retiring on its own success is the
///   degenerate split — the class simply drops it
///   ([`weight`](ClassStation::weight) decreases) and no new unit is born.
pub trait ClassStation {
    /// Number of live members this unit stands in for.
    fn weight(&self) -> u64;

    /// The whole class wakes at `sigma` (all members of a class share one
    /// wake slot by construction).
    fn wake(&mut self, sigma: Slot);

    /// Report every member transmitting at slot `t` into `tally`.
    fn act(&mut self, t: Slot, tally: &mut TxTally);

    /// Channel feedback for slot `t`, as every member perceives it. May
    /// return new units split off the class (they are already awake).
    /// Default: ignore, never split (oblivious classes).
    fn feedback(&mut self, t: Slot, fb: Feedback) -> Vec<Box<dyn ClassStation>> {
        let _ = (t, fb);
        Vec::new()
    }

    /// When will **any** member transmit next, looking from `after`?
    /// Same promise semantics and [`Until`](crate::station::Until) scope
    /// obligations as [`Station::next_transmission`], quantified over the
    /// class. Default: [`TxHint::Dense`].
    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let _ = after;
        TxHint::Dense
    }

    /// Remove member `id` from the class (a churn crash: the member leaves
    /// exactly like a retired one, without a success). Default:
    /// [`MemberRemoval::Unsupported`] — the engine then falls back to a
    /// concrete run for churned populations, preserving correctness for
    /// class implementations that predate churn.
    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        let _ = id;
        MemberRemoval::Unsupported
    }
}

/// Result of [`ClassStation::remove_member`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberRemoval {
    /// `id` is not a member of this unit; try the next one.
    NotMember,
    /// `id` was removed; `emptied` is `true` when the unit's last member
    /// left (the engine replaces it with an inert [`DeadClass`]).
    Removed {
        /// `true` iff the unit now has weight 0.
        emptied: bool,
    },
    /// This class implementation cannot remove members mid-run.
    Unsupported,
}

/// An inert unit standing in for crashed members: weight 0, never
/// transmits, never splits. What a [`ClassStation`] becomes when churn
/// empties it (the class-engine analogue of replacing a crashed concrete
/// station with [`NeverTransmit`](crate::station::NeverTransmit)).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeadClass;

impl ClassStation for DeadClass {
    fn weight(&self) -> u64 {
        0
    }

    fn wake(&mut self, _sigma: Slot) {}

    fn act(&mut self, _t: Slot, _tally: &mut TxTally) {}

    fn next_transmission(&mut self, _after: Slot) -> TxHint {
        TxHint::never()
    }

    fn remove_member(&mut self, _id: StationId) -> MemberRemoval {
        MemberRemoval::NotMember
    }
}

/// A weight-1 [`ClassStation`] wrapping one concrete [`Station`] — the
/// universal fallback that lets *every* protocol run under a class
/// population with bit-identical outcomes, aggregated or not.
pub struct SingletonClass {
    id: StationId,
    inner: Box<dyn Station>,
}

impl SingletonClass {
    /// Wrap station `id`.
    pub fn new(id: StationId, inner: Box<dyn Station>) -> Self {
        SingletonClass { id, inner }
    }

    /// The wrapped station's ID.
    pub fn id(&self) -> StationId {
        self.id
    }
}

impl ClassStation for SingletonClass {
    fn weight(&self) -> u64 {
        1
    }

    fn wake(&mut self, sigma: Slot) {
        self.inner.wake(sigma);
    }

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        if self.inner.act(t).is_transmit() {
            tally.push(self.id);
        }
    }

    fn feedback(&mut self, t: Slot, fb: Feedback) -> Vec<Box<dyn ClassStation>> {
        self.inner.feedback(t, fb);
        Vec::new()
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        self.inner.next_transmission(after)
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        if id == self.id {
            MemberRemoval::Removed { emptied: true }
        } else {
            MemberRemoval::NotMember
        }
    }
}

// ---------------------------------------------------------------------------
// Population: partitioning wake batches into units
// ---------------------------------------------------------------------------

/// Which population the engine simulates (see [`Population`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PopulationMode {
    /// One boxed [`Station`] per woken station — the historical engine
    /// (adaptive sparse/dense), O(k) memory.
    #[default]
    Concrete,
    /// Class-aggregated units via [`Protocol::class_station`], singleton
    /// fallback per station otherwise — O(classes) memory for protocols
    /// with class support.
    Classes,
}

/// Strategy for partitioning one wake batch (all stations waking at the
/// same slot) into simulation units.
pub trait Population {
    /// Instantiate the units covering `batch`. Units are returned unwoken;
    /// the engine calls [`ClassStation::wake`] as it admits them.
    fn admit(
        &mut self,
        protocol: &dyn Protocol,
        batch: &Members,
        run_seed: u64,
    ) -> Vec<Box<dyn ClassStation>>;

    /// Population name, for diagnostics.
    fn name(&self) -> &'static str;
}

/// One [`SingletonClass`] per station: the concrete semantics, unit by
/// unit. Useful as the ground-truth population for equivalence testing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcretePopulation;

impl Population for ConcretePopulation {
    fn admit(
        &mut self,
        protocol: &dyn Protocol,
        batch: &Members,
        run_seed: u64,
    ) -> Vec<Box<dyn ClassStation>> {
        batch
            .iter()
            .map(|id| singleton(protocol, id, run_seed))
            .collect()
    }

    fn name(&self) -> &'static str {
        "concrete"
    }
}

/// Class-aggregated units: ask the protocol for one class per batch
/// ([`Protocol::class_station`]), fall back to singletons when it has
/// none.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassPopulation;

impl Population for ClassPopulation {
    fn admit(
        &mut self,
        protocol: &dyn Protocol,
        batch: &Members,
        run_seed: u64,
    ) -> Vec<Box<dyn ClassStation>> {
        match protocol.class_station(batch, run_seed) {
            Some(class) => vec![class],
            None => batch
                .iter()
                .map(|id| singleton(protocol, id, run_seed))
                .collect(),
        }
    }

    fn name(&self) -> &'static str {
        "classes"
    }
}

fn singleton(protocol: &dyn Protocol, id: StationId, run_seed: u64) -> Box<dyn ClassStation> {
    Box::new(SingletonClass::new(
        id,
        protocol.station(id, derive_seed(run_seed, u64::from(id.0))),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn members_coalesce_consecutive_ids() {
        let m = Members::from_sorted_ids(&ids(&[0, 1, 2, 5, 7, 8]));
        assert_eq!(m.runs(), &[(0, 3), (5, 6), (7, 9)]);
        assert_eq!(m.count(), 6);
        assert_eq!(m.first(), Some(0));
        assert_eq!(m.last(), Some(8));
    }

    #[test]
    fn members_range_is_one_run() {
        let m = Members::range(10, 1 << 20);
        assert_eq!(m.runs().len(), 1);
        assert_eq!(m.count(), (1 << 20) - 10);
    }

    #[test]
    fn members_contains_and_next() {
        let m = Members::from_sorted_ids(&ids(&[2, 3, 9]));
        assert!(m.contains(2));
        assert!(m.contains(3));
        assert!(!m.contains(4));
        assert!(m.contains(9));
        assert!(!m.contains(10));
        assert_eq!(m.next_at_or_after(0), Some(2));
        assert_eq!(m.next_at_or_after(3), Some(3));
        assert_eq!(m.next_at_or_after(4), Some(9));
        assert_eq!(m.next_at_or_after(10), None);
    }

    #[test]
    fn members_remove_splits_runs() {
        let mut m = Members::range(0, 5);
        assert!(m.remove(2));
        assert_eq!(m.runs(), &[(0, 2), (3, 5)]);
        assert_eq!(m.count(), 4);
        assert!(!m.remove(2));
        assert!(m.remove(0));
        assert_eq!(m.runs(), &[(1, 2), (3, 5)]);
        assert!(m.remove(1));
        assert_eq!(m.runs(), &[(3, 5)]);
        assert!(m.remove(4));
        assert_eq!(m.runs(), &[(3, 4)]);
        assert!(m.remove(3));
        assert!(m.is_empty());
    }

    #[test]
    fn members_iter_in_order() {
        let m = Members::from_sorted_ids(&ids(&[1, 2, 7]));
        let got: Vec<StationId> = m.iter().collect();
        assert_eq!(got, ids(&[1, 2, 7]));
    }

    #[test]
    fn tally_winner_requires_sole_transmitter() {
        let mut t = TxTally::new(false);
        assert_eq!(t.winner(), None);
        t.push(StationId(4));
        assert_eq!(t.winner(), Some(StationId(4)));
        assert_eq!(t.total(), 1);
        t.add_anonymous(3);
        assert_eq!(t.winner(), None);
        assert_eq!(t.total(), 4);
        t.clear();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn tally_collects_sorted_ids() {
        let mut t = TxTally::new(true);
        t.push(StationId(9));
        t.push(StationId(2));
        assert!(t.collect_ids());
        assert_eq!(t.sorted_ids(), &ids(&[2, 9])[..]);
    }

    #[test]
    #[should_panic(expected = "anonymous bulk add while collecting IDs")]
    fn tally_rejects_anonymous_when_collecting() {
        let mut t = TxTally::new(true);
        t.add_anonymous(2);
    }

    #[test]
    #[should_panic(expected = "sole transmitter must carry its ID")]
    fn tally_rejects_anonymous_singleton() {
        let mut t = TxTally::new(false);
        t.add_anonymous(1);
    }

    #[test]
    fn singleton_remove_member_is_exact() {
        use crate::station::AlwaysTransmit;
        let mut s = SingletonClass::new(StationId(3), Box::new(AlwaysTransmit));
        assert_eq!(s.remove_member(StationId(4)), MemberRemoval::NotMember);
        assert_eq!(
            s.remove_member(StationId(3)),
            MemberRemoval::Removed { emptied: true }
        );
    }

    #[test]
    fn dead_class_is_inert() {
        let mut d = DeadClass;
        assert_eq!(d.weight(), 0);
        d.wake(0);
        let mut tally = TxTally::new(true);
        d.act(5, &mut tally);
        assert_eq!(tally.total(), 0);
        assert_eq!(d.next_transmission(0), TxHint::never());
        assert!(d.feedback(5, Feedback::Silence).is_empty());
        assert_eq!(d.remove_member(StationId(0)), MemberRemoval::NotMember);
    }
}
